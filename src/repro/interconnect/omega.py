"""Omega multistage interconnection network.

The classic blocking multistage network: ``log2(n)`` stages of 2x2
switch elements joined by perfect-shuffle wiring. It sits between the
shared bus and the full crossbar in the taxonomy's cost space — full
single-transfer reachability with ``(n/2)·log2(n)`` switch elements
instead of ``n²`` crosspoints — at the price of *blocking*: not every
set of simultaneous transfers is realisable, a property this model
measures rather than assumes.

Routing is the textbook destination-tag algorithm: at stage ``s`` the
packet exits the upper or lower port of its 2x2 element according to
bit ``log2(n)-1-s`` of the destination address.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.core.connectivity import LinkKind
from repro.core.errors import FaultError, RoutingError
from repro.interconnect.topology import Interconnect, Route
from repro.models.switches import FullCrossbarModel

__all__ = ["OmegaNetwork"]


class OmegaNetwork(Interconnect):
    """``n x n`` Omega network; ``n`` must be a power of two >= 2."""

    def __init__(self, n_ports: int, *, width_bits: int = 32):
        if n_ports < 2 or n_ports & (n_ports - 1):
            raise ValueError("an Omega network needs a power-of-two port count")
        super().__init__(n_ports, n_ports, width_bits=width_bits)
        self.stages = int(math.log2(n_ports))
        # Each 2x2 element is a tiny crossbar.
        self._element = FullCrossbarModel(width_bits=width_bits)
        self._failed_elements: set[tuple[int, int]] = set()

    @property
    def link_kind(self) -> LinkKind:
        """The taxonomy cell this interconnect realises (direct ``-`` or switched ``x``)."""
        return LinkKind.SWITCHED

    # -- structure ---------------------------------------------------------

    @staticmethod
    def _shuffle(value: int, bits: int) -> int:
        """Perfect shuffle: rotate the address left by one bit."""
        msb = (value >> (bits - 1)) & 1
        return ((value << 1) | msb) & ((1 << bits) - 1)

    def element_of(self, stage: int, line: int) -> int:
        """Index of the 2x2 element a line enters at a stage."""
        if not 0 <= stage < self.stages:
            raise RoutingError(f"stage {stage} out of range")
        if not 0 <= line < self.n_inputs:
            raise RoutingError(f"line {line} out of range")
        return line // 2

    # -- fault state -------------------------------------------------------

    def fail_element(self, stage: int, element: int) -> None:
        """Kill one 2x2 switch element.

        The destination-tag algorithm gives every (source, destination)
        pair a *unique* path, so — unlike the mesh — a multistage network
        cannot detour: every pair whose path crosses the dead element is
        lost. Blocking networks degrade by shedding reachability.
        """
        if not 0 <= stage < self.stages:
            raise RoutingError(f"stage {stage} out of range")
        if not 0 <= element < self.n_inputs // 2:
            raise RoutingError(f"element {element} out of range")
        self._failed_elements.add((stage, element))

    def element_failed(self, stage: int, element: int) -> bool:
        """Whether the 2x2 element at ``(stage, element)`` has failed."""
        return (stage, element) in self._failed_elements

    def repair_all(self) -> None:
        """Clear every injected element fault."""
        super().repair_all()
        self._failed_elements.clear()

    @property
    def fault_count(self) -> int:
        """Number of currently failed switching elements."""
        return super().fault_count + len(self._failed_elements)

    # -- routing --------------------------------------------------------------

    def can_route(self, source: int, destination: int) -> bool:
        """Whether ``source`` can currently reach ``destination`` through live hardware."""
        self._check_ports(source, destination)
        if self.input_failed(source) or self.output_failed(destination):
            return False
        if not self._failed_elements:
            return True
        return not any(
            step in self._failed_elements
            for step in self.path_elements(source, destination)
        )

    def path_elements(self, source: int, destination: int) -> list[tuple[int, int]]:
        """(stage, element) pairs traversed by the destination-tag route."""
        self._check_ports(source, destination)
        bits = self.stages
        line = source
        elements = []
        for stage in range(bits):
            line = self._shuffle(line, bits)
            element = line // 2
            elements.append((stage, element))
            # Exit on the port selected by the destination bit.
            want = (destination >> (bits - 1 - stage)) & 1
            line = (line & ~1) | want
        assert line == destination
        return elements

    def route(self, source: int, destination: int) -> Route:
        """Carry one transfer ``source`` -> ``destination``, raising if no live path exists."""
        self._check_port_health(source, destination)
        elements = self.path_elements(source, destination)
        for stage, element in elements:
            if (stage, element) in self._failed_elements:
                raise FaultError(
                    f"omega route {source}->{destination} crosses failed "
                    f"element e{stage}_{element}; destination-tag routing "
                    "has no alternative path"
                )
        labels = [self.input_label(source)]
        labels += [f"e{stage}_{element}" for stage, element in elements]
        labels.append(self.output_label(destination))
        return Route(
            source=labels[0],
            destination=labels[-1],
            path=tuple(labels),
            cycles=self.stages,
        )

    def is_conflict_free(self, assignment: "dict[int, int]") -> bool:
        """Whether a {source: destination} batch routes simultaneously.

        Two transfers conflict when they need different settings of the
        same 2x2 element in the same stage — the Omega network's
        defining blocking behaviour.
        """
        for source, destination in assignment.items():
            self._check_ports(source, destination)
        settings: dict[tuple[int, int], tuple[int, int]] = {}
        bits = self.stages
        for source, destination in assignment.items():
            line = source
            for stage in range(bits):
                line = self._shuffle(line, bits)
                element = line // 2
                entered_port = line & 1
                want = (destination >> (bits - 1 - stage)) & 1
                key = (stage, element)
                demand = (entered_port, want)
                previous = settings.get(key)
                if previous is not None and previous != demand:
                    if previous[0] == demand[0] and previous[1] != demand[1]:
                        return False  # same input port, two outputs
                    if previous[0] != demand[0] and previous[1] == demand[1]:
                        return False  # two inputs, same output
                settings[key] = demand
                line = (line & ~1) | want
        return True

    def blocking_fraction(self, permutations: "list[dict[int, int]]") -> float:
        """Fraction of the given permutations the network cannot route."""
        if not permutations:
            return 0.0
        blocked = sum(
            1 for perm in permutations if not self.is_conflict_free(perm)
        )
        return blocked / len(permutations)

    # -- metrics -----------------------------------------------------------------

    def as_graph(self) -> nx.Graph:
        """The surviving connectivity as a directed graph."""
        graph = nx.Graph()
        bits = self.stages
        # Input wiring: line `s` shuffles into stage 0.
        for source in range(self.n_inputs):
            entry = self._shuffle(source, bits)
            graph.add_edge(self.input_label(source), f"e0_{entry // 2}")
        # Inter-stage wiring: both exits of every element shuffle onward.
        for stage in range(bits - 1):
            for element in range(self.n_inputs // 2):
                for exit_port in (0, 1):
                    line = element * 2 + exit_port
                    nxt = self._shuffle(line, bits)
                    graph.add_edge(
                        f"e{stage}_{element}", f"e{stage + 1}_{nxt // 2}"
                    )
        # Output wiring: the last stage's exits are the output lines.
        for element in range(self.n_inputs // 2):
            for exit_port in (0, 1):
                line = element * 2 + exit_port
                graph.add_edge(
                    f"e{bits - 1}_{element}", self.output_label(line)
                )
        return graph

    def element_count(self) -> int:
        """Total number of 2x2 switching elements in the network."""
        return (self.n_inputs // 2) * self.stages

    def area_ge(self) -> float:
        """Area cost in gate equivalents (the Eq. 1 term)."""
        return self.element_count() * self._element.area_ge(2, 2)

    def config_bits(self) -> int:
        """Configuration bits consumed (the Eq. 2 term)."""
        return self.element_count() * self._element.config_bits(2, 2)
