"""Executable interconnect substrate: the concrete structures behind the
taxonomy's ``'-'`` and ``'x'`` cells, with routing, timing, area and
configuration-bit accounting."""

from repro.interconnect.bus import BusSchedule, SharedBus
from repro.interconnect.crossbar import FullCrossbar, LimitedCrossbar
from repro.interconnect.direct import Broadcast, PointToPoint
from repro.interconnect.hierarchical import HierarchicalNetwork
from repro.interconnect.mesh import Mesh2D, MeshSimulationResult
from repro.interconnect.omega import OmegaNetwork
from repro.interconnect.metrics import (
    InterconnectProfile,
    bisection_width,
    diameter,
    mean_distance,
    profile,
)
from repro.interconnect.topology import Interconnect, Route, TrafficStats
from repro.interconnect.window import SlidingWindow

__all__ = [
    "Interconnect",
    "Route",
    "TrafficStats",
    "PointToPoint",
    "Broadcast",
    "SharedBus",
    "BusSchedule",
    "FullCrossbar",
    "LimitedCrossbar",
    "Mesh2D",
    "OmegaNetwork",
    "MeshSimulationResult",
    "SlidingWindow",
    "HierarchicalNetwork",
    "InterconnectProfile",
    "profile",
    "diameter",
    "mean_distance",
    "bisection_width",
]
