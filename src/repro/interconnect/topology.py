"""Base abstractions for executable interconnect topologies.

The taxonomy's ``'-'`` and ``'x'`` cells abstract concrete interconnect
structures; this package makes them executable so the survey's networks
(crossbars, buses, meshes, sliding windows, hierarchies) can be compared
on delivered routes, hop counts, area and configuration bits — the
quantities Eq. 1 and Eq. 2 estimate structurally.

Every topology implements :class:`Interconnect`: it knows its port
counts, can :meth:`~Interconnect.route` a source to a destination
(returning the traversed path), exposes an undirected
:meth:`~Interconnect.as_graph` view for graph metrics, and reports its
:meth:`~Interconnect.area_ge` and :meth:`~Interconnect.config_bits`
consistently with :mod:`repro.models.switches`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import networkx as nx

from repro.core.connectivity import LinkKind
from repro.core.errors import FaultError, RoutingError

__all__ = ["Route", "TrafficStats", "Interconnect"]


@dataclass(frozen=True, slots=True)
class Route:
    """A realised path through a topology.

    ``path`` lists the traversed node labels, endpoints included; the hop
    count is ``len(path) - 1``. ``cycles`` is the transfer latency under
    the topology's timing model (contention-free).
    """

    source: str
    destination: str
    path: tuple[str, ...]
    cycles: int

    def __post_init__(self) -> None:
        if len(self.path) < 1:
            raise RoutingError("a route must contain at least its endpoint")
        if self.path[0] != self.source or self.path[-1] != self.destination:
            raise RoutingError("route path endpoints disagree with source/destination")
        if self.cycles < 0:
            raise RoutingError("route latency cannot be negative")

    @property
    def hops(self) -> int:
        """Number of links the route traverses."""
        return len(self.path) - 1


@dataclass
class TrafficStats:
    """Aggregate statistics over a batch of routed transfers."""

    transfers: int = 0
    total_hops: int = 0
    total_cycles: int = 0
    conflicts: int = 0
    per_link_load: dict[tuple[str, str], int] = field(default_factory=dict)

    def record(self, route: Route) -> None:
        """Account one routed transfer into the running statistics."""
        self.transfers += 1
        self.total_hops += route.hops
        self.total_cycles += route.cycles
        for a, b in zip(route.path, route.path[1:]):
            key = (a, b) if a <= b else (b, a)
            self.per_link_load[key] = self.per_link_load.get(key, 0) + 1

    @property
    def mean_hops(self) -> float:
        """Mean hop count over the recorded transfers."""
        return self.total_hops / self.transfers if self.transfers else 0.0

    @property
    def max_link_load(self) -> int:
        """The heaviest per-link load recorded."""
        return max(self.per_link_load.values(), default=0)


class Interconnect(ABC):
    """An executable connectivity structure between two port sets.

    Sources are labelled ``in0..in{n-1}`` and destinations
    ``out0..out{m-1}``; self-networks (DP-DP, IP-IP) use the same
    component population on both sides, so ``inK`` and ``outK`` denote
    the same physical node's egress/ingress.
    """

    def __init__(self, n_inputs: int, n_outputs: int, *, width_bits: int = 32):
        if n_inputs <= 0 or n_outputs <= 0:
            raise ValueError("port counts must be positive")
        if width_bits <= 0:
            raise ValueError("datapath width must be positive")
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.width_bits = width_bits
        #: fault state — ports and wires taken out by an injector.
        self._failed_inputs: set[int] = set()
        self._failed_outputs: set[int] = set()
        self._failed_links: set[frozenset[str]] = set()

    # -- naming ----------------------------------------------------------

    @staticmethod
    def input_label(index: int) -> str:
        """Graph label for input port ``index``."""
        return f"in{index}"

    @staticmethod
    def output_label(index: int) -> str:
        """Graph label for output port ``index``."""
        return f"out{index}"

    def _check_ports(self, source: int, destination: int) -> None:
        if not 0 <= source < self.n_inputs:
            raise RoutingError(
                f"source port {source} out of range 0..{self.n_inputs - 1}"
            )
        if not 0 <= destination < self.n_outputs:
            raise RoutingError(
                f"destination port {destination} out of range 0..{self.n_outputs - 1}"
            )

    # -- fault state -------------------------------------------------------

    def fail_input_port(self, index: int) -> None:
        """Mark an input port permanently dead."""
        if not 0 <= index < self.n_inputs:
            raise RoutingError(
                f"input port {index} out of range 0..{self.n_inputs - 1}"
            )
        self._failed_inputs.add(index)

    def fail_output_port(self, index: int) -> None:
        """Mark an output port permanently dead."""
        if not 0 <= index < self.n_outputs:
            raise RoutingError(
                f"output port {index} out of range 0..{self.n_outputs - 1}"
            )
        self._failed_outputs.add(index)

    def fail_link(self, a: str, b: str) -> None:
        """Cut one wire of the connectivity graph (by node labels).

        Whether the topology survives the cut depends on its link kind:
        switched structures may reroute, a direct wire is simply gone.
        """
        if not self.as_graph().has_edge(a, b):
            raise RoutingError(f"no link {a!r} <-> {b!r} in this topology")
        self._failed_links.add(frozenset((a, b)))

    def repair_all(self) -> None:
        """Clear every injected fault (maintenance replaced the parts)."""
        self._failed_inputs.clear()
        self._failed_outputs.clear()
        self._failed_links.clear()

    def input_failed(self, index: int) -> bool:
        """Whether input port ``index`` has failed."""
        return index in self._failed_inputs

    def output_failed(self, index: int) -> bool:
        """Whether output port ``index`` has failed."""
        return index in self._failed_outputs

    def link_failed(self, a: str, b: str) -> bool:
        """Whether internal link ``index`` has failed."""
        return frozenset((a, b)) in self._failed_links

    @property
    def fault_count(self) -> int:
        """Number of injected faults currently in force."""
        return (
            len(self._failed_inputs)
            + len(self._failed_outputs)
            + len(self._failed_links)
        )

    def surviving_graph(self) -> nx.Graph:
        """The connectivity graph with every failed wire removed."""
        graph = self.as_graph()
        for link in self._failed_links:
            pair = tuple(link)
            # Self-loop wires store as a 1-element frozenset.
            a, b = (pair[0], pair[0]) if len(pair) == 1 else pair
            if graph.has_edge(a, b):
                graph.remove_edge(a, b)
        return graph

    def _check_port_health(self, source: int, destination: int) -> None:
        """Raise :class:`FaultError` when either endpoint port is dead."""
        if source in self._failed_inputs:
            raise FaultError(
                f"{type(self).__name__}: input port {source} has failed"
            )
        if destination in self._failed_outputs:
            raise FaultError(
                f"{type(self).__name__}: output port {destination} has failed"
            )

    # -- interface ---------------------------------------------------------

    @property
    @abstractmethod
    def link_kind(self) -> LinkKind:
        """The taxonomy cell this structure realises (DIRECT or SWITCHED)."""

    @abstractmethod
    def can_route(self, source: int, destination: int) -> bool:
        """Whether the pair is reachable at all on this topology."""

    @abstractmethod
    def route(self, source: int, destination: int) -> Route:
        """Path and latency for one transfer; raises RoutingError if unreachable."""

    @abstractmethod
    def as_graph(self) -> nx.Graph:
        """Undirected connectivity graph (ports plus internal nodes)."""

    @abstractmethod
    def area_ge(self) -> float:
        """Silicon area in gate equivalents (Eq.-1 contribution)."""

    @abstractmethod
    def config_bits(self) -> int:
        """Configuration-word width in bits (Eq.-2 contribution)."""

    # -- shared conveniences -------------------------------------------------

    def route_all(self, pairs: "list[tuple[int, int]]") -> TrafficStats:
        """Route a batch of (source, destination) pairs, accumulating stats."""
        stats = TrafficStats()
        for source, destination in pairs:
            stats.record(self.route(source, destination))
        return stats

    def reachability_fraction(self) -> float:
        """Fraction of (source, destination) pairs this topology can route.

        1.0 for crossbars; < 1.0 for fixed or window-limited structures.
        This is the quantitative face of the flexibility difference
        between ``'-'`` and ``'x'`` cells.
        """
        total = self.n_inputs * self.n_outputs
        reachable = sum(
            1
            for s in range(self.n_inputs)
            for d in range(self.n_outputs)
            if self.can_route(s, d)
        )
        return reachable / total

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"{type(self).__name__}({self.n_inputs}x{self.n_outputs}, "
            f"{self.width_bits}-bit): kind={self.link_kind.value}, "
            f"area={self.area_ge():,.0f} GE, config={self.config_bits()} bits, "
            f"reach={self.reachability_fraction():.0%}"
        )
