"""Crossbar structures — the ``'x'`` cells of the taxonomy.

:class:`FullCrossbar` is the default reading of ``'x'``: any input can
reach any output, non-blocking for any input-distinct assignment. It also
keeps an explicit *configuration state* (the per-output input select),
making the configuration-bit cost of Eq. 2 concrete: programming a route
writes a select word.

:class:`LimitedCrossbar` restricts each output to a window of inputs
centred on its own index — the cheaper structure the paper contrasts
against ("a full cross bar switch will require more bits than a limited
crossbar").
"""

from __future__ import annotations

import networkx as nx

from repro.core.connectivity import LinkKind
from repro.core.errors import ConfigurationError, FaultError, RoutingError
from repro.interconnect.topology import Interconnect, Route
from repro.models.switches import FullCrossbarModel, LimitedCrossbarModel

__all__ = ["FullCrossbar", "LimitedCrossbar"]


class FullCrossbar(Interconnect):
    """Non-blocking any-to-any switch with explicit select state."""

    def __init__(self, n_inputs: int, n_outputs: int, *, width_bits: int = 32):
        super().__init__(n_inputs, n_outputs, width_bits=width_bits)
        self._model = FullCrossbarModel(width_bits=width_bits)
        #: per-output selected input (None = unconnected).
        self._selects: list[int | None] = [None] * n_outputs

    @property
    def link_kind(self) -> LinkKind:
        """The taxonomy cell this interconnect realises (direct ``-`` or switched ``x``)."""
        return LinkKind.SWITCHED

    # -- configuration ----------------------------------------------------

    def connect(self, source: int, destination: int) -> None:
        """Program output ``destination`` to listen to input ``source``.

        An output already listening to a *different* input must be
        :meth:`disconnect`-ed first — silently overwriting a live select
        is how real configuration bugs hide. Dead ports (fault state)
        cannot be programmed at all.
        """
        self._check_ports(source, destination)
        self._check_port_health(source, destination)
        current = self._selects[destination]
        if current is not None and current != source:
            raise ConfigurationError(
                f"output {destination} is already configured to listen to "
                f"input {current}; disconnect it before reprogramming"
            )
        self._selects[destination] = source

    def disconnect(self, destination: int) -> None:
        """Tear down the route feeding output ``destination``."""
        if not 0 <= destination < self.n_outputs:
            raise RoutingError(f"destination port {destination} out of range")
        self._selects[destination] = None

    def configure(self, assignment: dict[int, int]) -> None:
        """Program a whole {destination: source} assignment at once."""
        for destination, source in assignment.items():
            self.connect(source, destination)

    def configured_source(self, destination: int) -> int | None:
        """The input programmed to feed output ``destination``, or ``None``."""
        if not 0 <= destination < self.n_outputs:
            raise RoutingError(f"destination port {destination} out of range")
        return self._selects[destination]

    def configuration_words(self) -> list[int]:
        """The select codes as programmed (0 = unconnected, k+1 = input k).

        The word list is what a configuration controller would shift in;
        its width times the output count equals :meth:`config_bits`.
        """
        return [0 if s is None else s + 1 for s in self._selects]

    def validate_permutation(self, assignment: dict[int, int]) -> None:
        """Check an assignment is realisable (it always is on a full crossbar).

        Kept for interface parity with :class:`LimitedCrossbar`, where
        windows make some assignments impossible.
        """
        for destination, source in assignment.items():
            self._check_ports(source, destination)

    # -- routing ------------------------------------------------------------

    def can_route(self, source: int, destination: int) -> bool:
        """Whether ``source`` can currently reach ``destination`` through live hardware."""
        self._check_ports(source, destination)
        return not (self.input_failed(source) or self.output_failed(destination))

    def route(self, source: int, destination: int) -> Route:
        """Carry one transfer ``source`` -> ``destination``, raising if no live path exists."""
        self._check_ports(source, destination)
        # A crossbar routes around dead resources by *selecting different
        # ports*; a route that names a dead port is itself unrealisable.
        self._check_port_health(source, destination)
        return Route(
            source=self.input_label(source),
            destination=self.output_label(destination),
            path=(self.input_label(source), "xbar", self.output_label(destination)),
            cycles=1,
        )

    def transfer(self, destination: int, inputs: "list[object]") -> object:
        """Read through the programmed switch: the value the output sees.

        ``inputs`` holds one value per input port; returns the value
        selected for ``destination`` or raises if it is unconnected.
        """
        if len(inputs) != self.n_inputs:
            raise ConfigurationError(
                f"expected {self.n_inputs} input values, got {len(inputs)}"
            )
        source = self.configured_source(destination)
        if source is None:
            raise ConfigurationError(f"output {destination} is not connected")
        if self.input_failed(source) or self.output_failed(destination):
            raise FaultError(
                f"transfer to output {destination} crosses a failed port; "
                "reprogram the crossbar around the dead resource"
            )
        return inputs[source]

    # -- metrics ---------------------------------------------------------------

    def as_graph(self) -> nx.Graph:
        """The surviving connectivity as a directed graph."""
        graph = nx.Graph()
        for s in range(self.n_inputs):
            graph.add_edge(self.input_label(s), "xbar")
        for d in range(self.n_outputs):
            graph.add_edge("xbar", self.output_label(d))
        return graph

    def area_ge(self) -> float:
        """Area cost in gate equivalents (the Eq. 1 term)."""
        return self._model.area_ge(self.n_inputs, self.n_outputs)

    def config_bits(self) -> int:
        """Configuration bits consumed (the Eq. 2 term)."""
        return self._model.config_bits(self.n_inputs, self.n_outputs)


class LimitedCrossbar(Interconnect):
    """Window-limited crossbar: output ``d`` reaches inputs within ±window.

    Used to model DRRA's 3-hop sliding window and similar partial
    interconnects. Requires equal port counts (it is a peer network).
    """

    def __init__(self, n_ports: int, *, window: int = 3, width_bits: int = 32):
        super().__init__(n_ports, n_ports, width_bits=width_bits)
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        # Each output sees itself plus `window` neighbours on each side.
        self._model = LimitedCrossbarModel(
            window=min(2 * window + 1, n_ports), width_bits=width_bits
        )
        self._selects: list[int | None] = [None] * n_ports

    @property
    def link_kind(self) -> LinkKind:
        """The taxonomy cell this interconnect realises (direct ``-`` or switched ``x``)."""
        return LinkKind.SWITCHED

    def reachable_inputs(self, destination: int) -> range:
        """The inputs that fall inside output ``destination``'s window."""
        lo = max(0, destination - self.window)
        hi = min(self.n_inputs - 1, destination + self.window)
        return range(lo, hi + 1)

    def can_route(self, source: int, destination: int) -> bool:
        """Whether ``source`` can currently reach ``destination`` through live hardware."""
        self._check_ports(source, destination)
        if self.input_failed(source) or self.output_failed(destination):
            return False
        return source in self.reachable_inputs(destination)

    def connect(self, source: int, destination: int) -> None:
        """Route ``source`` to ``destination`` (``source`` must lie in the window)."""
        self._check_ports(source, destination)
        if source not in self.reachable_inputs(destination):
            raise RoutingError(
                f"input {source} is outside output {destination}'s "
                f"±{self.window} window"
            )
        self._check_port_health(source, destination)
        current = self._selects[destination]
        if current is not None and current != source:
            raise ConfigurationError(
                f"output {destination} is already configured to listen to "
                f"input {current}; disconnect it before reprogramming"
            )
        self._selects[destination] = source

    def disconnect(self, destination: int) -> None:
        """Tear down the route feeding output ``destination``."""
        if not 0 <= destination < self.n_outputs:
            raise RoutingError(f"destination port {destination} out of range")
        self._selects[destination] = None

    def configured_source(self, destination: int) -> int | None:
        """The input programmed to feed output ``destination``, or ``None``."""
        if not 0 <= destination < self.n_outputs:
            raise RoutingError(f"destination port {destination} out of range")
        return self._selects[destination]

    def validate_permutation(self, assignment: dict[int, int]) -> None:
        """Raise RoutingError when any pair falls outside its window."""
        for destination, source in assignment.items():
            if not self.can_route(source, destination):
                raise RoutingError(
                    f"assignment {source}->{destination} exceeds the "
                    f"±{self.window} window"
                )

    def route(self, source: int, destination: int) -> Route:
        """Carry one transfer ``source`` -> ``destination``, raising if no live path exists."""
        self._check_ports(source, destination)
        if source not in self.reachable_inputs(destination):
            raise RoutingError(
                f"input {source} is outside output {destination}'s "
                f"±{self.window} window"
            )
        self._check_port_health(source, destination)
        return Route(
            source=self.input_label(source),
            destination=self.output_label(destination),
            path=(
                self.input_label(source),
                f"win{destination}",
                self.output_label(destination),
            ),
            cycles=1,
        )

    def as_graph(self) -> nx.Graph:
        """The surviving connectivity as a directed graph."""
        graph = nx.Graph()
        for d in range(self.n_outputs):
            hub = f"win{d}"
            graph.add_edge(hub, self.output_label(d))
            for s in self.reachable_inputs(d):
                graph.add_edge(self.input_label(s), hub)
        return graph

    def area_ge(self) -> float:
        """Area cost in gate equivalents (the Eq. 1 term)."""
        return self._model.area_ge(self.n_inputs, self.n_outputs)

    def config_bits(self) -> int:
        """Configuration bits consumed (the Eq. 2 term)."""
        return self._model.config_bits(self.n_inputs, self.n_outputs)
