"""2-D mesh network-on-chip with XY routing.

Models the packet-switched NoC of REDEFINE's 8x8 compute-element fabric.
Nodes sit on a grid; packets route X-first then Y. Besides single-route
queries, :meth:`Mesh2D.simulate` moves a batch of packets cycle by cycle
with one-flit-per-link capacity, so congestion behaviour is observable.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.connectivity import LinkKind
from repro.core.errors import FaultError, RoutingError
from repro.interconnect.topology import Interconnect, Route
from repro.models.switches import LimitedCrossbarModel

__all__ = ["Mesh2D", "MeshSimulationResult"]


@dataclass(frozen=True, slots=True)
class MeshSimulationResult:
    """Outcome of a batched packet simulation."""

    delivered: int
    cycles: int
    total_hops: int
    max_queue: int

    @property
    def mean_hops(self) -> float:
        """Mean hop count over the simulation's routed transfers."""
        return self.total_hops / self.delivered if self.delivered else 0.0


class Mesh2D(Interconnect):
    """``rows x cols`` mesh; node ``(r, c)`` has linear index ``r*cols + c``."""

    def __init__(self, rows: int, cols: int, *, width_bits: int = 32):
        if rows <= 0 or cols <= 0:
            raise ValueError("mesh dimensions must be positive")
        super().__init__(rows * cols, rows * cols, width_bits=width_bits)
        self.rows = rows
        self.cols = cols
        # Each router is a small switch over its <=5 ports (4 neighbours
        # + local); model it as a per-node limited crossbar.
        self._router_model = LimitedCrossbarModel(window=5, width_bits=width_bits)

    # -- coordinates -----------------------------------------------------

    def coords(self, index: int) -> tuple[int, int]:
        """Grid coordinates ``(row, col)`` of node ``index``."""
        if not 0 <= index < self.rows * self.cols:
            raise RoutingError(f"node index {index} out of range")
        return divmod(index, self.cols)

    def index(self, row: int, col: int) -> int:
        """Node index at grid coordinates ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise RoutingError(f"coordinates ({row}, {col}) out of range")
        return row * self.cols + col

    def node_label(self, index: int) -> str:
        """Graph label for node ``index``."""
        row, col = self.coords(index)
        return f"n{row}_{col}"

    # -- fault state -------------------------------------------------------

    def fail_node(self, index: int) -> None:
        """Kill a router/PE tile: every wire through it goes with it."""
        self.coords(index)  # range check
        self.fail_input_port(index)
        self.fail_output_port(index)

    def fail_link_between(self, a: int, b: int) -> None:
        """Cut the mesh wire between two adjacent node indices."""
        (ar, ac), (br, bc) = self.coords(a), self.coords(b)
        if abs(ar - br) + abs(ac - bc) != 1:
            raise RoutingError(
                f"nodes {a} and {b} are not mesh neighbours; no wire to cut"
            )
        self.fail_link(self.node_label(a), self.node_label(b))

    def node_failed(self, index: int) -> bool:
        """Whether node ``index`` has failed (either port side)."""
        return self.input_failed(index) or self.output_failed(index)

    def _path_healthy(self, path: "list[int]") -> bool:
        if any(self.node_failed(node) for node in path):
            return False
        return not any(
            self.link_failed(self.node_label(a), self.node_label(b))
            for a, b in zip(path, path[1:])
        )

    def _detour_labels(self, source: int, destination: int) -> "tuple[str, ...] | None":
        """Adaptive reroute around dead wires/tiles, or None if partitioned."""
        graph = self.surviving_graph()
        for node in range(self.rows * self.cols):
            if self.node_failed(node) and node not in (source, destination):
                label = self.node_label(node)
                if graph.has_node(label):
                    graph.remove_node(label)
        src, dst = self.node_label(source), self.node_label(destination)
        try:
            return tuple(nx.shortest_path(graph, src, dst))
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    # -- routing ------------------------------------------------------------

    @property
    def link_kind(self) -> LinkKind:
        """The taxonomy cell this interconnect realises (direct ``-`` or switched ``x``)."""
        return LinkKind.SWITCHED

    def can_route(self, source: int, destination: int) -> bool:
        """Whether ``source`` can currently reach ``destination`` through live hardware."""
        self._check_ports(source, destination)
        if self.node_failed(source) or self.node_failed(destination):
            return False
        if self.fault_count == 0 or self._path_healthy(self.xy_path(source, destination)):
            return True
        return self._detour_labels(source, destination) is not None

    def xy_path(self, source: int, destination: int) -> list[int]:
        """Node indices along the X-first-then-Y route, endpoints included."""
        src_row, src_col = self.coords(source)
        dst_row, dst_col = self.coords(destination)
        path = [source]
        col = src_col
        while col != dst_col:
            col += 1 if dst_col > col else -1
            path.append(self.index(src_row, col))
        row = src_row
        while row != dst_row:
            row += 1 if dst_row > row else -1
            path.append(self.index(row, dst_col))
        return path

    def route(self, source: int, destination: int) -> Route:
        """XY route, falling back to an adaptive detour around faults.

        This is the packet-switched fabric earning its ``x`` cell: a dead
        wire or tile costs extra hops, not the connection — unless the
        fault set has partitioned the mesh or killed an endpoint, which
        raises :class:`FaultError`.
        """
        self._check_ports(source, destination)
        if self.node_failed(source) or self.node_failed(destination):
            raise FaultError(
                f"mesh endpoint node {source if self.node_failed(source) else destination} "
                "has failed; no route can originate or terminate at a dead tile"
            )
        path = self.xy_path(source, destination)
        if self.fault_count == 0 or self._path_healthy(path):
            labels = tuple(self.node_label(i) for i in path)
        else:
            detour = self._detour_labels(source, destination)
            if detour is None:
                raise FaultError(
                    f"mesh is partitioned: no surviving path from node "
                    f"{source} to node {destination}"
                )
            labels = detour
        return Route(
            source=labels[0],
            destination=labels[-1],
            path=labels,
            cycles=max(len(labels) - 1, 1),
        )

    def simulate(self, packets: "list[tuple[int, int]]") -> MeshSimulationResult:
        """Move packets hop by hop with per-link capacity one.

        Contention policy: when several packets want the same directed
        link in the same cycle, the lowest packet id wins and the rest
        stall a cycle. Deterministic, so results are reproducible.
        """
        paths = [self.xy_path(s, d) for s, d in packets]
        position = [0] * len(packets)  # index into each packet's path
        delivered = 0
        cycles = 0
        total_hops = 0
        max_queue = 0
        active = {i for i, p in enumerate(paths) if len(p) > 1}
        for i, p in enumerate(paths):
            if len(p) == 1:
                delivered += 1
        guard = 4 * (self.rows + self.cols) * max(len(packets), 1) + 16
        while active:
            cycles += 1
            if cycles > guard:  # pragma: no cover - defensive
                raise RoutingError("mesh simulation failed to converge")
            claimed: dict[tuple[int, int], int] = {}
            moved: list[int] = []
            queue_pressure = 0
            for pid in sorted(active):
                path = paths[pid]
                here = path[position[pid]]
                nxt = path[position[pid] + 1]
                link = (here, nxt)
                if link in claimed:
                    queue_pressure += 1
                    continue
                claimed[link] = pid
                moved.append(pid)
            max_queue = max(max_queue, queue_pressure)
            for pid in moved:
                position[pid] += 1
                total_hops += 1
                if position[pid] == len(paths[pid]) - 1:
                    active.discard(pid)
                    delivered += 1
        return MeshSimulationResult(
            delivered=delivered,
            cycles=cycles,
            total_hops=total_hops,
            max_queue=max_queue,
        )

    # -- metrics ---------------------------------------------------------------

    def as_graph(self) -> nx.Graph:
        """The surviving connectivity as a directed graph."""
        graph = nx.Graph()
        for r in range(self.rows):
            for c in range(self.cols):
                node = f"n{r}_{c}"
                if c + 1 < self.cols:
                    graph.add_edge(node, f"n{r}_{c + 1}")
                if r + 1 < self.rows:
                    graph.add_edge(node, f"n{r + 1}_{c}")
        if self.rows * self.cols == 1:
            graph.add_node("n0_0")
        return graph

    def area_ge(self) -> float:
        """Area cost in gate equivalents (the Eq. 1 term)."""
        # One router per node, each a 5-port switch.
        per_router = self._router_model.area_ge(5, 5)
        return self.rows * self.cols * per_router

    def config_bits(self) -> int:
        """Configuration bits consumed (the Eq. 2 term)."""
        # Dynamic (packet) routing needs no static route configuration,
        # but each router carries a small mode/address word.
        per_router = self._router_model.config_bits(5, 1)
        return self.rows * self.cols * per_router
