"""Shared-bus interconnect with round-robin arbitration.

A bus is switched in the taxonomy sense — any master reaches any slave —
but serialised: one transfer per cycle. The executable model arbitrates a
batch of requests cycle by cycle, so contention (the scalability problem
the paper notes for RaPiD's buses) is measurable rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.connectivity import LinkKind
from repro.core.errors import RoutingError
from repro.interconnect.topology import Interconnect, Route
from repro.models.switches import SharedBusModel

__all__ = ["SharedBus", "BusSchedule"]


@dataclass(frozen=True, slots=True)
class BusSchedule:
    """Outcome of arbitrating a request batch.

    ``grants[i]`` is the cycle (0-based) in which request ``i`` was
    granted; ``makespan`` is the number of cycles the batch occupied.
    """

    grants: tuple[int, ...]
    makespan: int

    @property
    def mean_wait(self) -> float:
        """Mean cycles a granted request waited for the bus."""
        if not self.grants:
            return 0.0
        return sum(self.grants) / len(self.grants)


class SharedBus(Interconnect):
    """Single shared bus: full reachability, one grant per cycle."""

    def __init__(self, n_masters: int, n_slaves: int, *, width_bits: int = 32):
        super().__init__(n_masters, n_slaves, width_bits=width_bits)
        self._model = SharedBusModel(width_bits=width_bits)
        self._next_master = 0  # round-robin pointer

    @property
    def link_kind(self) -> LinkKind:
        """The taxonomy cell this interconnect realises (direct ``-`` or switched ``x``)."""
        return LinkKind.SWITCHED

    def can_route(self, source: int, destination: int) -> bool:
        """Whether ``source`` can currently reach ``destination`` through live hardware."""
        self._check_ports(source, destination)
        return True

    def route(self, source: int, destination: int) -> Route:
        """Carry one transfer ``source`` -> ``destination``, raising if no live path exists."""
        self._check_ports(source, destination)
        return Route(
            source=self.input_label(source),
            destination=self.output_label(destination),
            path=(self.input_label(source), "bus", self.output_label(destination)),
            cycles=1,
        )

    def arbitrate(self, requests: "list[tuple[int, int]]") -> BusSchedule:
        """Serve a batch of (master, slave) requests round-robin.

        Each cycle the pointer scans masters from the last grant + 1 and
        grants the first master with a pending request; the batch
        completes in exactly ``len(requests)`` cycles (one grant each),
        but *which* cycle each request gets reflects arbitration order.
        """
        for master, slave in requests:
            self._check_ports(master, slave)
        pending: dict[int, list[int]] = {}
        for index, (master, _slave) in enumerate(requests):
            pending.setdefault(master, []).append(index)
        grants = [0] * len(requests)
        cycle = 0
        remaining = len(requests)
        while remaining:
            granted = False
            for offset in range(self.n_inputs):
                master = (self._next_master + offset) % self.n_inputs
                queue = pending.get(master)
                if queue:
                    request_index = queue.pop(0)
                    grants[request_index] = cycle
                    self._next_master = (master + 1) % self.n_inputs
                    remaining -= 1
                    granted = True
                    break
            if not granted:  # pragma: no cover - defensive; cannot happen
                raise RoutingError("bus arbitration deadlock")
            cycle += 1
        return BusSchedule(grants=tuple(grants), makespan=cycle)

    def as_graph(self) -> nx.Graph:
        """The surviving connectivity as a directed graph."""
        graph = nx.Graph()
        for m in range(self.n_inputs):
            graph.add_edge(self.input_label(m), "bus")
        for s in range(self.n_outputs):
            graph.add_edge("bus", self.output_label(s))
        return graph

    def area_ge(self) -> float:
        """Area cost in gate equivalents (the Eq. 1 term)."""
        return self._model.area_ge(self.n_inputs, self.n_outputs)

    def config_bits(self) -> int:
        """Configuration bits consumed (the Eq. 2 term)."""
        return self._model.config_bits(self.n_inputs, self.n_outputs)
