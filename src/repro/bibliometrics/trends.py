"""Trend extraction over the publication corpus (Fig. 1 analytics).

Produces the figure's per-topic, per-year series plus the summary
statistics behind the paper's narrative claim: that the last five years
of the window show a significant rise for multicore and reconfigurable
computing relative to the preceding decade.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bibliometrics.corpus import PublicationCorpus

__all__ = ["TopicTrend", "TrendReport", "compute_trends"]


@dataclass(frozen=True, slots=True)
class TopicTrend:
    """One Fig.-1 series with derived growth statistics."""

    topic: str
    years: tuple[int, ...]
    counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.years) != len(self.counts):
            raise ValueError("years and counts must align")

    @property
    def total(self) -> int:
        """Total matched publications over the whole period."""
        return sum(self.counts)

    def window_mean(self, first: int, last: int) -> float:
        """Mean yearly count over [first, last]."""
        values = [
            count
            for year, count in zip(self.years, self.counts)
            if first <= year <= last
        ]
        if not values:
            raise ValueError(f"window {first}..{last} outside series")
        return sum(values) / len(values)

    def recent_growth_factor(self, *, recent_years: int = 5) -> float:
        """Mean of the last ``recent_years`` over the mean of the rest.

        The paper's 'increased significantly in the last five years'
        claim corresponds to this factor being large for multicore and
        reconfigurable computing.
        """
        if len(self.years) <= recent_years:
            raise ValueError("series too short for the requested window")
        split = self.years[-recent_years]
        early = self.window_mean(self.years[0], split - 1)
        late = self.window_mean(split, self.years[-1])
        if early == 0:
            return float("inf") if late > 0 else 1.0
        return late / early

    def moving_average(self, window: int = 3) -> tuple[float, ...]:
        """Centred moving average (edges use the available neighbourhood)."""
        if window <= 0 or window % 2 == 0:
            raise ValueError("window must be a positive odd number")
        half = window // 2
        out = []
        for index in range(len(self.counts)):
            lo = max(0, index - half)
            hi = min(len(self.counts), index + half + 1)
            chunk = self.counts[lo:hi]
            out.append(sum(chunk) / len(chunk))
        return tuple(out)


@dataclass(frozen=True, slots=True)
class TrendReport:
    """All Fig.-1 series plus the ordering by recent growth."""

    trends: tuple[TopicTrend, ...]

    def by_topic(self, topic: str) -> TopicTrend:
        """The trend for ``topic``; raises ``KeyError`` for unknown topics."""
        for trend in self.trends:
            if trend.topic == topic:
                return trend
        raise KeyError(f"no trend for topic {topic!r}")

    def growth_ranking(self, *, recent_years: int = 5) -> list[tuple[str, float]]:
        """Topics ordered by recent growth factor, fastest-growing first."""
        ranked = [
            (trend.topic, trend.recent_growth_factor(recent_years=recent_years))
            for trend in self.trends
        ]
        ranked.sort(key=lambda item: -item[1])
        return ranked


def compute_trends(corpus: "PublicationCorpus | None" = None) -> TrendReport:
    """Recompute every topic's series by querying the corpus records."""
    active = corpus if corpus is not None else PublicationCorpus()
    trends = []
    for topic in active.topics:
        counts = active.count_by_year(topic.keywords[0])
        years = tuple(sorted(counts))
        trends.append(
            TopicTrend(
                topic=topic.name,
                years=years,
                counts=tuple(counts[year] for year in years),
            )
        )
    return TrendReport(trends=tuple(trends))
