"""Synthetic publication corpus — the Fig.-1 substrate.

Fig. 1 of the paper plots publication counts per year (1995-2010) for
several parallel-computing topics, "compiled using the IEEE database".
That database is not redistributable, so this module builds the closest
synthetic equivalent: a seeded generator producing individual publication
records (year, venue, title keywords) whose per-topic arrival rates
follow explicit growth models calibrated to the qualitative trend the
paper reports — research interest "in multicore and reconfigurable
computer architectures has increased significantly in the last five
years" (i.e. roughly 2006-2010).

The *query pipeline* is faithful: the trend figures are recomputed by
keyword search over the raw records, exactly how one would drive the
real database, rather than by reading the rate models back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Topic", "Publication", "PublicationCorpus", "DEFAULT_TOPICS"]


@dataclass(frozen=True, slots=True)
class Topic:
    """One research topic with its publication-rate model.

    Expected publications in year ``y`` follow a logistic ramp:
    ``base + scale / (1 + exp(-(y - midpoint) / width))`` — flat early,
    inflecting at ``midpoint``. ``keywords`` drive the query side; the
    first keyword is the topic's canonical label.
    """

    name: str
    keywords: tuple[str, ...]
    base_rate: float
    scale: float
    midpoint: float
    width: float

    def expected_count(self, year: int) -> float:
        """Expected publications for this topic in ``year`` (logistic growth model)."""
        return self.base_rate + self.scale / (
            1.0 + math.exp(-(year - self.midpoint) / self.width)
        )


#: Topic models mirroring the Fig.-1 series. Midpoints place the surge of
#: multicore/reconfigurable work in the mid-2000s (multicore inflects
#: hardest, after ~2005), while classic parallel-programming output grows
#: slowly — the figure's qualitative story.
DEFAULT_TOPICS: tuple[Topic, ...] = (
    Topic(
        name="parallel programming",
        keywords=("parallel programming", "parallelizing compiler", "openmp"),
        base_rate=60.0, scale=90.0, midpoint=2004.0, width=3.0,
    ),
    Topic(
        name="multicore architecture",
        keywords=("multicore", "many-core", "chip multiprocessor"),
        base_rate=4.0, scale=260.0, midpoint=2006.5, width=1.2,
    ),
    Topic(
        name="reconfigurable computing",
        keywords=("reconfigurable", "cgra", "coarse grain reconfigurable"),
        base_rate=15.0, scale=150.0, midpoint=2005.5, width=1.6,
    ),
    Topic(
        name="fpga",
        keywords=("fpga", "field programmable gate array", "lut"),
        base_rate=40.0, scale=120.0, midpoint=2003.0, width=2.5,
    ),
    Topic(
        name="gpu computing",
        keywords=("gpu", "gpgpu", "graphics processor"),
        base_rate=1.0, scale=110.0, midpoint=2007.5, width=1.0,
    ),
)

_VENUES = (
    "IPPS", "ISCA", "MICRO", "FPL", "FCCM", "DATE", "DAC", "HPCA",
    "SC", "PACT", "ISSCC", "TVLSI",
)


@dataclass(frozen=True, slots=True)
class Publication:
    """One synthetic record, shaped like a bibliographic search hit."""

    pub_id: int
    year: int
    venue: str
    title: str
    keywords: tuple[str, ...]

    def matches(self, query: str) -> bool:
        """Case-insensitive keyword/title containment — the search model."""
        needle = query.lower()
        if needle in self.title.lower():
            return True
        return any(needle in kw.lower() for kw in self.keywords)


class PublicationCorpus:
    """A seeded corpus over a year range with Poisson-distributed counts."""

    def __init__(
        self,
        *,
        start_year: int = 1995,
        end_year: int = 2010,
        topics: "tuple[Topic, ...]" = DEFAULT_TOPICS,
        seed: int = 2012,
    ):
        if end_year < start_year:
            raise ValueError("end_year must not precede start_year")
        if not topics:
            raise ValueError("corpus needs at least one topic")
        self.start_year = start_year
        self.end_year = end_year
        self.topics = topics
        self.seed = seed
        self._publications: list[Publication] | None = None

    @property
    def years(self) -> range:
        """Every simulated year, first through last inclusive."""
        return range(self.start_year, self.end_year + 1)

    def generate(self) -> list[Publication]:
        """Materialise (and cache) the record set. Deterministic per seed."""
        if self._publications is not None:
            return self._publications
        rng = np.random.default_rng(self.seed)
        records: list[Publication] = []
        pub_id = 0
        for topic in self.topics:
            for year in self.years:
                count = int(rng.poisson(topic.expected_count(year)))
                for _ in range(count):
                    venue = _VENUES[int(rng.integers(len(_VENUES)))]
                    primary = topic.keywords[
                        int(rng.integers(len(topic.keywords)))
                    ]
                    title = (
                        f"A study of {primary} techniques "
                        f"({topic.name}, {year})"
                    )
                    records.append(
                        Publication(
                            pub_id=pub_id,
                            year=year,
                            venue=venue,
                            title=title,
                            keywords=topic.keywords,
                        )
                    )
                    pub_id += 1
        self._publications = records
        return records

    def __len__(self) -> int:
        return len(self.generate())

    def search(self, query: str, *, year: int | None = None) -> list[Publication]:
        """Keyword search, optionally restricted to one year."""
        hits = [p for p in self.generate() if p.matches(query)]
        if year is not None:
            hits = [p for p in hits if p.year == year]
        return hits

    def count_by_year(self, query: str) -> dict[int, int]:
        """Publication count per year matching a query (a Fig.-1 series)."""
        counts = {year: 0 for year in self.years}
        for publication in self.generate():
            if publication.matches(query):
                counts[publication.year] += 1
        return counts

    def venue_distribution(self, query: str) -> dict[str, int]:
        """Hit counts per venue for a query, descending by count."""
        counts: dict[str, int] = {}
        for publication in self.search(query):
            counts[publication.venue] = counts.get(publication.venue, 0) + 1
        return dict(sorted(counts.items(), key=lambda item: (-item[1], item[0])))

    def cumulative_counts(self, query: str) -> dict[int, int]:
        """Running total of matches up to and including each year."""
        yearly = self.count_by_year(query)
        total = 0
        out: dict[int, int] = {}
        for year in sorted(yearly):
            total += yearly[year]
            out[year] = total
        return out
