"""Synthetic bibliometric substrate for Fig. 1: a seeded publication
corpus standing in for the IEEE database, plus the trend analytics that
recompute the figure's series by querying it."""

from repro.bibliometrics.corpus import (
    DEFAULT_TOPICS,
    Publication,
    PublicationCorpus,
    Topic,
)
from repro.bibliometrics.trends import TopicTrend, TrendReport, compute_trends

__all__ = [
    "DEFAULT_TOPICS",
    "Publication",
    "PublicationCorpus",
    "Topic",
    "TopicTrend",
    "TrendReport",
    "compute_trends",
]
