"""Cost out the surveyed architectures — Table III meets Eq. 1/Eq. 2.

The paper classifies the 25 architectures but never costs them; this
module closes the loop, evaluating every survey record with the area,
configuration, energy and reconfiguration models *at its own concrete
size* (MorphoSys's 64 cells, IMAGINE's 6 clusters, the template
architectures at a caller-chosen n). The result is the scatter an
architect would actually consult: published machine vs estimated cost
vs taxonomy flexibility.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Mapping

from repro.models.area import AreaModel
from repro.models.configbits import ConfigBitsModel
from repro.models.energy import EnergyModel
from repro.models.reconfiguration import ReconfigurationModel, ReconfigurationPort
from repro.obs import trace as _trace
from repro.perf import (
    ModelCache,
    ShardedCheckpoint,
    SweepCheckpoint,
    evaluate_models,
    fabric_sweep,
    sweep,
)
from repro.registry.architectures import all_architectures
from repro.registry.record import ArchitectureRecord

__all__ = ["SurveyCostPoint", "cost_point", "evaluate_survey", "survey_cost_table"]


@dataclass(frozen=True, slots=True)
class SurveyCostPoint:
    """One surveyed architecture with its model estimates."""

    name: str
    taxonomic_name: str
    flexibility: int
    n_effective: int
    area_ge: float
    config_bits: int
    energy_per_op_pj: float
    reconfig_cycles: int

    def row(self) -> tuple[str, ...]:
        """The record as a tuple of formatted table cells."""
        return (
            self.name,
            self.taxonomic_name,
            str(self.flexibility),
            str(self.n_effective),
            f"{self.area_ge:,.0f}",
            f"{self.config_bits:,}",
            f"{self.energy_per_op_pj:.1f}",
            f"{self.reconfig_cycles:,}",
        )


def _effective_n(record: ArchitectureRecord, default_n: int) -> int:
    """The design size used for evaluation: concrete where Table III
    gives one, ``default_n`` for template (n/m/v) architectures."""
    resolved = record.signature.dps.resolve(default_n)
    return max(resolved, 1)


def cost_point(
    record: ArchitectureRecord, *, default_n: int, cache: "ModelCache | None"
) -> SurveyCostPoint:
    """Price one surveyed architecture — the sweep's per-point worker.

    Public because the async ``survey-costs`` job kind
    (:mod:`repro.serve.jobs`) sweeps over exactly this function; it is
    a pure function of ``(record, default_n)``, which is what makes the
    job's checkpointed resume bit-identical.
    """
    n = _effective_n(record, default_n)
    estimates = evaluate_models(record.signature, n=n, cache=cache)
    return SurveyCostPoint(
        name=record.name,
        taxonomic_name=record.derived_name,
        flexibility=record.derived_flexibility,
        n_effective=n,
        area_ge=estimates.area_ge,
        config_bits=estimates.config_bits,
        energy_per_op_pj=estimates.energy_per_op_pj,
        reconfig_cycles=estimates.reconfig_cycles,
    )


def _evaluate_survey_kernel(
    records: "tuple[ArchitectureRecord, ...]", default_n: int
) -> "list[SurveyCostPoint] | None":
    """Vectorized fast path pricing the whole survey in one batch.

    Area and configuration bits come from :mod:`repro.core.batch`
    (grouped, bit-exact, priced at each record's own size); the energy
    estimate and the bits-to-cycles conversion reuse the scalar default
    models so every :class:`SurveyCostPoint` field is bit-identical to
    the scalar sweep's. Returns ``None`` when NumPy is missing.
    """
    from repro.core import batch as _batch

    if not _batch.kernel_supports(None, None):
        return None
    with _trace.span(
        "analysis.survey_costs",
        architectures=len(records),
        default_n=default_n,
        jobs=1,
        kernel=True,
    ):
        sizes = [_effective_n(record, default_n) for record in records]
        columns = _batch.SignatureBatch.from_signatures(
            record.signature for record in records
        )
        estimates = _batch.price_batch(columns, n=sizes)
        energy = EnergyModel()
        port = ReconfigurationPort()
        points = []
        for index, record in enumerate(records):
            bits = int(estimates.config_bits[index])
            points.append(
                SurveyCostPoint(
                    name=record.name,
                    taxonomic_name=record.derived_name,
                    flexibility=record.derived_flexibility,
                    n_effective=sizes[index],
                    area_ge=float(estimates.area_ge[index]),
                    config_bits=bits,
                    energy_per_op_pj=energy.energy_per_op(
                        record.signature, n=sizes[index]
                    ),
                    reconfig_cycles=-(-bits // port.bandwidth_bits_per_cycle),
                )
            )
        return points


def evaluate_survey(
    *,
    default_n: int = 16,
    area_model: "AreaModel | None" = None,
    config_model: "ConfigBitsModel | None" = None,
    energy_model: "EnergyModel | None" = None,
    reconfig_model: "ReconfigurationModel | None" = None,
    jobs: int = 1,
    executor: str = "process",
    on_error: str = "raise",
    timeout_s: "float | None" = None,
    resume: bool = False,
    checkpoint_dir: "str | None" = None,
    workers: "str | None" = None,
    fabric_options: "Mapping[str, Any] | None" = None,
    batch_kernel: bool = True,
) -> list[SurveyCostPoint]:
    """Estimate every surveyed architecture's costs at its own size.

    Evaluations go through the :mod:`repro.perf` model cache — two
    architectures sharing a signature and size are priced once — and
    ``jobs``/``executor`` fan the records out through the sweep engine
    with order-preserving results. ``on_error``/``timeout_s`` set the
    engine's failure policy (failed points are dropped from the result),
    and ``resume=True`` journals completed records for restartability.

    ``workers`` (``"HOST:PORT,HOST:PORT"``) routes the sweep through the
    distributed fabric instead of a local pool; with ``resume=True`` the
    journal becomes an index-sharded :class:`ShardedCheckpoint` whose
    merge is byte-identical to the single-host journal.
    ``fabric_options`` forwards extra :func:`~repro.perf.fabric_sweep`
    keywords (``max_lease_size``, ``membership``, ``listen``, …) —
    scheduling knobs that never change the artifact.

    ``batch_kernel=True`` (the default) prices plain single-job,
    default-model runs through the vectorized :mod:`repro.core.batch`
    kernel when NumPy is available; results — and therefore the
    rendered cost table — are bit-identical either way.
    """
    custom = (area_model, config_model, energy_model, reconfig_model)
    records = all_architectures()
    if (
        batch_kernel
        and all(model is None for model in custom)
        and jobs == 1
        and workers is None
        and not resume
        and on_error == "raise"
        and timeout_s is None
    ):
        points = _evaluate_survey_kernel(records, default_n)
        if points is not None:
            return points
    cache = (
        None
        if all(model is None for model in custom)
        else ModelCache(
            area_model=area_model,
            config_model=config_model,
            energy_model=energy_model,
            reconfig_model=reconfig_model,
        )
    )
    worker = functools.partial(cost_point, default_n=default_n, cache=cache)
    chosen_executor = "serial" if jobs == 1 else executor
    checkpoint = None
    if resume:
        spec = {
            "default_n": default_n,
            "records": [record.name for record in records],
            "models": [repr(model) for model in custom],
        }
        opener = ShardedCheckpoint if workers else SweepCheckpoint
        checkpoint = opener.open("costs", spec, directory=checkpoint_dir)
    try:
        with _trace.span(
            "analysis.survey_costs", architectures=len(records), default_n=default_n, jobs=jobs
        ):
            if workers:
                result = fabric_sweep(
                    worker,
                    records,
                    workers=workers,
                    on_error=on_error,
                    timeout_s=timeout_s,
                    checkpoint=checkpoint,
                    fallback_executor=chosen_executor,
                    fallback_jobs=jobs,
                    **dict(fabric_options or {}),
                )
            else:
                result = sweep(
                    worker,
                    records,
                    executor=chosen_executor,
                    jobs=jobs,
                    on_error=on_error,
                    timeout_s=timeout_s,
                    checkpoint=checkpoint,
                )
    finally:
        if checkpoint is not None:
            checkpoint.close()
    return [point for point in result if point is not None]


def survey_cost_table(
    *,
    default_n: int = 16,
    jobs: int = 1,
    on_error: str = "raise",
    timeout_s: "float | None" = None,
    resume: bool = False,
    workers: "str | None" = None,
    fabric_options: "Mapping[str, Any] | None" = None,
    batch_kernel: bool = True,
) -> str:
    """Rendered cost table over the whole survey.

    Byte-identical whether the batch kernel, the scalar sweep, or the
    distributed fabric produced the underlying points — including under
    any ``fabric_options`` scheduling knobs.
    """
    from repro.reporting.tables import format_table

    points = evaluate_survey(
        default_n=default_n,
        jobs=jobs,
        on_error=on_error,
        timeout_s=timeout_s,
        resume=resume,
        workers=workers,
        fabric_options=fabric_options,
        batch_kernel=batch_kernel,
    )
    header = (
        "architecture", "class", "flex", "n", "area (GE)",
        "config bits", "pJ/op", "reload cycles",
    )
    return format_table(header, [p.row() for p in points])
