"""Cost out the surveyed architectures — Table III meets Eq. 1/Eq. 2.

The paper classifies the 25 architectures but never costs them; this
module closes the loop, evaluating every survey record with the area,
configuration, energy and reconfiguration models *at its own concrete
size* (MorphoSys's 64 cells, IMAGINE's 6 clusters, the template
architectures at a caller-chosen n). The result is the scatter an
architect would actually consult: published machine vs estimated cost
vs taxonomy flexibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.area import AreaModel
from repro.models.configbits import ConfigBitsModel
from repro.models.energy import EnergyModel
from repro.models.reconfiguration import ReconfigurationModel
from repro.registry.architectures import all_architectures
from repro.registry.record import ArchitectureRecord

__all__ = ["SurveyCostPoint", "evaluate_survey", "survey_cost_table"]


@dataclass(frozen=True, slots=True)
class SurveyCostPoint:
    """One surveyed architecture with its model estimates."""

    name: str
    taxonomic_name: str
    flexibility: int
    n_effective: int
    area_ge: float
    config_bits: int
    energy_per_op_pj: float
    reconfig_cycles: int

    def row(self) -> tuple[str, ...]:
        return (
            self.name,
            self.taxonomic_name,
            str(self.flexibility),
            str(self.n_effective),
            f"{self.area_ge:,.0f}",
            f"{self.config_bits:,}",
            f"{self.energy_per_op_pj:.1f}",
            f"{self.reconfig_cycles:,}",
        )


def _effective_n(record: ArchitectureRecord, default_n: int) -> int:
    """The design size used for evaluation: concrete where Table III
    gives one, ``default_n`` for template (n/m/v) architectures."""
    resolved = record.signature.dps.resolve(default_n)
    return max(resolved, 1)


def evaluate_survey(
    *,
    default_n: int = 16,
    area_model: "AreaModel | None" = None,
    config_model: "ConfigBitsModel | None" = None,
    energy_model: "EnergyModel | None" = None,
    reconfig_model: "ReconfigurationModel | None" = None,
) -> list[SurveyCostPoint]:
    """Estimate every surveyed architecture's costs at its own size."""
    area = area_model if area_model is not None else AreaModel()
    config = config_model if config_model is not None else ConfigBitsModel()
    energy = energy_model if energy_model is not None else EnergyModel(area_model=area)
    reconfig = (
        reconfig_model
        if reconfig_model is not None
        else ReconfigurationModel(config_model=config)
    )
    points = []
    for record in all_architectures():
        n = _effective_n(record, default_n)
        signature = record.signature
        points.append(
            SurveyCostPoint(
                name=record.name,
                taxonomic_name=record.derived_name,
                flexibility=record.derived_flexibility,
                n_effective=n,
                area_ge=area.total_ge(signature, n=n),
                config_bits=config.total(signature, n=n),
                energy_per_op_pj=energy.energy_per_op(signature, n=n),
                reconfig_cycles=reconfig.cost(signature, n=n).cycles,
            )
        )
    return points


def survey_cost_table(*, default_n: int = 16) -> str:
    """Rendered cost table over the whole survey."""
    from repro.reporting.tables import format_table

    points = evaluate_survey(default_n=default_n)
    header = (
        "architecture", "class", "flex", "n", "area (GE)",
        "config bits", "pJ/op", "reload cycles",
    )
    return format_table(header, [p.row() for p in points])
