"""Resilience analysis: the flexibility argument under failure (§III-B).

The paper scores flexibility by counting switched (``x``) sites; this
module gives that score an operational meaning: **switched sites are
what a machine routes around failures with**. A signature's expected
sustained throughput under a per-resource fault rate ``r`` is the
product of a *compute* factor (how much retired work survives dead
processing elements) and a *link* factor (how much connectivity
survives dead wires):

Compute factor
    * remap-capable signatures — a survivor can reach the dead unit's
      state through ``x`` cells, so only the dead fraction is lost:
      ``1 - max(0, r - s/n)`` (``s`` spare PEs absorb the first deaths
      outright);
    * multiple independent streams without remap — a dead DP also
      strands its private IP and memories, compounding the loss across
      both processor banks: ``(1 - r)^2``;
    * lockstep/single-stream without remap — the broadcast program
      assumes full width, so the machine only sustains nominal
      throughput while *every* lane lives: ``(1 - r)^n``.

Link factor (product over existing sites)
    * direct ``-`` site — exactly one wire per connection, no way
      around it: ``1 - r``;
    * switched ``x`` site — the switch re-routes most failures (a dead
      crossbar port still costs its endpoint): ``1 - r/2``;
    * switched site on a fine-granularity (universal) fabric — massive
      path redundancy between any two cells: ``1 - r/4``.

The model is deliberately coarse — its job is ordinal, not absolute:
sweeping the 25 surveyed architectures must rank the switch-rich
classes above the direct-wired ones, and that ranking must correlate
with the paper's Table-II flexibility scores. Both are tested.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.components import Multiplicity
from repro.core.errors import FaultError
from repro.core.connectivity import LINK_SITES, LinkKind
from repro.core.signature import Signature
from repro.obs import trace as _trace
from repro.perf import ShardedCheckpoint, SweepCheckpoint, fabric_sweep, sweep
from repro.registry.survey import SurveyEntry, survey_table

__all__ = [
    "DEFAULT_FAULT_RATES",
    "ResiliencePoint",
    "can_remap",
    "expected_throughput",
    "degradation_curve",
    "resilience_sweep",
    "flexibility_rank_correlation",
    "resilience_csv_rows",
    "render_resilience_table",
]

#: The default fault-rate sweep: 1% to 20% per-resource failure.
DEFAULT_FAULT_RATES: tuple[float, ...] = (0.01, 0.02, 0.05, 0.1, 0.2)


def can_remap(signature: Signature) -> bool:
    """Whether a signature's structure lets survivors absorb dead PEs.

    Mirrors the executable machines' rules:

    * universal flow — always (every cell sits in switched fabric);
    * multiple instruction streams — a survivor must fetch the dead
      core's program (switched IP-IM) *and* reach its data (switched
      DP-DM);
    * single-IP / data-flow — the broadcast engine needs a switched
      DP-side site (DP-DM or DP-DP) to re-home a lane's state.
    """
    if signature.is_universal_flow:
        return True
    dp_dm = signature.dp_dm.is_switched
    dp_dp = signature.dp_dp.is_switched
    if signature.ips.multiplicity is Multiplicity.MANY:
        return signature.ip_im.is_switched and dp_dm
    return dp_dm or dp_dp


def expected_throughput(
    signature: Signature,
    rate: float,
    *,
    n: int = 16,
    spares: int = 0,
) -> float:
    """Expected sustained throughput fraction at fault rate ``rate``."""
    if not 0.0 <= rate <= 1.0:
        raise FaultError(f"fault rate must lie in [0, 1], got {rate}")
    if n <= 0:
        raise FaultError("n must be positive")
    if spares < 0:
        raise FaultError("spares must be non-negative")
    n_pe = max(signature.dps.resolve(n), 1)
    if can_remap(signature):
        compute = 1.0 - max(0.0, rate - spares / n_pe)
    elif signature.ips.multiplicity is Multiplicity.MANY:
        compute = (1.0 - rate) ** 2
    else:
        compute = (1.0 - rate) ** n_pe
    links = 1.0
    fine = signature.is_universal_flow
    for site in LINK_SITES:
        kind = signature.link(site).kind
        if kind is LinkKind.DIRECT:
            links *= 1.0 - rate
        elif kind is LinkKind.SWITCHED:
            links *= 1.0 - rate / (4.0 if fine else 2.0)
    return compute * links


def degradation_curve(
    signature: Signature,
    rates: "tuple[float, ...]" = DEFAULT_FAULT_RATES,
    *,
    n: int = 16,
    spares: int = 0,
) -> tuple[float, ...]:
    """Throughput at each rate — non-increasing by construction."""
    return tuple(
        expected_throughput(signature, rate, n=n, spares=spares) for rate in rates
    )


@dataclass(frozen=True, slots=True)
class ResiliencePoint:
    """One surveyed architecture's degradation behaviour."""

    name: str
    taxonomic_name: str
    flexibility: int
    switched_sites: int
    remap_capable: bool
    rates: tuple[float, ...]
    throughput: tuple[float, ...]

    @property
    def mean_throughput(self) -> float:
        """Mean normalised throughput across the swept fault rates."""
        return sum(self.throughput) / len(self.throughput)

    def at(self, rate: float) -> float:
        """The normalised throughput recorded at fault rate ``rate``."""
        try:
            return self.throughput[self.rates.index(rate)]
        except ValueError:
            raise FaultError(
                f"rate {rate} was not sampled (have {self.rates})"
            ) from None


def _resilience_point(
    entry: SurveyEntry, *, rates: "tuple[float, ...]", n: int, spares: int
) -> ResiliencePoint:
    """One architecture's degradation curve — the sweep's point worker."""
    signature = entry.record.signature
    return ResiliencePoint(
        name=entry.name,
        taxonomic_name=entry.taxonomic_name,
        flexibility=entry.flexibility,
        switched_sites=len(signature.switched_sites()),
        remap_capable=can_remap(signature),
        rates=rates,
        throughput=degradation_curve(signature, rates, n=n, spares=spares),
    )


def resilience_sweep(
    rates: "tuple[float, ...]" = DEFAULT_FAULT_RATES,
    *,
    n: int = 16,
    spares: int = 0,
    entries: "tuple[SurveyEntry, ...] | None" = None,
    jobs: int = 1,
    executor: str = "process",
    on_error: str = "raise",
    timeout_s: "float | None" = None,
    resume: bool = False,
    checkpoint_dir: "str | None" = None,
    workers: "str | None" = None,
    fabric_options: "Mapping[str, Any] | None" = None,
) -> list[ResiliencePoint]:
    """Degradation curves for the whole survey, best-sustained first.

    ``jobs``/``executor`` run the per-architecture evaluation through
    :func:`repro.perf.sweep`; because the engine preserves input order
    and the final sort is total, any job count yields the same list.
    ``on_error``/``timeout_s`` set the engine's per-point failure policy
    (points skipped under ``"skip"``/``"retry"`` are dropped from the
    result), and ``resume=True`` journals completed architectures so an
    interrupted sweep picks up where it left off, bit-identically.

    ``workers`` (``"HOST:PORT,HOST:PORT"``) fans the architectures out
    over the distributed fabric instead of a local pool — same results,
    same order, and with ``resume=True`` an index-sharded journal.
    ``fabric_options`` forwards extra :func:`~repro.perf.fabric_sweep`
    keywords (``max_lease_size``, ``membership``, ``listen``, …);
    they steer scheduling only, never the artifact.
    """
    if not rates:
        raise ValueError("at least one fault rate is required")
    rows = entries if entries is not None else survey_table()
    worker = functools.partial(
        _resilience_point, rates=tuple(rates), n=n, spares=spares
    )
    checkpoint = None
    if resume:
        spec = {
            "rates": [float(rate) for rate in rates],
            "n": n,
            "spares": spares,
            "entries": [entry.name for entry in rows],
        }
        opener = ShardedCheckpoint if workers else SweepCheckpoint
        checkpoint = opener.open("resilience", spec, directory=checkpoint_dir)
    chosen_executor = "serial" if jobs == 1 else executor
    try:
        with _trace.span(
            "analysis.resilience_sweep",
            architectures=len(rows),
            rates=len(rates),
            n=n,
            spares=spares,
            jobs=jobs,
        ):
            if workers:
                result = fabric_sweep(
                    worker,
                    rows,
                    workers=workers,
                    on_error=on_error,
                    timeout_s=timeout_s,
                    checkpoint=checkpoint,
                    fallback_executor=chosen_executor,
                    fallback_jobs=jobs,
                    **dict(fabric_options or {}),
                )
            else:
                result = sweep(
                    worker,
                    rows,
                    executor=chosen_executor,
                    jobs=jobs,
                    on_error=on_error,
                    timeout_s=timeout_s,
                    checkpoint=checkpoint,
                )
    finally:
        if checkpoint is not None:
            checkpoint.close()
    points = [point for point in result if point is not None]
    points.sort(key=lambda p: (-p.mean_throughput, p.name))
    return points


def flexibility_rank_correlation(points: "list[ResiliencePoint]") -> float:
    """Spearman rank correlation between flexibility and mean throughput.

    Hand-rolled (mid-ranks for ties, Pearson over the ranks) to avoid a
    scipy dependency. This is the quantitative form of the PR's claim:
    the paper's flexibility score predicts fault resilience.
    """
    if len(points) < 2:
        raise ValueError("need at least two points to correlate")

    def mid_ranks(values: "list[float]") -> list[float]:
        order = sorted(range(len(values)), key=lambda i: values[i])
        ranks = [0.0] * len(values)
        i = 0
        while i < len(order):
            j = i
            while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
                j += 1
            mid = (i + j) / 2.0 + 1.0
            for k in range(i, j + 1):
                ranks[order[k]] = mid
            i = j + 1
        return ranks

    xs = mid_ranks([float(p.flexibility) for p in points])
    ys = mid_ranks([p.mean_throughput for p in points])
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5


def resilience_csv_rows(points: "list[ResiliencePoint]") -> list[list[str]]:
    """Header + data rows for ``artifacts/resilience.csv``."""
    if not points:
        return [["rank", "architecture", "class", "flexibility",
                 "switched_sites", "remap"]]
    rates = points[0].rates
    header = ["rank", "architecture", "class", "flexibility",
              "switched_sites", "remap"]
    header += [f"throughput@{rate:g}" for rate in rates]
    header += ["mean_throughput"]
    rows = [header]
    for rank, point in enumerate(points, start=1):
        row = [
            str(rank),
            point.name,
            point.taxonomic_name,
            str(point.flexibility),
            str(point.switched_sites),
            "yes" if point.remap_capable else "no",
        ]
        row += [f"{value:.4f}" for value in point.throughput]
        row += [f"{point.mean_throughput:.4f}"]
        rows.append(row)
    return rows


def render_resilience_table(points: "list[ResiliencePoint]") -> str:
    """Fixed-width text table of the sweep plus the rank correlation."""
    rows = resilience_csv_rows(points)
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    if len(points) >= 2:
        rho = flexibility_rank_correlation(points)
        lines.append("")
        lines.append(
            f"Spearman rank correlation (flexibility vs mean throughput): {rho:+.3f}"
        )
    return "\n".join(lines)
