"""Pairwise similarity analytics over the surveyed architectures.

§III-A claims names alone predict similarity; this module computes the
full similarity matrix over the Table-III survey (and arbitrary class
sets), finds nearest neighbours, and clusters equal-class groups — the
quantitative companion to the paper's qualitative comparison examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compare import compare_classes, similarity
from repro.core.taxonomy import TaxonomyClass
from repro.registry.survey import SurveyEntry, survey_table

__all__ = ["SimilarityMatrix", "survey_similarity", "nearest_neighbours"]


@dataclass(frozen=True)
class SimilarityMatrix:
    """A labelled symmetric similarity matrix in [0, 1]."""

    labels: tuple[str, ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.labels)
        if self.values.shape != (n, n):
            raise ValueError("matrix shape must match labels")

    def value(self, a: str, b: str) -> float:
        """The pairwise similarity score between architectures ``a`` and ``b``."""
        ia = self.labels.index(a)
        ib = self.labels.index(b)
        return float(self.values[ia, ib])

    def most_similar_pairs(self, top: int = 5) -> list[tuple[str, str, float]]:
        """Distinct-label pairs sorted by similarity, descending."""
        pairs = []
        n = len(self.labels)
        for i in range(n):
            for j in range(i + 1, n):
                pairs.append(
                    (self.labels[i], self.labels[j], float(self.values[i, j]))
                )
        pairs.sort(key=lambda item: -item[2])
        return pairs[:top]

    def row(self, label: str) -> dict[str, float]:
        """One architecture's similarity scores against every other, in matrix order."""
        index = self.labels.index(label)
        return {
            other: float(self.values[index, j])
            for j, other in enumerate(self.labels)
        }


def _entry_class(entry: SurveyEntry) -> TaxonomyClass:
    return entry.record.classification.taxonomy_class


def survey_similarity() -> SimilarityMatrix:
    """Similarity matrix over the 25 surveyed architectures.

    Similarity between two architectures is the similarity of their
    taxonomy classes (identical classes score 1.0 — e.g. MorphoSys vs
    REMARC), which is exactly the paper's name-based prediction.
    """
    entries = survey_table()
    labels = tuple(entry.name for entry in entries)
    n = len(entries)
    values = np.ones((n, n))
    classes = [_entry_class(entry) for entry in entries]
    for i in range(n):
        for j in range(i + 1, n):
            score = compare_classes(classes[i], classes[j]).similarity
            values[i, j] = values[j, i] = score
    return SimilarityMatrix(labels=labels, values=values)


def nearest_neighbours(name: str, *, top: int = 3) -> list[tuple[str, float]]:
    """The survey entries most similar to the named architecture."""
    matrix = survey_similarity()
    row = matrix.row(name)
    others = [(label, score) for label, score in row.items() if label != name]
    others.sort(key=lambda item: -item[1])
    return others[:top]
