"""Flexibility / area / configuration-overhead trade-off analysis.

§III-B frames the design space as a trade between flexibility and
reconfiguration overhead, with ASIC and FPGA at the extremes and the
CGRA classes between them. This module evaluates every implementable
taxonomy class with the Eq.-1 and Eq.-2 models at a common design point
and computes the Pareto frontier of (max flexibility, min area, min
configuration bits) — the chart a designer would consult.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.flexibility import flexibility
from repro.core.naming import MachineType
from repro.core.taxonomy import TaxonomyClass, implementable_classes
from repro.models.area import AreaModel
from repro.models.configbits import ConfigBitsModel
from repro.obs import trace as _trace
from repro.perf import (
    ModelCache,
    ShardedCheckpoint,
    SweepCheckpoint,
    evaluate_models,
    fabric_sweep,
    sweep,
)

__all__ = ["DesignPoint", "evaluate_classes", "pareto_frontier"]


@dataclass(frozen=True, slots=True)
class DesignPoint:
    """One taxonomy class evaluated at a concrete size."""

    name: str
    serial: int
    machine_type: MachineType
    flexibility: int
    area_ge: float
    config_bits: int
    n: int

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance: no worse on all axes, better on at least one.

        Axes: flexibility (higher better), area and config bits (lower
        better).
        """
        no_worse = (
            self.flexibility >= other.flexibility
            and self.area_ge <= other.area_ge
            and self.config_bits <= other.config_bits
        )
        better = (
            self.flexibility > other.flexibility
            or self.area_ge < other.area_ge
            or self.config_bits < other.config_bits
        )
        return no_worse and better

    def row(self) -> tuple[str, ...]:
        """The record as a tuple of formatted table cells."""
        return (
            self.name,
            str(self.flexibility),
            f"{self.area_ge:,.0f}",
            f"{self.config_bits:,}",
        )


def _design_point(
    cls: TaxonomyClass, *, n: int, cache: "ModelCache | None"
) -> DesignPoint:
    """Price one taxonomy class — the sweep's per-point worker."""
    assert cls.name is not None
    estimates = evaluate_models(cls.signature, n=n, cache=cache)
    return DesignPoint(
        name=cls.name.short,
        serial=cls.serial,
        machine_type=cls.name.machine_type,
        flexibility=flexibility(cls.signature),
        area_ge=estimates.area_ge,
        config_bits=estimates.config_bits,
        n=n,
    )


def _evaluate_classes_kernel(
    classes: "list[TaxonomyClass]",
    *,
    n: int,
    area_model: "AreaModel | None",
    config_model: "ConfigBitsModel | None",
) -> "list[DesignPoint] | None":
    """Vectorized fast path through :mod:`repro.core.batch`.

    Returns ``None`` when the kernel cannot run (no NumPy, or model
    configurations it cannot reproduce bit-exactly) so the caller falls
    back to the scalar sweep. When it does run, every field of every
    :class:`DesignPoint` is bit-identical to the scalar path's.
    """
    from repro.core import batch as _batch

    if not _batch.kernel_supports(area_model, config_model):
        return None
    with _trace.span(
        "analysis.evaluate_classes", classes=len(classes), n=n, jobs=1, kernel=True
    ):
        columns = _batch.SignatureBatch.from_signatures(
            cls.signature for cls in classes
        )
        classified = _batch.classify_batch(columns)
        estimates = _batch.price_batch(
            columns, n=n, area_model=area_model, config_model=config_model
        )
        points = []
        for index, cls in enumerate(classes):
            assert cls.name is not None
            points.append(
                DesignPoint(
                    name=cls.name.short,
                    serial=cls.serial,
                    machine_type=cls.name.machine_type,
                    flexibility=int(classified.flexibility[index]),
                    area_ge=float(estimates.area_ge[index]),
                    config_bits=int(estimates.config_bits[index]),
                    n=n,
                )
            )
        return points


def evaluate_classes(
    *,
    n: int = 16,
    area_model: "AreaModel | None" = None,
    config_model: "ConfigBitsModel | None" = None,
    classes: "tuple[TaxonomyClass, ...] | None" = None,
    jobs: int = 1,
    executor: str = "process",
    on_error: str = "raise",
    timeout_s: "float | None" = None,
    resume: bool = False,
    checkpoint_dir: "str | None" = None,
    workers: "str | None" = None,
    fabric_options: "Mapping[str, Any] | None" = None,
    batch_kernel: bool = True,
) -> list[DesignPoint]:
    """Evaluate Eq. 1 and Eq. 2 for every (given) implementable class.

    ``jobs``/``executor`` fan the per-class model evaluation out through
    :func:`repro.perf.sweep`; results are identical (and identically
    ordered) for any job count. Custom models get a private cache so the
    shared one never mixes parameter sets. ``on_error``/``timeout_s``
    set the engine's failure policy (failed classes are dropped from the
    result), and ``resume=True`` journals completed classes so an
    interrupted evaluation restarts where it stopped.

    ``workers`` (``"HOST:PORT,HOST:PORT"``) routes the sweep through the
    distributed fabric (:func:`repro.perf.fabric_sweep`); the journal
    then shards by point index so any worker mix resumes bit-exactly.
    ``fabric_options`` forwards extra keyword arguments to
    :func:`~repro.perf.fabric_sweep` (``max_lease_size``,
    ``membership``, ``listen``, …) — scheduling knobs only, never
    artifact-affecting.

    ``batch_kernel=True`` (the default) routes plain single-job
    evaluations through the vectorized :mod:`repro.core.batch` kernel
    when NumPy is available — results are bit-identical either way, and
    anything the kernel cannot serve exactly (custom per-site switch
    models, resumable/parallel/fault-tolerant sweeps) silently uses the
    scalar path.
    """
    cache = (
        None
        if area_model is None and config_model is None
        else ModelCache(area_model=area_model, config_model=config_model)
    )
    chosen = classes if classes is not None else implementable_classes()
    implementable = [cls for cls in chosen if cls.implementable]
    if (
        batch_kernel
        and jobs == 1
        and workers is None
        and not resume
        and on_error == "raise"
        and timeout_s is None
    ):
        points = _evaluate_classes_kernel(
            implementable, n=n, area_model=area_model, config_model=config_model
        )
        if points is not None:
            return points
    worker = functools.partial(_design_point, n=n, cache=cache)
    checkpoint = None
    if resume:
        spec = {
            "n": n,
            "classes": [cls.serial for cls in implementable],
            "models": [repr(area_model), repr(config_model)],
        }
        opener = ShardedCheckpoint if workers else SweepCheckpoint
        checkpoint = opener.open("classes", spec, directory=checkpoint_dir)
    chosen_executor = "serial" if jobs == 1 else executor
    try:
        with _trace.span("analysis.evaluate_classes", classes=len(implementable), n=n, jobs=jobs):
            if workers:
                result = fabric_sweep(
                    worker,
                    implementable,
                    workers=workers,
                    on_error=on_error,
                    timeout_s=timeout_s,
                    checkpoint=checkpoint,
                    fallback_executor=chosen_executor,
                    fallback_jobs=jobs,
                    **dict(fabric_options or {}),
                )
            else:
                result = sweep(
                    worker,
                    implementable,
                    executor=chosen_executor,
                    jobs=jobs,
                    on_error=on_error,
                    timeout_s=timeout_s,
                    checkpoint=checkpoint,
                )
    finally:
        if checkpoint is not None:
            checkpoint.close()
    return [point for point in result if point is not None]


def pareto_frontier(points: "list[DesignPoint]") -> list[DesignPoint]:
    """Non-dominated subset, sorted by flexibility then area.

    Comparisons respect the paper's caveat: data-flow and
    instruction-flow points never dominate each other (their flexibility
    values are incommensurable); universal-flow points compare against
    everything.
    """
    def comparable(a: DesignPoint, b: DesignPoint) -> bool:
        if MachineType.UNIVERSAL_FLOW in (a.machine_type, b.machine_type):
            return True
        return a.machine_type is b.machine_type

    frontier = [
        p
        for p in points
        if not any(
            other.dominates(p)
            for other in points
            if other is not p and comparable(other, p)
        )
    ]
    frontier.sort(key=lambda p: (p.flexibility, p.area_ge, p.config_bits))
    return frontier
