"""Design-space exploration — the paper's stated design use-case.

§V: "a designer can decide which computer class offers the required
flexibility with minimum configuration overhead for single or set of
target applications. Initial estimates of area and configuration
overhead gives a designer option to take better design decision earlier
during the design life cycle."

:func:`explore` turns that sentence into a function: given requirements
(a flexibility floor, optional area/configuration budgets, a machine-
type restriction, required capabilities), it returns the feasible
classes ranked by the designer's chosen objective.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Mapping

from repro.analysis.pareto import DesignPoint, evaluate_classes
from repro.core.naming import MachineType
from repro.obs import trace as _trace
from repro.core.taxonomy import class_by_name
from repro.machine.base import Capability
from repro.models.area import AreaModel
from repro.models.configbits import ConfigBitsModel

__all__ = ["Objective", "Requirements", "Recommendation", "explore", "capabilities_of_class"]


class Objective(enum.Enum):
    """What the designer minimises among feasible classes."""

    CONFIG_BITS = "minimum configuration overhead"
    AREA = "minimum area"
    FLEXIBILITY_PER_AREA = "maximum flexibility per unit area"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Requirements:
    """A designer's constraint set."""

    min_flexibility: int = 0
    max_area_ge: float | None = None
    max_config_bits: int | None = None
    machine_type: MachineType | None = None
    required_capabilities: frozenset[Capability] = frozenset()
    n: int = 16

    def admits(self, point: DesignPoint) -> bool:
        """Whether ``point`` satisfies every stated requirement."""
        if point.flexibility < self.min_flexibility:
            return False
        if self.max_area_ge is not None and point.area_ge > self.max_area_ge:
            return False
        if (
            self.max_config_bits is not None
            and point.config_bits > self.max_config_bits
        ):
            return False
        if (
            self.machine_type is not None
            and point.machine_type is not self.machine_type
            and point.machine_type is not MachineType.UNIVERSAL_FLOW
        ):
            return False
        if self.required_capabilities:
            provided = capabilities_of_class(point.name)
            if not self.required_capabilities <= provided:
                return False
        return True


def capabilities_of_class(name: str) -> frozenset[Capability]:
    """Capabilities a taxonomy class provides, derived from its signature."""
    from repro.core.connectivity import LinkSite
    from repro.core.components import Multiplicity

    cls = class_by_name(name)
    sig = cls.signature
    caps: set[Capability] = set()
    if sig.is_universal_flow:
        return frozenset(Capability)
    if sig.is_data_flow:
        caps.add(Capability.DATAFLOW_EXECUTION)
    else:
        caps.add(Capability.INSTRUCTION_EXECUTION)
    if sig.dps.multiplicity.is_plural:
        caps.add(Capability.DATA_PARALLEL)
    if sig.link(LinkSite.DP_DP).is_switched:
        caps.add(Capability.LANE_SHUFFLE)
        if sig.ips.multiplicity is Multiplicity.MANY:
            caps.add(Capability.MESSAGE_PASSING)
    if sig.link(LinkSite.DP_DM).is_switched:
        caps.add(Capability.GLOBAL_MEMORY)
    if sig.ips.multiplicity is Multiplicity.MANY:
        caps.add(Capability.MULTIPLE_STREAMS)
    if sig.link(LinkSite.IP_IP).exists:
        caps.add(Capability.IP_COMPOSITION)
    return frozenset(caps)


@dataclass(frozen=True)
class Recommendation:
    """DSE outcome: ranked feasible classes plus the rejected set."""

    requirements: Requirements
    objective: Objective
    feasible: tuple[DesignPoint, ...]
    infeasible: tuple[DesignPoint, ...] = ()

    @property
    def best(self) -> DesignPoint | None:
        """The top-ranked feasible design point, or ``None`` when nothing qualifies."""
        return self.feasible[0] if self.feasible else None

    def explain(self) -> str:
        """Human-readable breakdown, one line per contributing term."""
        lines = [
            f"objective: {self.objective.value}",
            f"feasible classes: {len(self.feasible)} / "
            f"{len(self.feasible) + len(self.infeasible)}",
        ]
        if self.best is not None:
            lines.append(
                f"recommended: {self.best.name} (flexibility "
                f"{self.best.flexibility}, {self.best.area_ge:,.0f} GE, "
                f"{self.best.config_bits:,} config bits)"
            )
        else:
            lines.append("no class satisfies the requirements")
        return "\n".join(lines)


def _objective_key(objective: Objective):
    if objective is Objective.CONFIG_BITS:
        return lambda p: (p.config_bits, p.area_ge, -p.flexibility)
    if objective is Objective.AREA:
        return lambda p: (p.area_ge, p.config_bits, -p.flexibility)
    return lambda p: (-(p.flexibility / p.area_ge) if p.area_ge else 0.0,)


def explore(
    requirements: Requirements,
    *,
    objective: Objective = Objective.CONFIG_BITS,
    area_model: "AreaModel | None" = None,
    config_model: "ConfigBitsModel | None" = None,
    jobs: int = 1,
    executor: str = "process",
    on_error: str = "raise",
    timeout_s: "float | None" = None,
    resume: bool = False,
    checkpoint_dir: "str | None" = None,
    workers: "str | None" = None,
    fabric_options: "Mapping[str, Any] | None" = None,
    batch_kernel: bool = True,
) -> Recommendation:
    """Rank every implementable class against the requirements.

    ``jobs`` parallelises the class evaluation through the sweep engine
    (see :mod:`repro.perf`); the recommendation is independent of it.
    ``on_error``/``timeout_s``/``resume`` forward to
    :func:`repro.analysis.pareto.evaluate_classes`, so a long DSE run
    can skip bad points and restart from its checkpoint journal.
    ``workers`` routes the evaluation over the distributed sweep fabric
    — the recommendation is byte-identical either way — and
    ``fabric_options`` carries extra :func:`~repro.perf.fabric_sweep`
    scheduling knobs along with it. ``batch_kernel``
    forwards too: single-job runs price all classes through the
    vectorized :mod:`repro.core.batch` kernel when NumPy is available,
    again with a byte-identical recommendation.
    """
    with _trace.span(
        "analysis.dse", objective=objective.name, n=requirements.n, jobs=jobs
    ) as dse_span:
        points = evaluate_classes(
            n=requirements.n,
            area_model=area_model,
            config_model=config_model,
            jobs=jobs,
            executor=executor,
            on_error=on_error,
            timeout_s=timeout_s,
            resume=resume,
            checkpoint_dir=checkpoint_dir,
            workers=workers,
            fabric_options=fabric_options,
            batch_kernel=batch_kernel,
        )
        feasible = [p for p in points if requirements.admits(p)]
        infeasible = [p for p in points if not requirements.admits(p)]
        feasible.sort(key=_objective_key(objective))
        dse_span.set_attributes(feasible=len(feasible), infeasible=len(infeasible))
    return Recommendation(
        requirements=requirements,
        objective=objective,
        feasible=tuple(feasible),
        infeasible=tuple(infeasible),
    )
