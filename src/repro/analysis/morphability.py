"""The morphability order over taxonomy classes, as a graph.

Builds the directed emulation relation of
:func:`repro.machine.morph.can_emulate` over all implementable classes
into a networkx DAG, exposes its Hasse diagram (transitive reduction),
and answers reachability questions — "which classes can this hardware
morph into?" — that quantify the paper's flexibility ladder.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.taxonomy import class_by_name, implementable_classes
from repro.machine.morph import can_emulate

__all__ = ["MorphabilityOrder", "build_morphability_order"]


@dataclass(frozen=True)
class MorphabilityOrder:
    """The emulation partial order with graph-level queries."""

    graph: nx.DiGraph  # edge a -> b means "a can emulate b" (a != b)

    def can_morph(self, emulator: str, target: str) -> bool:
        """Whether an architecture of class ``source`` can morph into ``target``."""
        a = class_by_name(emulator).name.short  # type: ignore[union-attr]
        b = class_by_name(target).name.short  # type: ignore[union-attr]
        if a == b:
            return True
        return self.graph.has_edge(a, b)

    def emulatable_by(self, emulator: str) -> set[str]:
        """Every class the given class can stand in for (excl. itself)."""
        name = class_by_name(emulator).name.short  # type: ignore[union-attr]
        return set(self.graph.successors(name))

    def emulators_of(self, target: str) -> set[str]:
        """Every class that can stand in for the given class."""
        name = class_by_name(target).name.short  # type: ignore[union-attr]
        return set(self.graph.predecessors(name))

    def coverage(self, name: str) -> float:
        """Fraction of implementable classes this class can emulate.

        1.0 for USP (it emulates everything including itself); a scalar
        proxy for the flexibility value that is also *checkable* against
        the scoring system (higher flexibility within a machine type must
        never mean lower coverage).
        """
        total = self.graph.number_of_nodes()
        reachable = len(self.emulatable_by(name)) + 1  # + itself
        return reachable / total

    def hasse_edges(self) -> list[tuple[str, str]]:
        """Edges of the transitive reduction (the diagram one would draw)."""
        reduction = nx.transitive_reduction(self.graph)
        return sorted(reduction.edges())

    def maximal_elements(self) -> list[str]:
        """Classes nothing else can emulate except themselves."""
        return sorted(
            node
            for node in self.graph.nodes()
            if self.graph.in_degree(node) == 0
        )

    def minimal_elements(self) -> list[str]:
        """Classes that cannot emulate anything but themselves."""
        return sorted(
            node
            for node in self.graph.nodes()
            if self.graph.out_degree(node) == 0
        )


def build_morphability_order() -> MorphabilityOrder:
    """Evaluate ``can_emulate`` over all implementable class pairs."""
    classes = implementable_classes()
    graph = nx.DiGraph()
    for cls in classes:
        assert cls.name is not None
        graph.add_node(cls.name.short, serial=cls.serial)
    for a in classes:
        for b in classes:
            if a.serial == b.serial:
                continue
            if can_emulate(a, b):
                graph.add_edge(a.name.short, b.name.short)  # type: ignore[union-attr]
    if not nx.is_directed_acyclic_graph(graph):
        # Mutually-emulating distinct classes would break the ladder.
        cycles = list(nx.simple_cycles(graph))
        raise AssertionError(f"morphability relation has cycles: {cycles[:3]}")
    return MorphabilityOrder(graph=graph)
