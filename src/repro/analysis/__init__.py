"""Analysis toolkit over the taxonomy: pairwise similarity (§III-A),
flexibility/area/configuration Pareto analysis (§III-B/C/D), the design-
space exploration workflow of §V, and the morphability order behind the
flexibility ladder."""

from repro.analysis.dse import (
    Objective,
    Recommendation,
    Requirements,
    capabilities_of_class,
    explore,
)
from repro.analysis.morphability import MorphabilityOrder, build_morphability_order
from repro.analysis.pareto import DesignPoint, evaluate_classes, pareto_frontier
from repro.analysis.resilience import (
    DEFAULT_FAULT_RATES,
    ResiliencePoint,
    can_remap,
    degradation_curve,
    expected_throughput,
    flexibility_rank_correlation,
    render_resilience_table,
    resilience_csv_rows,
    resilience_sweep,
)
from repro.analysis.survey_costs import (
    SurveyCostPoint,
    evaluate_survey,
    survey_cost_table,
)
from repro.analysis.similarity import (
    SimilarityMatrix,
    nearest_neighbours,
    survey_similarity,
)

__all__ = [
    "Objective",
    "Recommendation",
    "Requirements",
    "capabilities_of_class",
    "explore",
    "MorphabilityOrder",
    "build_morphability_order",
    "DesignPoint",
    "evaluate_classes",
    "pareto_frontier",
    "DEFAULT_FAULT_RATES",
    "ResiliencePoint",
    "can_remap",
    "degradation_curve",
    "expected_throughput",
    "flexibility_rank_correlation",
    "render_resilience_table",
    "resilience_csv_rows",
    "resilience_sweep",
    "SurveyCostPoint",
    "evaluate_survey",
    "survey_cost_table",
    "SimilarityMatrix",
    "nearest_neighbours",
    "survey_similarity",
]
