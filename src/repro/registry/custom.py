"""User-extensible architecture registry.

The paper's survey froze 25 machines in 2012; the point of the taxonomy
is classifying *new* ones. :class:`CustomRegistry` lets a user register
their own architectures next to the published survey, classify them with
the same pipeline, and compare them against the Table-III population —
the workflow the paper's conclusion prescribes for designers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.classify import Classification, classify
from repro.core.errors import RegistryError
from repro.core.signature import Signature, make_signature
from repro.registry.architectures import all_architectures
from repro.registry.record import ArchitectureRecord

__all__ = ["CustomEntry", "CustomRegistry"]

#: Accepted architecture names: identifier-like, allowing the word
#: separators real machine names use ("Xilinx Virtex-4", "TTA-like").
_NAME_PATTERN = re.compile(r"[A-Za-z][A-Za-z0-9]*(?:[ ._/+-][A-Za-z0-9]+)*$")


@dataclass(frozen=True)
class CustomEntry:
    """One user-registered architecture with its derived placement."""

    name: str
    signature: Signature
    classification: Classification
    notes: str = ""

    @property
    def taxonomic_name(self) -> str:
        """Short taxonomic name derived from the entry's signature."""
        return self.classification.short_name

    @property
    def flexibility(self) -> int:
        """Flexibility score derived from the entry's signature."""
        return self.classification.flexibility


@dataclass
class CustomRegistry:
    """A mutable registry layered over the published survey.

    Names must be unique across both the custom entries and the 25
    published records (you cannot shadow MorphoSys).
    """

    entries: dict[str, CustomEntry] = field(default_factory=dict)

    def _published_names(self) -> set[str]:
        return {rec.name.lower() for rec in all_architectures()}

    def _validate_name(self, name: object) -> str:
        """The cleaned name, or a :class:`RegistryError` naming field 'name'."""
        if not isinstance(name, str):
            raise RegistryError(
                f"field 'name' must be a string, got {type(name).__name__}"
            )
        key = name.strip()
        if not key:
            raise RegistryError("field 'name' must not be empty")
        if not _NAME_PATTERN.fullmatch(key):
            raise RegistryError(
                f"field 'name' must be an identifier-like architecture name "
                f"(letters, digits, single ' . _ / + -' separators, starting "
                f"with a letter); got {key!r}"
            )
        if key.lower() in self._published_names():
            raise RegistryError(
                f"field 'name': {key!r} is a published survey architecture; "
                "pick another name"
            )
        if key.lower() in {existing.lower() for existing in self.entries}:
            raise RegistryError(
                f"field 'name': {key!r} is already registered "
                "(names are case-insensitive)"
            )
        return key

    def register(
        self,
        name: str,
        ips: "int | str",
        dps: "int | str",
        *,
        ip_ip: str | None = None,
        ip_dp: str | None = None,
        ip_im: str | None = None,
        dp_dm: str | None = None,
        dp_dp: str | None = None,
        granularity: str | None = None,
        notes: str = "",
    ) -> CustomEntry:
        """Validate, classify and store a new architecture.

        Name validation is strict and front-loaded so a bad ``name``
        raises a :class:`RegistryError` naming the field, never a
        downstream signature or lookup surprise: names must be
        identifier-like (letters/digits with single ``space . _ / + -``
        separators), non-empty, and unique case-insensitively across
        both the published survey and prior custom entries.
        """
        key = self._validate_name(name)
        signature = make_signature(
            ips, dps,
            ip_ip=ip_ip, ip_dp=ip_dp, ip_im=ip_im,
            dp_dm=dp_dm, dp_dp=dp_dp,
            granularity=granularity,
        )
        entry = CustomEntry(
            name=key,
            signature=signature,
            classification=classify(signature),
            notes=notes,
        )
        self.entries[key] = entry
        return entry

    def remove(self, name: str) -> None:
        """Drop the entry registered under ``name``."""
        try:
            del self.entries[name]
        except KeyError as exc:
            raise RegistryError(f"no custom architecture named {name!r}") from exc

    def get(self, name: str) -> CustomEntry:
        """Look up the entry registered under ``name``."""
        try:
            return self.entries[name]
        except KeyError as exc:
            raise RegistryError(f"no custom architecture named {name!r}") from exc

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    # -- analysis against the survey ---------------------------------------

    def published_classmates(self, name: str) -> list[ArchitectureRecord]:
        """Survey architectures sharing the custom entry's class."""
        entry = self.get(name)
        return [
            rec
            for rec in all_architectures()
            if rec.derived_name == entry.taxonomic_name
        ]

    def nearest_published(self, name: str, *, top: int = 3) -> list[tuple[str, float]]:
        """Most similar survey entries by class similarity."""
        from repro.core.compare import compare_classes

        entry = self.get(name)
        own = entry.classification.taxonomy_class
        if own.name is None:
            raise RegistryError(
                f"{name!r} classifies as Not Implementable; no comparison"
            )
        scored = []
        for rec in all_architectures():
            other = rec.classification.taxonomy_class
            scored.append((rec.name, compare_classes(own, other).similarity))
        scored.sort(key=lambda item: -item[1])
        return scored[:top]

    def combined_ranking(self) -> list[tuple[str, int, bool]]:
        """Survey + custom entries ranked by flexibility.

        Returns (name, flexibility, is_custom) triples, descending.
        """
        rows: list[tuple[str, int, bool]] = [
            (rec.name, rec.derived_flexibility, False)
            for rec in all_architectures()
        ]
        rows += [
            (entry.name, entry.flexibility, True)
            for entry in self.entries.values()
        ]
        rows.sort(key=lambda item: (-item[1], item[0]))
        return rows
