"""Registry of the 25 architectures surveyed in Table III, with the
query API used to regenerate the survey table and the Fig.-7 ranking."""

from repro.registry.architectures import (
    KNOWN_ERRATA,
    SURVEYED_ARCHITECTURES,
    all_architectures,
    architecture,
    architecture_names,
    architectures_by_family,
)
from repro.registry.custom import CustomEntry, CustomRegistry
from repro.registry.populations import (
    POPULATION_MODES,
    PopulationSpec,
    class_occupancy,
    describe_population,
    generate_batch,
    generate_signatures,
)
from repro.registry.record import ArchitectureFamily, ArchitectureRecord
from repro.registry.survey import (
    SurveyEntry,
    errata_report,
    flexibility_ranking,
    group_by_class,
    most_flexible,
    survey_table,
)

__all__ = [
    "CustomEntry",
    "CustomRegistry",
    "ArchitectureFamily",
    "ArchitectureRecord",
    "SURVEYED_ARCHITECTURES",
    "KNOWN_ERRATA",
    "all_architectures",
    "architecture",
    "architecture_names",
    "architectures_by_family",
    "POPULATION_MODES",
    "PopulationSpec",
    "class_occupancy",
    "describe_population",
    "generate_batch",
    "generate_signatures",
    "SurveyEntry",
    "survey_table",
    "flexibility_ranking",
    "group_by_class",
    "most_flexible",
    "errata_report",
]
