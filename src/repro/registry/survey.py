"""Query API over the architecture registry (the Table-III survey).

Provides the derived survey table, the Fig.-7 flexibility ranking, and
filtering/grouping helpers an architect would use to navigate the
classified landscape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.flexibility import comparable
from repro.core.naming import MachineType
from repro.registry.architectures import KNOWN_ERRATA, all_architectures
from repro.registry.record import ArchitectureRecord

__all__ = [
    "SurveyEntry",
    "survey_table",
    "flexibility_ranking",
    "group_by_class",
    "errata_report",
    "most_flexible",
]


@dataclass(frozen=True)
class SurveyEntry:
    """One classified survey row with provenance."""

    record: ArchitectureRecord

    @property
    def name(self) -> str:
        """The architecture's published name."""
        return self.record.name

    @property
    def taxonomic_name(self) -> str:
        """The derived short taxonomic name."""
        return self.record.derived_name

    @property
    def flexibility(self) -> int:
        """The derived flexibility score."""
        return self.record.derived_flexibility

    @property
    def machine_type(self) -> MachineType:
        """The machine type (DF, IF or UF) of the derived name."""
        return self.record.classification.score.machine_type

    @property
    def agrees_with_paper(self) -> bool:
        """Whether the derivation matches the paper's published classification."""
        return (
            self.record.matches_paper_name
            and self.record.matches_paper_flexibility
        )


def survey_table() -> tuple[SurveyEntry, ...]:
    """All survey entries in Table-III row order."""
    return tuple(SurveyEntry(rec) for rec in all_architectures())


def flexibility_ranking() -> tuple[SurveyEntry, ...]:
    """Entries sorted by flexibility, descending (the Fig.-7 ordering).

    Ties keep Table-III order, matching the figure's left-to-right
    grouping of equal bars.
    """
    entries = survey_table()
    return tuple(
        sorted(entries, key=lambda entry: (-entry.flexibility,))
    )


def group_by_class() -> dict[str, tuple[SurveyEntry, ...]]:
    """Survey entries grouped by taxonomic name, in first-seen order."""
    groups: dict[str, list[SurveyEntry]] = {}
    for entry in survey_table():
        groups.setdefault(entry.taxonomic_name, []).append(entry)
    return {name: tuple(entries) for name, entries in groups.items()}


def most_flexible(
    *, within: MachineType | None = None
) -> SurveyEntry:
    """The highest-flexibility survey entry.

    Flexibility values are only comparable within a machine type (or
    against universal flow); restricting with ``within`` respects the
    paper's caveat. Without a restriction the answer is the FPGA — the
    universal-flow machine every other value *is* comparable against.
    """
    entries = survey_table()
    if within is not None:
        entries = tuple(e for e in entries if e.machine_type is within)
        if not entries:
            raise ValueError(f"no surveyed architecture of type {within.label}")
    return max(entries, key=lambda entry: entry.flexibility)


def errata_report() -> list[str]:
    """Human-readable report of paper-vs-derived disagreements.

    Every disagreement must be a documented erratum; an undocumented one
    indicates a library bug (and fails the golden tests).
    """
    lines: list[str] = []
    for entry in survey_table():
        rec = entry.record
        if rec.matches_paper_name and rec.matches_paper_flexibility:
            continue
        known = KNOWN_ERRATA.get(rec.name)
        if known is None:
            lines.append(
                f"UNEXPECTED: {rec.name}: derived {rec.derived_name}/"
                f"{rec.derived_flexibility} vs paper {rec.paper_name}/"
                f"{rec.paper_flexibility}"
            )
        else:
            field, paper_value, consistent, note = known
            lines.append(
                f"known erratum in {rec.name}.{field}: paper prints "
                f"{paper_value!r}, consistent value is {consistent!r}. {note}"
            )
    return lines
