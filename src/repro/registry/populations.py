"""Seeded synthetic signature populations for the batch kernel.

The batch-classification kernel (:mod:`repro.core.batch`) earns its keep
on *populations* — thousands to millions of signatures stepped as
structure-of-arrays columns — but the survey only supplies 25 machines.
This module manufactures arbitrarily large, **deterministic** synthetic
populations:

* ``stratified`` mode walks the 47 Table-I classes round-robin in serial
  order, so every class (including the four NI rows) is represented and
  class shares are uniform to within one signature;
* ``uniform`` mode samples uniformly over the 406 *constructible*
  structural combinations (every valid point of the
  4 x 4 x 3^5 signature space), exercising structure the class table
  collapses — e.g. direct links at sites where only switches change the
  class.

Either way, plural populations are decorated with concrete counts drawn
from the seeded generator, so pricing sees a realistic mix of symbolic
(``n``/``v``) and fixed-size machines.

Determinism contract: the same :class:`PopulationSpec` always yields the
same signatures, byte for byte, on every platform — generation uses one
``random.Random(seed)`` stream consumed in a fixed per-row order, which
the determinism tests pin.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.core.batch import (
    HAVE_NUMPY,
    SignatureBatch,
    structural_signature,
    valid_structures,
)
from repro.core.classify import canonical_class
from repro.core.components import ComponentCount, Multiplicity
from repro.core.errors import ReproError
from repro.core.signature import Signature
from repro.core.taxonomy import all_classes, class_by_serial
from repro.reporting.tables import format_table

__all__ = [
    "POPULATION_MODES",
    "PopulationSpec",
    "generate_signatures",
    "generate_batch",
    "class_occupancy",
    "describe_population",
]

#: Supported sampling strategies.
POPULATION_MODES: tuple[str, ...] = ("stratified", "uniform")

#: Largest concrete population a generated machine may declare; matches
#: the serve layer's design-size admission cap (MAX_DESIGN_N).
MAX_POPULATION_N: int = 4096


@dataclass(frozen=True)
class PopulationSpec:
    """A reproducible recipe for one synthetic population.

    ``size`` signatures are drawn with the strategy named by ``mode``
    (see :data:`POPULATION_MODES`); plural (``n``) and variable (``v``)
    processor populations receive a concrete count in ``2..max_n`` /
    ``1..max_n`` with probability ``value_probability``, otherwise they
    stay symbolic. Equal specs generate equal populations.
    """

    size: int
    seed: int = 0
    mode: str = "stratified"
    max_n: int = 256
    value_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ReproError("population size must be non-negative")
        if self.mode not in POPULATION_MODES:
            raise ReproError(
                f"unknown population mode {self.mode!r}; "
                f"expected one of {', '.join(POPULATION_MODES)}"
            )
        if not 2 <= self.max_n <= MAX_POPULATION_N:
            raise ReproError(f"max_n must lie in 2..{MAX_POPULATION_N}")
        if not 0.0 <= self.value_probability <= 1.0:
            raise ReproError("value_probability must lie in 0..1")


def _structure_of(signature: Signature) -> tuple[int, int, tuple[int, ...]]:
    """Project a signature onto its structural-space coordinates."""
    return (
        signature.ips.multiplicity.rank,
        signature.dps.multiplicity.rank,
        tuple(kind.rank for kind in signature.link_kinds()),
    )


def _decorated_count(
    count: ComponentCount, rng: random.Random, spec: PopulationSpec
) -> ComponentCount:
    """Maybe attach a concrete value to a plural/variable population.

    The generator always consumes exactly one ``random()`` draw per
    plural population (and one ``randint`` when a value is attached), so
    the stream position — and hence every later row — is a pure function
    of the spec.
    """
    multiplicity = count.multiplicity
    if multiplicity is Multiplicity.MANY:
        if rng.random() < spec.value_probability:
            return ComponentCount(multiplicity, rng.randint(2, spec.max_n))
        return count
    if multiplicity is Multiplicity.VARIABLE:
        if rng.random() < spec.value_probability:
            return ComponentCount(multiplicity, rng.randint(1, spec.max_n))
        return count
    return count


def generate_signatures(spec: PopulationSpec) -> tuple[Signature, ...]:
    """Generate the population as scalar :class:`Signature` objects."""
    rng = random.Random(spec.seed)
    if spec.mode == "stratified":
        structures: Sequence[tuple[int, int, tuple[int, ...]]] = [
            _structure_of(cls.signature) for cls in all_classes()
        ]
    else:
        structures = valid_structures()
    out: list[Signature] = []
    for row in range(spec.size):
        if spec.mode == "stratified":
            ips_rank, dps_rank, kinds = structures[row % len(structures)]
        else:
            ips_rank, dps_rank, kinds = structures[rng.randrange(len(structures))]
        base = structural_signature(ips_rank, dps_rank, kinds)
        out.append(
            replace(
                base,
                ips=_decorated_count(base.ips, rng, spec),
                dps=_decorated_count(base.dps, rng, spec),
            )
        )
    return tuple(out)


def generate_batch(spec: PopulationSpec) -> SignatureBatch:
    """Generate the population directly as kernel-ready SoA columns.

    Requires NumPy (raises
    :class:`~repro.core.batch.KernelUnavailableError` otherwise); the
    rows are exactly ``generate_signatures(spec)`` in order.
    """
    return SignatureBatch.from_signatures(generate_signatures(spec))


def class_occupancy(signatures: Iterable[Signature]) -> dict[int, int]:
    """Count population members per Table-I class serial (ascending)."""
    counts: dict[int, int] = {}
    for signature in signatures:
        serial = canonical_class(signature).serial
        counts[serial] = counts.get(serial, 0) + 1
    return dict(sorted(counts.items()))


def describe_population(signatures: Sequence[Signature]) -> str:
    """Render a per-class occupancy table for a generated population."""
    counts = class_occupancy(signatures)
    total = len(signatures)
    rows = []
    for serial, count in counts.items():
        cls = class_by_serial(serial)
        share = f"{count / total:.1%}" if total else "-"
        rows.append((str(serial), cls.comment, str(count), share))
    table = format_table(("Serial", "Class", "Count", "Share"), rows)
    summary = (
        f"{total} signatures across {len(counts)} of 47 classes "
        f"(numpy kernel {'available' if HAVE_NUMPY else 'unavailable'})"
    )
    return f"{table}\n{summary}"
