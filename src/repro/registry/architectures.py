"""The 25 surveyed architectures of Table III.

Structural cells are transcribed verbatim from the paper's Table III;
the descriptions condense the §IV prose. ``paper_name`` and
``paper_flexibility`` are what the paper printed — the library re-derives
both, and the golden tests check agreement (one known erratum: the paper
prints flexibility 2 for PACT XPP although its own Table II assigns
IMP-II a value of 3; see ``KNOWN_ERRATA``).
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.errors import RegistryError
from repro.registry.record import ArchitectureFamily, ArchitectureRecord

__all__ = [
    "SURVEYED_ARCHITECTURES",
    "KNOWN_ERRATA",
    "all_architectures",
    "architecture",
    "architectures_by_family",
    "architecture_names",
]


def _record(*args, **kwargs) -> ArchitectureRecord:
    return ArchitectureRecord(*args, **kwargs)


#: Table III, row by row, in the paper's order.
SURVEYED_ARCHITECTURES: tuple[ArchitectureRecord, ...] = (
    _record(
        name="ARM7TDMI",
        ips="1", dps="1", ip_ip="none", ip_dp="1-1", ip_im="1-1",
        dp_dm="1-1", dp_dp="none",
        paper_name="IUP", paper_flexibility=0,
        family=ArchitectureFamily.MICROCONTROLLER, year=1994,
        reference="Texas Instruments TMS470R1A256 datasheet [10]",
        description=(
            "Classic 32-bit RISC uni-processor: one instruction processor "
            "directly coupled to one data processor, instruction and data "
            "memories hard-wired — the baseline instruction-flow machine."
        ),
    ),
    _record(
        name="AT89C51",
        ips="1", dps="1", ip_ip="none", ip_dp="1-1", ip_im="1-1",
        dp_dm="1-1", dp_dp="none",
        paper_name="IUP", paper_flexibility=0,
        family=ArchitectureFamily.MICROCONTROLLER, year=1993,
        reference="Atmel AT89C51 datasheet [11]",
        description=(
            "8-bit 8051-family microcontroller with 4K flash; a minimal "
            "Von Neumann instruction-flow uni-processor."
        ),
    ),
    _record(
        name="IMAGINE",
        ips="1", dps="6", ip_ip="none", ip_dp="1-6", ip_im="1-1",
        dp_dm="6-1", dp_dp="6x6",
        paper_name="IAP-II", paper_flexibility=2,
        family=ArchitectureFamily.CGRA, year=2002,
        reference="Kapasi et al., The Imagine stream processor [12]",
        description=(
            "Stream processor: a host controls 6 ALU clusters that can be "
            "connected to each other or the multi-ported register file "
            "through a circuit-switched network."
        ),
    ),
    _record(
        name="MorphoSys",
        ips="1", dps="64", ip_ip="none", ip_dp="1-64", ip_im="1-1",
        dp_dm="64-1", dp_dp="64x64",
        paper_name="IAP-II", paper_flexibility=2,
        family=ArchitectureFamily.CGRA, year=1999,
        reference="Lu et al., The MorphoSys dynamically reconfigurable SoC [13]",
        description=(
            "8x8 reconfigurable-cell fabric under a host processor; RC "
            "cells connect to each other and to a frame buffer used for "
            "storage."
        ),
    ),
    _record(
        name="REMARC",
        ips="1", dps="64", ip_ip="none", ip_dp="1-64", ip_im="1-1",
        dp_dm="64-1", dp_dp="64x64",
        paper_name="IAP-II", paper_flexibility=2,
        family=ArchitectureFamily.CGRA, year=1998,
        reference="Miyamori & Olukotun, REMARC multimedia coprocessor [14]",
        description=(
            "8x8 array of NANO processors with local instruction storage "
            "but a single global control unit providing the program "
            "counter — SIMD-style array processing."
        ),
    ),
    _record(
        name="RICA",
        ips="1", dps="n", ip_ip="none", ip_dp="1-n", ip_im="1-1",
        dp_dm="n-1", dp_dp="nxn",
        paper_name="IAP-II", paper_flexibility=2,
        family=ArchitectureFamily.CGRA, year=2008,
        reference="Khawam et al., The reconfigurable instruction cell array [8]",
        description=(
            "Architectural template of instruction cells loosely coupled "
            "to data memory through I/O ports and tightly coupled to a "
            "RISC host; instance size fixed per generated domain design."
        ),
    ),
    _record(
        name="PADDI",
        ips="1", dps="8", ip_ip="none", ip_dp="1-8", ip_im="1-8",
        dp_dm="8-1", dp_dp="8x8",
        paper_name="IAP-II", paper_flexibility=2,
        family=ArchitectureFamily.CGRA, year=1992,
        reference="Chen & Rabaey, PADDI reconfigurable multiprocessor IC [15]",
        description=(
            "8 execution units with local nano-stores fed by a global "
            "instruction sequencer in VLIW fashion; units interconnect "
            "through a crossbar switch."
        ),
    ),
    _record(
        name="PACT XPP",
        ips="n", dps="n", ip_ip="none", ip_dp="n-n", ip_im="n-n",
        dp_dm="n-n", dp_dp="nxn",
        paper_name="IMP-II", paper_flexibility=2,
        family=ArchitectureFamily.CGRA, year=2003,
        reference="Baumgarte et al., PACT XPP self-reconfigurable fabric [16]",
        description=(
            "Self-reconfigurable data-processing array of processing "
            "array elements with local control, connected by a packet "
            "network."
        ),
    ),
    _record(
        name="Chimaera",
        ips="1", dps="n", ip_ip="none", ip_dp="1-n", ip_im="1-1",
        dp_dm="n-1", dp_dp="nxn",
        paper_name="IAP-II", paper_flexibility=2,
        family=ArchitectureFamily.CGRA, year=2004,
        reference="Hauck et al., The Chimaera reconfigurable functional unit [17]",
        description=(
            "Reconfigurable array of FPGA-style 2/3-input lookup tables "
            "attached to a shadow register file, controlled by a host "
            "processor."
        ),
    ),
    _record(
        name="ADRES",
        ips="1", dps="64", ip_ip="none", ip_dp="1-64", ip_im="1-1",
        dp_dm="8-1", dp_dp="64x64",
        paper_name="IAP-II", paper_flexibility=2,
        family=ArchitectureFamily.CGRA, year=2005,
        reference="Kwok & Wilton, register-file optimisation for ADRES [18]",
        description=(
            "Template: a VLIW RISC plus an 8x8 RC fabric; only the first "
            "row couples tightly to the multi-ported register file, the "
            "rest reach it through a mux-based network."
        ),
    ),
    _record(
        name="Montium",
        ips="1", dps="5", ip_ip="none", ip_dp="1-5", ip_im="1-1",
        dp_dm="5x10", dp_dp="5x5",
        paper_name="IAP-IV", paper_flexibility=3,
        family=ArchitectureFamily.CGRA, year=2004,
        reference="Heysters, Coarse-grained reconfigurable processors (PhD) [19]",
        description=(
            "Tile of 5 datapath units connected to 10 memory banks "
            "through a full circuit-switched network, sequenced in VLIW "
            "fashion."
        ),
    ),
    _record(
        name="GARP",
        ips="1", dps="24xn", ip_ip="none", ip_dp="1-24n", ip_im="1-1",
        dp_dm="24nx1", dp_dp="24nx24n",
        paper_name="IAP-IV", paper_flexibility=3,
        family=ArchitectureFamily.CGRA, year=2000,
        reference="Callahan, Hauser & Wawrzynek, The GARP architecture [20]",
        description=(
            "MIPS core tightly coupled to a reconfigurable fabric of rows "
            "of 23+1 2-bit logic elements composed into wider datapaths; "
            "elements loosely coupled to memory."
        ),
    ),
    _record(
        name="PipeRench",
        ips="1", dps="n", ip_ip="none", ip_dp="1-n", ip_im="1-1",
        dp_dm="nx1", dp_dp="nxn",
        paper_name="IAP-IV", paper_flexibility=3,
        family=ArchitectureFamily.CGRA, year=1999,
        reference="Goldstein et al., PipeRench streaming coprocessor [21,22]",
        description=(
            "Rows (stripes) of processing elements joined by horizontal "
            "and vertical buses, virtualising pipeline stages; a single "
            "input controller drives the fabric and the I/O FIFOs."
        ),
    ),
    _record(
        name="EGRA",
        ips="1", dps="n", ip_ip="none", ip_dp="1-n", ip_im="1-1",
        dp_dm="nxn", dp_dp="nxn",
        paper_name="IAP-IV", paper_flexibility=3,
        family=ArchitectureFamily.CGRA, year=2011,
        reference="Ansaloni, Bonzini & Pozzi, EGRA template [23]",
        description=(
            "Template of ALU, multiplier and memory blocks in rows and "
            "columns, joined by nearest-neighbour plus bus interconnect; "
            "an external controller drives RAC clusters."
        ),
    ),
    _record(
        name="ELM",
        ips="1", dps="2", ip_ip="none", ip_dp="1-2", ip_im="1-1",
        dp_dm="2x2", dp_dp="2x2",
        paper_name="IAP-IV", paper_flexibility=3,
        family=ArchitectureFamily.CGRA, year=2008,
        reference="Balfour et al., ELM energy-efficient embedded processor [24]",
        description=(
            "Energy-focused embedded ensemble whose two datapaths share "
            "switched access to operand registers and memories."
        ),
    ),
    _record(
        name="PADDI-2",
        ips="48", dps="48", ip_ip="none", ip_dp="48-48", ip_im="48-48",
        dp_dm="48-48", dp_dp="48-48",
        paper_name="IMP-I", paper_flexibility=2,
        family=ArchitectureFamily.CGRA, year=1995,
        reference="Yeung & Rabaey, 2.4 GOPS data-driven multiprocessor [25]",
        description=(
            "48 processing elements, each with its own local control "
            "unit, joined by a hierarchical interconnect; data processors "
            "tightly coupled to local control and local memory."
        ),
    ),
    _record(
        name="Cortex-A9 (Quad)",
        ips="4", dps="4", ip_ip="none", ip_dp="4-4", ip_im="4-4",
        dp_dm="4-4", dp_dp="none",
        paper_name="IMP-I", paper_flexibility=2,
        family=ArchitectureFamily.MULTICORE, year=2009,
        reference="ARM Cortex-A9 white paper [26]",
        description=(
            "Four application-class cores working in parallel, each an "
            "independent Von Neumann machine — separate IP-DP pairs."
        ),
    ),
    _record(
        name="Core2Duo",
        ips="2", dps="2", ip_ip="none", ip_dp="2-2", ip_im="2-2",
        dp_dm="2-2", dp_dp="none",
        paper_name="IMP-I", paper_flexibility=2,
        family=ArchitectureFamily.MULTICORE, year=2008,
        reference="Intel Core2 Duo development kit documentation [27]",
        description=(
            "Dual-core x86 processor: two IPs directly connected to two "
            "DPs working in parallel."
        ),
    ),
    _record(
        name="Pleiades",
        ips="n", dps="n", ip_ip="none", ip_dp="n-n", ip_im="n-n",
        dp_dm="n-1", dp_dp="nxn",
        paper_name="IMP-II", paper_flexibility=3,
        family=ArchitectureFamily.CGRA, year=1997,
        reference="Rabaey et al., Heterogeneous reconfigurable systems [28]",
        description=(
            "Host processor plus satellite processors joined by a "
            "circuit-switched network — an energy-driven heterogeneous "
            "multiprocessor."
        ),
    ),
    _record(
        name="RaPiD",
        ips="n", dps="m", ip_ip="none", ip_dp="nxm", ip_im="nxn",
        dp_dm="m-1", dp_dp="mxm",
        paper_name="IMP-XIV", paper_flexibility=5,
        family=ArchitectureFamily.CGRA, year=1999,
        reference="Cronquist et al., RaPiD reconfigurable pipelined datapaths [29]",
        description=(
            "Linear array of functional units joined by a bus-based "
            "network; instruction processors reach the functional units "
            "over the same buses, limiting scalability."
        ),
    ),
    _record(
        name="REDEFINE",
        ips="0", dps="64", ip_ip="none", ip_dp="none", ip_im="none",
        dp_dm="22x1", dp_dp="64x64",
        paper_name="DMP-IV", paper_flexibility=3,
        family=ArchitectureFamily.DATAFLOW, year=2009,
        reference="Alle et al., REDEFINE polymorphic ASIC [30]",
        description=(
            "Static-dataflow fabric: an 8x8 matrix of compute elements "
            "joined by a packet-switched NoC executes coarse-grain "
            "HyperOps (dataflow sub-graphs) without any instruction "
            "processor."
        ),
    ),
    _record(
        name="Colt",
        ips="0", dps="16", ip_ip="none", ip_dp="none", ip_im="none",
        dp_dm="16x6", dp_dp="16x16",
        paper_name="DMP-IV", paper_flexibility=3,
        family=ArchitectureFamily.DATAFLOW, year=1996,
        reference="Bittner, Athanas & Musgrove, Colt wormhole RTR [31]",
        description=(
            "4x4 matrix of data processing elements behind a crossbar; "
            "the data stream itself carries routing information and "
            "reconfigures the fabric at run time (wormhole RTR). No "
            "on-chip memory — six I/O ports reach external memories."
        ),
    ),
    _record(
        name="DRRA",
        ips="n", dps="n", ip_ip="nx14", ip_dp="n-n", ip_im="n-n",
        dp_dm="nx14", dp_dp="nx14",
        paper_name="ISP-IV", paper_flexibility=5,
        family=ArchitectureFamily.CGRA, year=2010,
        reference="Shami & Hemani, Control scheme for a CGRA [32]",
        description=(
            "Template of distributed control, memory and datapath "
            "resources; every element reaches peers within a 3-hop "
            "sliding window left and right (14 reachable column "
            "neighbours), and control elements compose spatially."
        ),
    ),
    _record(
        name="MATRIX",
        ips="n", dps="n", ip_ip="nxn", ip_dp="nxn", ip_im="nxn",
        dp_dm="nxn", dp_dp="nxn",
        paper_name="ISP-XVI", paper_flexibility=7,
        family=ArchitectureFamily.CGRA, year=1996,
        reference="Mirsky & DeHon, MATRIX configurable instruction distribution [33]",
        description=(
            "Every basic functional unit can serve as instruction or "
            "data storage, register file or datapath, reached via "
            "nearest-neighbour, length-four bypass and global buses; "
            "cannot implement pure data-flow, hence instruction-flow "
            "spatial."
        ),
    ),
    _record(
        name="FPGA",
        ips="v", dps="v", ip_ip="vxv", ip_dp="vxv", ip_im="vxv",
        dp_dm="vxv", dp_dp="vxv",
        paper_name="USP", paper_flexibility=8,
        family=ArchitectureFamily.FPGA, year=2011,
        reference="Altera device family documentation [34]",
        description=(
            "Fine-grained fabric of configurable logic blocks that can "
            "implement IPs, DPs or memories and connect to any other "
            "block — the universal-flow spatial processor, able to build "
            "both instruction-flow and data-flow machines."
        ),
        granularity="LUTs",
    ),
)

#: Paper-vs-derived disagreements that are the paper's own inconsistencies.
#: Maps architecture name -> (field, paper value, consistent value, note).
KNOWN_ERRATA: dict[str, tuple[str, object, object, str]] = {
    "PACT XPP": (
        "paper_flexibility",
        2,
        3,
        "Table III prints flexibility 2, but the paper's own Table II "
        "assigns IMP-II a flexibility of 3 (2 plural populations + 1 "
        "switched DP-DP link), and the same-class Pleiades row prints 3.",
    ),
}


@lru_cache(maxsize=1)
def _by_name() -> dict[str, ArchitectureRecord]:
    index: dict[str, ArchitectureRecord] = {}
    for rec in SURVEYED_ARCHITECTURES:
        index[rec.name.lower()] = rec
    return index


def all_architectures() -> tuple[ArchitectureRecord, ...]:
    """All 25 Table-III records in the paper's row order."""
    return SURVEYED_ARCHITECTURES


def architecture_names() -> tuple[str, ...]:
    """Names in Table-III order."""
    return tuple(rec.name for rec in SURVEYED_ARCHITECTURES)


def architecture(name: str) -> ArchitectureRecord:
    """Look up one surveyed architecture by (case-insensitive) name."""
    try:
        return _by_name()[name.strip().lower()]
    except KeyError as exc:
        known = ", ".join(architecture_names())
        raise RegistryError(f"unknown architecture {name!r}; known: {known}") from exc


def architectures_by_family(family: ArchitectureFamily) -> tuple[ArchitectureRecord, ...]:
    """All records belonging to a survey family."""
    return tuple(rec for rec in SURVEYED_ARCHITECTURES if rec.family is family)
