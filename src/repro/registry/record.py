"""Structured records for surveyed architectures (Table III rows).

Each record carries the raw Table-III cells verbatim (so the published
table can be re-rendered exactly) plus survey metadata from the paper's
§IV prose: year, reference, family, and a description. The structural
cells are parsed into a :class:`~repro.core.signature.Signature` on
demand, which is what the classifier consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

from repro.core.classify import Classification, classify
from repro.core.signature import Signature, make_signature

__all__ = ["ArchitectureFamily", "ArchitectureRecord"]


class ArchitectureFamily(enum.Enum):
    """Coarse grouping used in the paper's survey narrative (§IV)."""

    MICROCONTROLLER = "uni-processor / microcontroller"
    CGRA = "coarse-grained reconfigurable architecture"
    MULTICORE = "general-purpose multi-core"
    DATAFLOW = "data-flow reconfigurable fabric"
    FPGA = "fine-grained reconfigurable fabric"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ArchitectureRecord:
    """One surveyed architecture.

    ``ips``/``dps`` and the five link cells hold the Table-III strings
    verbatim (``"64"``, ``"24xn"``, ``"none"``, ``"64x64"`` …).
    ``paper_name`` / ``paper_flexibility`` record what the paper *printed*
    so that errata can be detected against the derived values.
    """

    name: str
    ips: str
    dps: str
    ip_ip: str
    ip_dp: str
    ip_im: str
    dp_dm: str
    dp_dp: str
    paper_name: str
    paper_flexibility: int
    family: ArchitectureFamily
    year: int
    reference: str
    description: str
    granularity: str = "coarse"

    @cached_property
    def signature(self) -> Signature:
        """The parsed structural signature (classification input)."""
        return make_signature(
            self.ips,
            self.dps,
            ip_ip=self.ip_ip,
            ip_dp=self.ip_dp,
            ip_im=self.ip_im,
            dp_dm=self.dp_dm,
            dp_dp=self.dp_dp,
            granularity=self.granularity,
        )

    @cached_property
    def classification(self) -> Classification:
        """The derived taxonomy placement."""
        return classify(self.signature)

    @property
    def derived_name(self) -> str:
        """Short taxonomic name the classifier derives for this record."""
        return self.classification.short_name

    @property
    def derived_flexibility(self) -> int:
        """Flexibility score derived from the record's signature."""
        return self.classification.flexibility

    @property
    def matches_paper_name(self) -> bool:
        """Whether the derived name agrees with the paper's published name."""
        return self.derived_name == self.paper_name

    @property
    def matches_paper_flexibility(self) -> bool:
        """Whether the derived score agrees with the paper's published score."""
        return self.derived_flexibility == self.paper_flexibility

    def table_row(self) -> tuple[str, ...]:
        """The Table-III row as rendered cells (derived name/flexibility)."""
        return (
            self.name,
            self.ips,
            self.dps,
            self.ip_ip,
            self.ip_dp,
            self.ip_im,
            self.dp_dm,
            self.dp_dp,
            self.derived_name,
            str(self.derived_flexibility),
        )

    def __str__(self) -> str:
        return f"{self.name} ({self.year}): {self.derived_name}, flexibility {self.derived_flexibility}"
