"""Self-audit: library-wide consistency checks as a public API.

Downstream users extending the registry, the models or the taxonomy can
call :func:`run_audit` to re-verify the invariants the paper's scheme
rests on — useful in their CI, and used by ours. Each check is
independent and reports pass/fail with a detail message; the audit never
raises on a failed check (only on library bugs).

Checks:

``enumeration``      47 classes, unique signatures, serials contiguous.
``classification``   every canonical signature classifies onto itself.
``scoring``          class flexibility equals the scoring rule re-applied.
``naming``           short names parse back to the same name.
``registry``         survey rows classify consistently; only documented
                     errata disagree with the paper.
``models``           Eq. 1/Eq. 2 monotone in n and in switch upgrades
                     for every class.
``morphability``     emulation relation is an antisymmetric DAG with USP
                     as unique maximum, consistent with flexibility.
``baselines``        exactly 19 classes new vs Skillicorn; Flynn mapping
                     total on fixed-shape instruction-flow machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["AuditCheck", "AuditReport", "run_audit"]


@dataclass(frozen=True, slots=True)
class AuditCheck:
    """Outcome of one named audit check."""

    name: str
    passed: bool
    detail: str


@dataclass
class AuditReport:
    """All audit outcomes, with aggregate helpers."""

    checks: list[AuditCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every check passed."""
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> list[AuditCheck]:
        """The checks that failed."""
        return [check for check in self.checks if not check.passed]

    def summary(self) -> str:
        """Human-readable report, one line per check."""
        lines = []
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            lines.append(f"[{mark}] {check.name}: {check.detail}")
        verdict = "all checks passed" if self.passed else (
            f"{len(self.failures)} check(s) FAILED"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _check_enumeration() -> AuditCheck:
    from repro.core import all_classes

    classes = all_classes()
    problems = []
    if len(classes) != 47:
        problems.append(f"expected 47 classes, found {len(classes)}")
    if [c.serial for c in classes] != list(range(1, 48)):
        problems.append("serials are not contiguous 1..47")
    if len({c.signature for c in classes}) != len(classes):
        problems.append("duplicate canonical signatures")
    named = [c.name.short for c in classes if c.name is not None]
    if len(named) != len(set(named)):
        problems.append("duplicate class names")
    return AuditCheck(
        "enumeration",
        not problems,
        "; ".join(problems) or "47 unique classes, serials 1..47",
    )


def _check_classification() -> AuditCheck:
    from repro.core import all_classes, classify

    mismatches = [
        (cls.serial, classify(cls.signature).taxonomy_class.serial)
        for cls in all_classes()
        if classify(cls.signature).taxonomy_class.serial != cls.serial
    ]
    return AuditCheck(
        "classification",
        not mismatches,
        f"{len(mismatches)} canonical signature(s) misclassify: {mismatches[:3]}"
        if mismatches
        else "all 47 canonical signatures classify onto themselves",
    )


def _check_scoring() -> AuditCheck:
    from repro.core import LINK_SITES, all_classes, flexibility

    bad = []
    for cls in all_classes():
        if not cls.implementable:
            continue
        sig = cls.signature
        manual = (
            sum(1 for c in (sig.ips, sig.dps) if c.multiplicity.is_plural)
            + sum(1 for s in LINK_SITES if sig.link(s).is_switched)
            + (1 if sig.is_universal_flow else 0)
        )
        if flexibility(sig) != manual:
            bad.append(cls.comment)
    return AuditCheck(
        "scoring",
        not bad,
        f"scoring rule violated for: {bad}" if bad else
        "flexibility equals the scoring rule for all 43 named classes",
    )


def _check_naming() -> AuditCheck:
    from repro.core import TaxonomicName, implementable_classes

    bad = [
        cls.name.short
        for cls in implementable_classes()
        if TaxonomicName.parse(cls.name.short) != cls.name
    ]
    return AuditCheck(
        "naming",
        not bad,
        f"names fail to round-trip: {bad}" if bad else
        "all 43 names parse back to themselves",
    )


def _check_registry() -> AuditCheck:
    from repro.registry import KNOWN_ERRATA, all_architectures

    unexpected = []
    for rec in all_architectures():
        if rec.matches_paper_name and rec.matches_paper_flexibility:
            continue
        if rec.name not in KNOWN_ERRATA:
            unexpected.append(rec.name)
    count = len(all_architectures())
    return AuditCheck(
        "registry",
        count == 25 and not unexpected,
        f"undocumented paper disagreements: {unexpected}" if unexpected else
        f"{count} records; only documented errata disagree with the paper",
    )


def _check_models() -> AuditCheck:
    from repro.core import LinkSite, implementable_classes
    from repro.models import AreaModel, ConfigBitsModel

    area = AreaModel()
    config = ConfigBitsModel()
    problems = []
    for cls in implementable_classes():
        sig = cls.signature
        if area.total_ge(sig, n=32) < area.total_ge(sig, n=8):
            problems.append(f"{cls.comment}: area not monotone in n")
        if config.total(sig, n=32) < config.total(sig, n=8):
            problems.append(f"{cls.comment}: config bits not monotone in n")
        for site in LinkSite:
            try:
                upgraded = sig.upgraded(site)
            except Exception:
                continue
            if area.total_ge(upgraded, n=16) < area.total_ge(sig, n=16):
                problems.append(f"{cls.comment}: upgrade at {site.label} shrank area")
            if config.total(upgraded, n=16) < config.total(sig, n=16):
                problems.append(f"{cls.comment}: upgrade at {site.label} shrank bits")
    return AuditCheck(
        "models",
        not problems,
        "; ".join(problems[:3]) or
        "Eq.1/Eq.2 monotone in n and under link upgrades for all classes",
    )


def _check_morphability() -> AuditCheck:
    import networkx as nx

    from repro.analysis import build_morphability_order
    from repro.core import class_by_name, flexibility

    try:
        order = build_morphability_order()
    except AssertionError as exc:
        return AuditCheck("morphability", False, f"relation has cycles: {exc}")
    problems = []
    if not nx.is_directed_acyclic_graph(order.graph):
        problems.append("not a DAG")
    if order.maximal_elements() != ["USP"]:
        problems.append(f"maxima: {order.maximal_elements()}")
    for a, b in order.graph.edges():
        cls_a, cls_b = class_by_name(a), class_by_name(b)
        if (
            cls_a.name.machine_type is cls_b.name.machine_type
            and flexibility(cls_a.signature) < flexibility(cls_b.signature)
        ):
            problems.append(f"{a} emulates {b} with lower flexibility")
    return AuditCheck(
        "morphability",
        not problems,
        "; ".join(problems[:3]) or
        f"DAG with {order.graph.number_of_edges()} edges, USP unique maximum",
    )


def _check_baselines() -> AuditCheck:
    from repro.core import extension_report

    report = extension_report()
    problems = []
    if len(report.skillicorn_new) != 19:
        problems.append(
            f"expected 19 new classes vs Skillicorn, found "
            f"{len(report.skillicorn_new)}"
        )
    if len(report.flynn_unmappable) != 6:
        problems.append(
            f"expected 6 Flynn-unmappable classes, found "
            f"{len(report.flynn_unmappable)}"
        )
    return AuditCheck(
        "baselines",
        not problems,
        "; ".join(problems) or report.summary(),
    )


_CHECKS: tuple[tuple[str, Callable[[], AuditCheck]], ...] = (
    ("enumeration", _check_enumeration),
    ("classification", _check_classification),
    ("scoring", _check_scoring),
    ("naming", _check_naming),
    ("registry", _check_registry),
    ("models", _check_models),
    ("morphability", _check_morphability),
    ("baselines", _check_baselines),
)


def run_audit(*, only: "set[str] | None" = None) -> AuditReport:
    """Run all (or a subset of) the consistency checks."""
    report = AuditReport()
    for name, check in _CHECKS:
        if only is not None and name not in only:
            continue
        report.checks.append(check())
    if only is not None:
        unknown = only - {name for name, _ in _CHECKS}
        if unknown:
            raise ValueError(f"unknown audit checks: {sorted(unknown)}")
    return report
