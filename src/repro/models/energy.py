"""Energy model — the natural companion of Eq. 1 and Eq. 2.

§III-B notes that published architectures are compared on "speed or
energy efficiency" but offers no energy metric; this module supplies the
same style of structural estimator the paper builds for area and
configuration: per-operation energy composed from component activity and
interconnect traversal costs.

The model follows the standard CMOS decomposition:

* executing one operation costs the DP's switching energy plus its
  operand traffic through the DP-DM path;
* instruction delivery costs IP energy plus the IP-IM and IP-DP paths;
* each traversal of a *switched* path costs more than a direct wire
  (the mux tree toggles), in proportion to the structure's area — the
  energetic face of the flexibility trade-off;
* static (leakage) power is proportional to total area, so flexible
  (bigger) fabrics pay standby energy even when idle.

Like Eq. 1/Eq. 2, the absolute numbers are library parameters; the
claims the benchmarks verify are orderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.connectivity import LinkKind, LinkSite
from repro.core.signature import Signature
from repro.models.area import AreaModel

__all__ = ["EnergyParameters", "EnergyBreakdown", "EnergyModel"]


@dataclass(frozen=True, slots=True)
class EnergyParameters:
    """Per-event energy costs in picojoules (order-of-magnitude CMOS)."""

    dp_op_pj: float = 4.0          #: one ALU-class operation
    ip_issue_pj: float = 6.0       #: fetch/decode/issue of one instruction
    memory_access_pj: float = 8.0  #: one DM/IM word access
    wire_traversal_pj: float = 0.5     #: direct link, per word
    switch_traversal_pj: float = 2.5   #: crossbar-class link, per word
    #: leakage power per gate equivalent, in pJ per cycle at 1 GHz-class rates.
    leakage_pj_per_ge_cycle: float = 0.0005

    def __post_init__(self) -> None:
        for name in (
            "dp_op_pj", "ip_issue_pj", "memory_access_pj",
            "wire_traversal_pj", "switch_traversal_pj",
            "leakage_pj_per_ge_cycle",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.switch_traversal_pj < self.wire_traversal_pj:
            raise ValueError(
                "a switched traversal cannot cost less than a direct wire"
            )


@dataclass(frozen=True, slots=True)
class EnergyBreakdown:
    """Energy of one workload, itemised (picojoules)."""

    compute_pj: float
    instruction_pj: float
    memory_pj: float
    interconnect_pj: float
    leakage_pj: float

    @property
    def total_pj(self) -> float:
        """Total energy per operation, in picojoules."""
        return (
            self.compute_pj
            + self.instruction_pj
            + self.memory_pj
            + self.interconnect_pj
            + self.leakage_pj
        )

    @property
    def dynamic_pj(self) -> float:
        """The dynamic (switching) component, in picojoules."""
        return self.total_pj - self.leakage_pj

    def explain(self) -> str:
        """Human-readable breakdown, one line per contributing term."""
        lines = [
            f"compute:      {self.compute_pj:,.1f} pJ",
            f"instruction:  {self.instruction_pj:,.1f} pJ",
            f"memory:       {self.memory_pj:,.1f} pJ",
            f"interconnect: {self.interconnect_pj:,.1f} pJ",
            f"leakage:      {self.leakage_pj:,.1f} pJ",
            f"total:        {self.total_pj:,.1f} pJ",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class EnergyModel:
    """Structural per-workload energy estimator for a taxonomy class."""

    parameters: EnergyParameters = field(default_factory=EnergyParameters)
    area_model: AreaModel = field(default_factory=AreaModel)

    def _traversal_cost(self, signature: Signature, site: LinkSite) -> float:
        kind = signature.link(site).kind
        if kind is LinkKind.NONE:
            return 0.0
        if kind is LinkKind.DIRECT:
            return self.parameters.wire_traversal_pj
        return self.parameters.switch_traversal_pj

    def estimate(
        self,
        signature: Signature,
        *,
        operations: int,
        memory_accesses: int | None = None,
        cycles: int | None = None,
        n: int = 16,
    ) -> EnergyBreakdown:
        """Energy for a workload of ``operations`` ops on the class.

        ``memory_accesses`` defaults to one access per operation;
        ``cycles`` (for the leakage term) defaults to assuming the
        machine's DPs are fully utilised (ops / population).
        """
        if operations < 0:
            raise ValueError("operations must be non-negative")
        params = self.parameters
        accesses = memory_accesses if memory_accesses is not None else operations
        if accesses < 0:
            raise ValueError("memory accesses must be non-negative")

        n_dp = max(signature.dps.resolve(n), 1)
        if cycles is None:
            cycles = max(-(-operations // n_dp), 1)
        if cycles <= 0:
            raise ValueError("cycles must be positive")

        compute = operations * params.dp_op_pj

        if signature.is_data_flow:
            # No instruction stream: operations self-trigger on tokens.
            instruction = 0.0
            instruction_traffic = 0.0
        else:
            instruction = operations * params.ip_issue_pj
            instruction_traffic = operations * (
                self._traversal_cost(signature, LinkSite.IP_IM)
                + self._traversal_cost(signature, LinkSite.IP_DP)
            )

        memory = accesses * params.memory_access_pj
        data_traffic = accesses * self._traversal_cost(signature, LinkSite.DP_DM)

        leakage = (
            self.area_model.total_ge(signature, n=n)
            * params.leakage_pj_per_ge_cycle
            * cycles
        )

        return EnergyBreakdown(
            compute_pj=compute,
            instruction_pj=instruction,
            memory_pj=memory,
            interconnect_pj=instruction_traffic + data_traffic,
            leakage_pj=leakage,
        )

    def energy_per_op(self, signature: Signature, *, n: int = 16) -> float:
        """Marginal energy of one fully-utilised operation (pJ/op)."""
        window = 1000 * max(signature.dps.resolve(n), 1)
        breakdown = self.estimate(signature, operations=window, n=n)
        return breakdown.total_pj / window
