"""Predictive models of the extended taxonomy: Eq. 1 (area) and Eq. 2
(configuration bits), with the switch-cost and technology-node libraries
they are parameterised by."""

from repro.models.area import AreaBreakdown, AreaModel, ComponentAreas, estimate_area
from repro.models.energy import EnergyBreakdown, EnergyModel, EnergyParameters
from repro.models.reconfiguration import (
    ReconfigurationCost,
    ReconfigurationModel,
    ReconfigurationPort,
)
from repro.models.configbits import (
    ComponentConfigWords,
    ConfigBitsBreakdown,
    ConfigBitsModel,
    estimate_config_bits,
)
from repro.models.switches import (
    DirectLinkModel,
    FullCrossbarModel,
    LimitedCrossbarModel,
    SharedBusModel,
    SwitchModel,
    default_switch_model,
)
from repro.models.technology import (
    NODE_28NM,
    NODE_45NM,
    NODE_65NM,
    NODE_90NM,
    NODES,
    TechnologyNode,
)

__all__ = [
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParameters",
    "ReconfigurationCost",
    "ReconfigurationModel",
    "ReconfigurationPort",
    "AreaBreakdown",
    "AreaModel",
    "ComponentAreas",
    "estimate_area",
    "ComponentConfigWords",
    "ConfigBitsBreakdown",
    "ConfigBitsModel",
    "estimate_config_bits",
    "SwitchModel",
    "DirectLinkModel",
    "SharedBusModel",
    "FullCrossbarModel",
    "LimitedCrossbarModel",
    "default_switch_model",
    "TechnologyNode",
    "NODES",
    "NODE_90NM",
    "NODE_65NM",
    "NODE_45NM",
    "NODE_28NM",
]
