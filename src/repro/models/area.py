"""The area estimator — Eq. 1 of the paper.

::

    Area = N·A_IP + N·A_IM + A_IP-IP + A_IP-IM
         + N·A_DP + N·A_DM + A_DP-DP + A_DP-DM

For data-flow machines the IP/IM terms are dropped (the paper: "the first
part involving IP and IM will be ignored"). Component areas come from a
:class:`ComponentAreas` parameter set expressed in gate equivalents and
SRAM bits; switch areas come from :mod:`repro.models.switches`; a
:class:`~repro.models.technology.TechnologyNode` converts everything to
µm² when absolute figures are wanted.

The estimator preserves the paper's qualitative claims, which the
benchmark suite checks: area grows with flexibility because an ``x``
switch costs more than a ``-`` link, and crossbar area grows
quadratically in N while direct wiring grows linearly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.connectivity import LINK_SITES, LinkKind, LinkSite
from repro.core.signature import Signature
from repro.models.switches import SwitchModel, default_switch_model
from repro.models.technology import NODE_65NM, TechnologyNode

__all__ = [
    "ComponentAreas",
    "AreaBreakdown",
    "AreaModel",
    "estimate_area",
    "RedundancyCost",
    "redundancy_overhead",
]


@dataclass(frozen=True, slots=True)
class ComponentAreas:
    """Per-component area parameters.

    Logic blocks (IP, DP) in gate equivalents; memories (IM, DM) in bits.
    The defaults describe a small RISC-class IP, a 32-bit ALU-class DP and
    kilobyte-scale memories — deliberately modest, embedded-CGRA-flavoured
    values; replace them to model a specific design point.
    """

    ip_ge: float = 12_000.0
    dp_ge: float = 8_000.0
    im_bits: int = 8 * 1024 * 8
    dm_bits: int = 16 * 1024 * 8
    #: Fine-grained cell (LUT + FF + local routing) for universal fabrics.
    lut_cell_ge: float = 60.0

    def __post_init__(self) -> None:
        for name in ("ip_ge", "dp_ge", "lut_cell_ge"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        for name in ("im_bits", "dm_bits"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True, slots=True)
class AreaBreakdown:
    """Eq.-1 terms, itemised, in gate equivalents.

    Memory terms are tracked separately in bits because SRAM converts to
    silicon at a different density.
    """

    ip_logic_ge: float
    dp_logic_ge: float
    im_bits: float
    dm_bits: float
    switch_ge: dict[LinkSite, float]

    @property
    def total_logic_ge(self) -> float:
        """Summed logic area, in gate equivalents."""
        return self.ip_logic_ge + self.dp_logic_ge + sum(self.switch_ge.values())

    @property
    def total_memory_bits(self) -> float:
        """Summed memory capacity, in bits."""
        return self.im_bits + self.dm_bits

    def total_um2(self, node: TechnologyNode) -> float:
        """Absolute area at a technology node."""
        return node.logic_area(self.total_logic_ge) + node.memory_area(
            self.total_memory_bits
        )

    def explain(self) -> str:
        """Human-readable breakdown, one line per contributing term."""
        lines = [
            f"IP logic: {self.ip_logic_ge:,.0f} GE",
            f"DP logic: {self.dp_logic_ge:,.0f} GE",
            f"IM: {self.im_bits:,.0f} bits",
            f"DM: {self.dm_bits:,.0f} bits",
        ]
        for site, area in self.switch_ge.items():
            lines.append(f"{site.label} switch: {area:,.0f} GE")
        lines.append(f"total logic: {self.total_logic_ge:,.0f} GE")
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class AreaModel:
    """Configured Eq.-1 evaluator.

    Parameters
    ----------
    areas:
        Per-component area library.
    width_bits:
        Datapath width assumed for switch sizing.
    switch_models:
        Optional per-site overrides (e.g. a limited crossbar on DP-DP);
        sites not listed fall back to :func:`default_switch_model`.
    """

    areas: ComponentAreas = field(default_factory=ComponentAreas)
    width_bits: int = 32
    switch_models: dict[LinkSite, SwitchModel] = field(default_factory=dict)

    def _switch_model(self, site: LinkSite, kind: LinkKind) -> SwitchModel | None:
        if kind is LinkKind.NONE:
            return None
        override = self.switch_models.get(site)
        if override is not None:
            return override
        return default_switch_model(kind, width_bits=self.width_bits)

    def _populations(self, signature: Signature, default_n: int) -> tuple[int, int]:
        n_ip = signature.ips.resolve(default_n)
        n_dp = signature.dps.resolve(default_n)
        return n_ip, n_dp

    def _site_ports(
        self, site: LinkSite, n_ip: int, n_dp: int, n_im: int, n_dm: int
    ) -> tuple[int, int]:
        ports = {
            LinkSite.IP_IP: (n_ip, n_ip),
            LinkSite.IP_DP: (n_ip, n_dp),
            LinkSite.IP_IM: (n_ip, n_im),
            LinkSite.DP_DM: (n_dp, n_dm),
            LinkSite.DP_DP: (n_dp, n_dp),
        }
        return ports[site]

    def breakdown(self, signature: Signature, *, n: int = 16) -> AreaBreakdown:
        """Evaluate Eq. 1 for a signature with ``n`` substituted for symbols.

        For universal-flow (fine-grained) machines the IP/DP logic terms
        use the LUT-cell area — the fabric *is* the processors — while the
        switch terms still apply (the rich vxv interconnect).
        """
        if n <= 0:
            raise ValueError("n must be positive")
        n_ip, n_dp = self._populations(signature, n)
        # Memories pair with their processors: one IM per IP, one DM per DP
        # (Eq. 1 uses the same N for the component and its memory).
        n_im, n_dm = n_ip, n_dp

        if signature.is_universal_flow:
            # v-symbol machines: a fabric of fine cells; each "processor"
            # is a region of LUT cells rather than a hard macro. The IM/DM
            # of a configured machine live in the same cells (LUT RAM), so
            # the memory terms stay but shrink to the configured size.
            ip_logic = n_ip * self.areas.lut_cell_ge * _CELLS_PER_SOFT_IP
            dp_logic = n_dp * self.areas.lut_cell_ge * _CELLS_PER_SOFT_DP
        else:
            ip_logic = n_ip * self.areas.ip_ge
            dp_logic = n_dp * self.areas.dp_ge
        im_bits = float(n_im * self.areas.im_bits) if signature.is_data_flow is False else 0.0
        if signature.is_data_flow:
            # Eq. 1: IP and IM terms ignored for data-flow machines.
            ip_logic = 0.0
            im_bits = 0.0
        dm_bits = float(n_dm * self.areas.dm_bits)

        switch_ge: dict[LinkSite, float] = {}
        for site in LINK_SITES:
            kind = signature.link(site).kind
            model = self._switch_model(site, kind)
            if model is None:
                continue
            inputs, outputs = self._site_ports(site, n_ip, n_dp, n_im, n_dm)
            switch_ge[site] = model.area_ge(inputs, outputs)

        return AreaBreakdown(
            ip_logic_ge=ip_logic,
            dp_logic_ge=dp_logic,
            im_bits=im_bits,
            dm_bits=dm_bits,
            switch_ge=switch_ge,
        )

    def total_ge(self, signature: Signature, *, n: int = 16) -> float:
        """Total logic area in gate equivalents (memories excluded)."""
        return self.breakdown(signature, n=n).total_logic_ge

    def total_um2(
        self, signature: Signature, *, n: int = 16, node: TechnologyNode = NODE_65NM
    ) -> float:
        """Total area (logic + memory) in µm² at a technology node."""
        return self.breakdown(signature, n=n).total_um2(node)


#: Soft-processor footprints on a fine-grained fabric, in LUT cells.
_CELLS_PER_SOFT_IP = 600
_CELLS_PER_SOFT_DP = 400


@dataclass(frozen=True, slots=True)
class RedundancyCost:
    """What spare-PE redundancy costs a design, priced by Eq. 1.

    A ``remap(spares=s)`` fault policy only works if the silicon carries
    ``s`` extra PEs (and their memories and switch ports) — fault
    tolerance is bought in area. ``overhead_ge`` is the Eq.-1 delta
    between the ``n + spares`` and the plain ``n`` design.
    """

    n: int
    spares: int
    base_ge: float
    redundant_ge: float

    @property
    def overhead_ge(self) -> float:
        """Extra area the spare resources cost, in gate equivalents."""
        return self.redundant_ge - self.base_ge

    @property
    def overhead_fraction(self) -> float:
        """Spare-area overhead as a fraction of the base area."""
        return self.overhead_ge / self.base_ge if self.base_ge else 0.0

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.spares} spare PE{'s' if self.spares != 1 else ''} on an "
            f"n={self.n} design: {self.base_ge:,.0f} -> "
            f"{self.redundant_ge:,.0f} GE "
            f"(+{self.overhead_fraction * 100:.1f}%)"
        )


def redundancy_overhead(
    signature: Signature,
    *,
    n: int = 16,
    spares: int = 1,
    model: "AreaModel | None" = None,
) -> RedundancyCost:
    """Price ``spares`` extra PEs for a signature via Eq. 1.

    Note the asymmetry the model exposes: on direct-wired signatures the
    overhead is near-linear, while every switched site grows with its
    port count (quadratically for a full crossbar), so the architectures
    whose structure can exploit spares are also the ones that pay the
    most to carry them — flexibility priced in gate equivalents again.
    """
    if spares < 0:
        raise ValueError("spares must be non-negative")
    active = model if model is not None else AreaModel()
    base = active.total_ge(signature, n=n)
    redundant = active.total_ge(signature, n=n + spares)
    return RedundancyCost(
        n=n, spares=spares, base_ge=base, redundant_ge=redundant
    )


def estimate_area(
    signature: Signature,
    *,
    n: int = 16,
    model: AreaModel | None = None,
    node: TechnologyNode | None = None,
) -> float:
    """Convenience one-shot Eq.-1 evaluation.

    Returns gate equivalents, or µm² when ``node`` is given.
    """
    active = model if model is not None else AreaModel()
    if node is None:
        return active.total_ge(signature, n=n)
    return active.total_um2(signature, n=n, node=node)
