"""The configuration-overhead estimator — Eq. 2 of the paper.

::

    CB = N·CW_IP + N·CW_IM + CW_IP-IP + CW_IP-IM
       + N·CW_DP + N·CW_DM + CW_DP-DP + CW_DP-DM

Each component contributes a configuration word (CW) whose width "depends
on the type, functionality and IOs of a component"; switch CWs come from
the models in :mod:`repro.models.switches` (a full crossbar needs more
bits than a limited one). Fixed-function components — a hard-wired IP
executing a fixed ISA, a plain memory — contribute zero CW; it is the
*reconfigurable* structures that pay.

The flexibility/overhead trade-off the paper describes (§III-B: an FPGA
is most flexible "at the cost of enormous reconfiguration overhead")
falls out of this model and is checked by the Eq.-2 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.connectivity import LINK_SITES, LinkKind, LinkSite
from repro.core.signature import Signature
from repro.models.switches import SwitchModel, default_switch_model

__all__ = ["ComponentConfigWords", "ConfigBitsBreakdown", "ConfigBitsModel", "estimate_config_bits"]


@dataclass(frozen=True, slots=True)
class ComponentConfigWords:
    """Per-component configuration-word widths, in bits.

    Defaults model a CGRA-style fabric: a sequencer IP with a mode word, a
    DP with an opcode/constant word, memories with address-generator
    configuration, and fine-grained LUT cells whose truth table plus
    input-select bits dominate (the FPGA overhead story).
    """

    ip_cw: int = 32
    dp_cw: int = 48
    im_cw: int = 16
    dm_cw: int = 24
    #: Truth table (2^k) + input selection for a k-input LUT cell.
    lut_inputs: int = 4
    lut_routing_cw: int = 24

    def __post_init__(self) -> None:
        for name in ("ip_cw", "dp_cw", "im_cw", "dm_cw", "lut_routing_cw"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.lut_inputs <= 0:
            raise ValueError("lut_inputs must be positive")

    @property
    def lut_cell_cw(self) -> int:
        """Configuration bits of one fine-grained cell."""
        return (1 << self.lut_inputs) + self.lut_routing_cw


@dataclass(frozen=True, slots=True)
class ConfigBitsBreakdown:
    """Eq.-2 terms, itemised, in bits."""

    ip_bits: int
    dp_bits: int
    im_bits: int
    dm_bits: int
    switch_bits: dict[LinkSite, int]

    @property
    def total(self) -> int:
        """Summed configuration bits (the Eq. 2 number)."""
        return (
            self.ip_bits
            + self.dp_bits
            + self.im_bits
            + self.dm_bits
            + sum(self.switch_bits.values())
        )

    @property
    def switch_total(self) -> int:
        """Configuration bits spent on the switched links alone."""
        return sum(self.switch_bits.values())

    def explain(self) -> str:
        """Human-readable breakdown, one line per contributing term."""
        lines = [
            f"IP words: {self.ip_bits:,} bits",
            f"DP words: {self.dp_bits:,} bits",
            f"IM words: {self.im_bits:,} bits",
            f"DM words: {self.dm_bits:,} bits",
        ]
        for site, bits in self.switch_bits.items():
            lines.append(f"{site.label} switch: {bits:,} bits")
        lines.append(f"total: {self.total:,} bits")
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class ConfigBitsModel:
    """Configured Eq.-2 evaluator (mirrors :class:`~repro.models.area.AreaModel`)."""

    words: ComponentConfigWords = field(default_factory=ComponentConfigWords)
    width_bits: int = 32
    switch_models: dict[LinkSite, SwitchModel] = field(default_factory=dict)
    #: Hard-wired (non-reconfigurable) machines pay no component CW.
    reconfigurable_components: bool = True

    def _switch_model(self, site: LinkSite, kind: LinkKind) -> SwitchModel | None:
        if kind is LinkKind.NONE:
            return None
        override = self.switch_models.get(site)
        if override is not None:
            return override
        return default_switch_model(kind, width_bits=self.width_bits)

    def breakdown(self, signature: Signature, *, n: int = 16) -> ConfigBitsBreakdown:
        """Evaluate Eq. 2 for a signature with ``n`` substituted for symbols."""
        if n <= 0:
            raise ValueError("n must be positive")
        n_ip = signature.ips.resolve(n)
        n_dp = signature.dps.resolve(n)
        n_im, n_dm = n_ip, n_dp

        if signature.is_universal_flow:
            # Fine-grained fabric: every soft processor is a region of LUT
            # cells, each cell paying its truth-table + routing word.
            from repro.models.area import _CELLS_PER_SOFT_DP, _CELLS_PER_SOFT_IP

            ip_bits = n_ip * _CELLS_PER_SOFT_IP * self.words.lut_cell_cw
            dp_bits = n_dp * _CELLS_PER_SOFT_DP * self.words.lut_cell_cw
            im_bits = n_im * self.words.im_cw
            dm_bits = n_dm * self.words.dm_cw
        elif self.reconfigurable_components:
            ip_bits = n_ip * self.words.ip_cw
            dp_bits = n_dp * self.words.dp_cw
            im_bits = n_im * self.words.im_cw
            dm_bits = n_dm * self.words.dm_cw
        else:
            ip_bits = dp_bits = im_bits = dm_bits = 0

        if signature.is_data_flow:
            ip_bits = 0
            im_bits = 0

        switch_bits: dict[LinkSite, int] = {}
        ports = {
            LinkSite.IP_IP: (n_ip, n_ip),
            LinkSite.IP_DP: (n_ip, n_dp),
            LinkSite.IP_IM: (n_ip, n_im),
            LinkSite.DP_DM: (n_dp, n_dm),
            LinkSite.DP_DP: (n_dp, n_dp),
        }
        for site in LINK_SITES:
            kind = signature.link(site).kind
            if kind is not LinkKind.SWITCHED:
                continue  # direct wiring has nothing to configure
            model = self._switch_model(site, kind)
            if model is None:
                continue
            inputs, outputs = ports[site]
            switch_bits[site] = model.config_bits(inputs, outputs)

        return ConfigBitsBreakdown(
            ip_bits=ip_bits,
            dp_bits=dp_bits,
            im_bits=im_bits,
            dm_bits=dm_bits,
            switch_bits=switch_bits,
        )

    def total(self, signature: Signature, *, n: int = 16) -> int:
        """Total Eq. 2 configuration bits for ``signature`` at size ``n``."""
        return self.breakdown(signature, n=n).total


def estimate_config_bits(
    signature: Signature, *, n: int = 16, model: ConfigBitsModel | None = None
) -> int:
    """Convenience one-shot Eq.-2 evaluation, in bits."""
    active = model if model is not None else ConfigBitsModel()
    return active.total(signature, n=n)
