"""Cost models for the taxonomy's connectivity switches.

Eq. 1 and Eq. 2 need, for every connectivity site, the silicon area and
the configuration-word width of the structure implementing it. The paper
distinguishes direct (``'-'``) connections — fixed wiring, no
configuration — from switched (``'x'``) connections through full or
limited crossbars, noting that "a full cross bar switch will require
more bits than a limited crossbar".

The models here are the standard mux-based estimates:

* a **full crossbar** with ``n`` inputs and ``m`` outputs is ``m``
  ``n``-to-1 multiplexers: area grows with ``n·m`` (times the datapath
  width), configuration needs ``m·ceil(log2(n+1))`` bits (the ``+1``
  reserves an "unconnected" code);
* a **limited crossbar** restricts each output to a window of ``w``
  candidate inputs (DRRA's 3-hop window, Matrix's length-4 bypass):
  area ``w·m``, configuration ``m·ceil(log2(w+1))``;
* a **shared bus** connects everything through one wire set with a
  per-port tristate driver and an arbiter;
* a **direct** link is fixed wiring: area proportional to port count,
  zero configuration bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.connectivity import LinkKind

__all__ = [
    "SwitchModel",
    "DirectLinkModel",
    "SharedBusModel",
    "FullCrossbarModel",
    "LimitedCrossbarModel",
    "default_switch_model",
]

#: Gate equivalents of one 2-to-1 mux bit (one GE ~ a NAND2; a mux2 is ~3).
_MUX2_GE_PER_BIT = 3.0
#: Gate equivalents per bit of fixed wiring buffer on a direct link.
_DIRECT_GE_PER_BIT = 0.5
#: Gate equivalents per bit of a tristate bus driver.
_BUS_DRIVER_GE_PER_BIT = 1.5
#: Gate equivalents per request line of a round-robin arbiter.
_ARBITER_GE_PER_PORT = 12.0


def _ceil_log2(value: int) -> int:
    """ceil(log2(value)) with the convention that values <= 1 cost 0 bits."""
    if value <= 1:
        return 0
    return int(math.ceil(math.log2(value)))


@dataclass(frozen=True, slots=True)
class SwitchModel:
    """Abstract cost model of one connectivity structure.

    Subclasses implement :meth:`area_ge` (gate equivalents) and
    :meth:`config_bits` as functions of the endpoint populations.
    ``width_bits`` is the datapath width carried by each port.
    """

    width_bits: int = 32

    def __post_init__(self) -> None:
        if self.width_bits <= 0:
            raise ValueError("datapath width must be positive")

    # -- interface ------------------------------------------------------

    def area_ge(self, inputs: int, outputs: int) -> float:
        """Area cost in gate equivalents (the Eq. 1 term)."""
        raise NotImplementedError

    def config_bits(self, inputs: int, outputs: int) -> int:
        """Configuration bits consumed (the Eq. 2 term)."""
        raise NotImplementedError

    @property
    def kind(self) -> LinkKind:
        """The link kind this model prices."""
        raise NotImplementedError

    # -- shared validation ----------------------------------------------

    @staticmethod
    def _check_ports(inputs: int, outputs: int) -> None:
        if inputs < 0 or outputs < 0:
            raise ValueError("port counts must be non-negative")


@dataclass(frozen=True, slots=True)
class DirectLinkModel(SwitchModel):
    """Fixed point-to-point wiring (the ``'-'`` separator).

    One buffered connection per output port; nothing to configure.
    """

    @property
    def kind(self) -> LinkKind:
        """The link kind this model prices."""
        return LinkKind.DIRECT

    def area_ge(self, inputs: int, outputs: int) -> float:
        """Area cost in gate equivalents (the Eq. 1 term)."""
        self._check_ports(inputs, outputs)
        return max(inputs, outputs) * self.width_bits * _DIRECT_GE_PER_BIT

    def config_bits(self, inputs: int, outputs: int) -> int:
        """Configuration bits consumed (the Eq. 2 term)."""
        self._check_ports(inputs, outputs)
        return 0


@dataclass(frozen=True, slots=True)
class SharedBusModel(SwitchModel):
    """A single shared bus with tristate drivers and a round-robin arbiter.

    Switched in the taxonomy sense (any input can reach any output), but
    serialised: only one transfer per cycle. Configuration selects the
    granted master per transaction, so the persistent configuration cost
    is the arbiter's grant register.
    """

    @property
    def kind(self) -> LinkKind:
        """The link kind this model prices."""
        return LinkKind.SWITCHED

    def area_ge(self, inputs: int, outputs: int) -> float:
        """Area cost in gate equivalents (the Eq. 1 term)."""
        self._check_ports(inputs, outputs)
        ports = inputs + outputs
        drivers = ports * self.width_bits * _BUS_DRIVER_GE_PER_BIT
        arbiter = inputs * _ARBITER_GE_PER_PORT
        return drivers + arbiter

    def config_bits(self, inputs: int, outputs: int) -> int:
        """Configuration bits consumed (the Eq. 2 term)."""
        self._check_ports(inputs, outputs)
        return _ceil_log2(inputs + 1)


@dataclass(frozen=True, slots=True)
class FullCrossbarModel(SwitchModel):
    """A full ``n×m`` crossbar: every output owns an ``n``-to-1 mux."""

    @property
    def kind(self) -> LinkKind:
        """The link kind this model prices."""
        return LinkKind.SWITCHED

    def area_ge(self, inputs: int, outputs: int) -> float:
        """Area cost in gate equivalents (the Eq. 1 term)."""
        self._check_ports(inputs, outputs)
        if inputs == 0 or outputs == 0:
            return 0.0
        # An n-to-1 mux needs (n-1) mux2 cells per bit; even the
        # degenerate 1-input switch keeps a gating cell per bit so a
        # crossbar never undercuts plain wire.
        mux_cells = max(inputs - 1, 1)
        return outputs * mux_cells * self.width_bits * _MUX2_GE_PER_BIT

    def config_bits(self, inputs: int, outputs: int) -> int:
        """Configuration bits consumed (the Eq. 2 term)."""
        self._check_ports(inputs, outputs)
        if inputs == 0 or outputs == 0:
            return 0
        return outputs * _ceil_log2(inputs + 1)


@dataclass(frozen=True, slots=True)
class LimitedCrossbarModel(SwitchModel):
    """A window-limited crossbar: each output sees only ``window`` inputs.

    Models DRRA's 3-hop sliding window and Matrix's nearest-neighbour +
    bypass fabrics. With ``window >= inputs`` it degenerates to the full
    crossbar.
    """

    window: int = 7

    def __post_init__(self) -> None:
        # Explicit base call: zero-arg super() is broken inside dataclasses
        # with slots=True (the decorator rebuilds the class).
        SwitchModel.__post_init__(self)
        if self.window <= 0:
            raise ValueError("window must be positive")

    @property
    def kind(self) -> LinkKind:
        """The link kind this model prices."""
        return LinkKind.SWITCHED

    def _effective_window(self, inputs: int) -> int:
        return min(self.window, inputs)

    def area_ge(self, inputs: int, outputs: int) -> float:
        """Area cost in gate equivalents (the Eq. 1 term)."""
        self._check_ports(inputs, outputs)
        if inputs == 0 or outputs == 0:
            return 0.0
        window = self._effective_window(inputs)
        mux_cells = max(window - 1, 1)  # same gating floor as the full crossbar
        return outputs * mux_cells * self.width_bits * _MUX2_GE_PER_BIT

    def config_bits(self, inputs: int, outputs: int) -> int:
        """Configuration bits consumed (the Eq. 2 term)."""
        self._check_ports(inputs, outputs)
        if inputs == 0 or outputs == 0:
            return 0
        window = self._effective_window(inputs)
        return outputs * _ceil_log2(window + 1)


def default_switch_model(kind: LinkKind, *, width_bits: int = 32) -> SwitchModel | None:
    """The default cost model for a link kind (``None`` for NONE).

    Direct links get :class:`DirectLinkModel`; switched links get the
    conservative :class:`FullCrossbarModel`, matching the paper's default
    reading of ``'x'`` as a full crossbar.
    """
    if kind is LinkKind.NONE:
        return None
    if kind is LinkKind.DIRECT:
        return DirectLinkModel(width_bits=width_bits)
    return FullCrossbarModel(width_bits=width_bits)
