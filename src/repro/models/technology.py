"""Technology-node parameters for area estimation.

The paper's Eq. 1 is structural: it composes per-component areas without
fixing units. To make the estimator concrete we express component areas
in *gate equivalents* (GE, the area of a 2-input NAND) and provide
technology nodes that translate GE into square micrometres. The defaults
are order-of-magnitude values for standard-cell logic; they are inputs
the user can replace, not claims of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TechnologyNode", "NODE_90NM", "NODE_65NM", "NODE_45NM", "NODE_28NM", "NODES"]


@dataclass(frozen=True, slots=True)
class TechnologyNode:
    """A manufacturing node with its gate-equivalent footprint.

    ``ge_area_um2`` is the silicon area of one gate equivalent;
    ``sram_bit_um2`` the area of one SRAM bit cell (memories are far
    denser than logic, so Eq. 1's memory terms use this instead).
    """

    name: str
    feature_nm: float
    ge_area_um2: float
    sram_bit_um2: float

    def __post_init__(self) -> None:
        if self.feature_nm <= 0:
            raise ValueError("feature size must be positive")
        if self.ge_area_um2 <= 0 or self.sram_bit_um2 <= 0:
            raise ValueError("area parameters must be positive")

    def logic_area(self, gate_equivalents: float) -> float:
        """Area in µm² of a logic block of the given GE count."""
        if gate_equivalents < 0:
            raise ValueError("gate equivalents must be non-negative")
        return gate_equivalents * self.ge_area_um2

    def memory_area(self, bits: float) -> float:
        """Area in µm² of an SRAM of the given bit count."""
        if bits < 0:
            raise ValueError("bit count must be non-negative")
        return bits * self.sram_bit_um2

    def scaled(self, target_feature_nm: float) -> "TechnologyNode":
        """Classical (Dennard) area scaling to another feature size.

        Area scales with the square of the feature-size ratio. Useful for
        quick what-if estimates at nodes not in the built-in table.
        """
        if target_feature_nm <= 0:
            raise ValueError("target feature size must be positive")
        ratio = (target_feature_nm / self.feature_nm) ** 2
        return TechnologyNode(
            name=f"{target_feature_nm:g}nm(scaled)",
            feature_nm=target_feature_nm,
            ge_area_um2=self.ge_area_um2 * ratio,
            sram_bit_um2=self.sram_bit_um2 * ratio,
        )


#: Representative nodes (order-of-magnitude standard-cell figures).
NODE_90NM = TechnologyNode("90nm", 90.0, 4.4, 1.0)
NODE_65NM = TechnologyNode("65nm", 65.0, 2.1, 0.52)
NODE_45NM = TechnologyNode("45nm", 45.0, 1.1, 0.25)
NODE_28NM = TechnologyNode("28nm", 28.0, 0.49, 0.12)

NODES: dict[str, TechnologyNode] = {
    node.name: node for node in (NODE_90NM, NODE_65NM, NODE_45NM, NODE_28NM)
}
