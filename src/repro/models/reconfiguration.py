"""Reconfiguration-overhead model: turning Eq.-2 bits into time and energy.

The paper's flexibility/overhead trade-off (§III-B) speaks of
"reconfiguration overhead in terms of configuration bits and routing
resources". Bits become *latency* once a configuration port's bandwidth
is fixed, and *energy* once the cost of writing a configuration bit is
fixed; this module provides that conversion plus the break-even
analysis a designer actually runs: how much work must a configuration
amortise before reconfiguring was worth it?
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.signature import Signature
from repro.models.configbits import ConfigBitsModel

__all__ = ["ReconfigurationPort", "ReconfigurationCost", "ReconfigurationModel"]


@dataclass(frozen=True, slots=True)
class ReconfigurationPort:
    """The configuration interface: how fast and at what energy bits load."""

    bandwidth_bits_per_cycle: int = 32
    write_energy_pj_per_bit: float = 1.2

    def __post_init__(self) -> None:
        if self.bandwidth_bits_per_cycle <= 0:
            raise ValueError("configuration bandwidth must be positive")
        if self.write_energy_pj_per_bit < 0:
            raise ValueError("write energy must be non-negative")


@dataclass(frozen=True, slots=True)
class ReconfigurationCost:
    """One reconfiguration event, quantified."""

    config_bits: int
    cycles: int
    energy_pj: float

    def amortisation_ops(self, *, useful_op_cycles: float = 1.0) -> float:
        """Operations of useful work equal in cycles to the reload.

        The break-even question: a configuration that will execute fewer
        operations than this before being replaced spends more time
        reconfiguring than computing.
        """
        if useful_op_cycles <= 0:
            raise ValueError("useful_op_cycles must be positive")
        return self.cycles / useful_op_cycles


@dataclass(frozen=True)
class ReconfigurationModel:
    """Eq.-2 bits -> reload latency/energy for a taxonomy class."""

    port: ReconfigurationPort = field(default_factory=ReconfigurationPort)
    config_model: ConfigBitsModel = field(default_factory=ConfigBitsModel)

    def cost(self, signature: Signature, *, n: int = 16) -> ReconfigurationCost:
        """Price a full reconfiguration of ``signature``: bits, cycles and energy."""
        bits = self.config_model.total(signature, n=n)
        cycles = -(-bits // self.port.bandwidth_bits_per_cycle)  # ceil
        return ReconfigurationCost(
            config_bits=bits,
            cycles=cycles,
            energy_pj=bits * self.port.write_energy_pj_per_bit,
        )

    def break_even_table(
        self,
        signatures: "dict[str, Signature]",
        *,
        n: int = 16,
        useful_op_cycles: float = 1.0,
    ) -> dict[str, float]:
        """Per-class amortisation thresholds (ops before reconfig pays)."""
        return {
            name: self.cost(sig, n=n).amortisation_ops(
                useful_op_cycles=useful_op_cycles
            )
            for name, sig in signatures.items()
        }
