"""Process-local metrics: counters, gauges and fixed-bucket histograms.

Where :mod:`repro.obs.trace` answers *where did this run's time go*,
metrics answer *how much work has this process done so far*: ModelCache
hits and misses, sweep points evaluated, machine cycles retired. They
are always on — an increment is one integer add, cheap enough that no
enable flag is needed — and process-local: worker processes spawned by
the sweep engine accumulate into their own registries, so the parent's
numbers cover exactly the work the parent executed.

    >>> from repro.obs.metrics import MetricsRegistry
    >>> registry = MetricsRegistry()
    >>> hits = registry.counter("demo.hits", help="cache hits")
    >>> hits.inc()
    >>> hits.inc(2)
    >>> hits.value
    3
    >>> latency = registry.histogram("demo.wait_s", boundaries=(0.1, 1.0))
    >>> latency.observe(0.05)
    >>> latency.observe(3.0)
    >>> latency.bucket_counts
    (1, 0, 1)

:data:`REGISTRY` is the shared process-wide instance; the CLI's
``repro-taxonomy metrics`` subcommand runs a calibration workload and
prints its rendering.
"""

from __future__ import annotations

import bisect
from threading import Lock
from typing import Any, Iterator

__all__ = [
    "DURATION_BUCKETS_S",
    "PROMETHEUS_PREFIX",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "registry",
    "render_prometheus",
]

#: Default histogram boundaries for wall-clock durations, in seconds —
#: spanning a 100 µs sweep point to a multi-second report build.
DURATION_BUCKETS_S: tuple[float, ...] = (
    0.0001,
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0

    def inc(self, amount: "int | float" = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: increment must be >= 0, got {amount}")
        self._value += amount

    @property
    def value(self) -> "int | float":
        """The accumulated count."""
        return self._value

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready state: type, help and current value."""
        return {"type": "counter", "help": self.help, "value": self._value}


class Gauge:
    """A value that can go up and down (queue depth, cache size)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: "int | float") -> None:
        """Replace the gauge's value."""
        self._value = value

    def inc(self, amount: "int | float" = 1) -> None:
        """Shift the gauge by ``amount`` (may be negative)."""
        self._value += amount

    @property
    def value(self) -> "int | float":
        """The gauge's current value."""
        return self._value

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready state: type, help and current value."""
        return {"type": "gauge", "help": self.help, "value": self._value}


class Histogram:
    """Observations bucketed against fixed, sorted boundaries.

    ``boundaries=(b0, .., bk)`` yields ``k + 2`` buckets: ``<= b0``,
    ``(b0, b1]`` .. and a final overflow bucket ``> bk``. Boundaries are
    fixed at construction — merging histograms across processes or runs
    is then a plain element-wise sum.
    """

    __slots__ = ("name", "help", "boundaries", "_counts", "_total", "_count")

    def __init__(self, name: str, boundaries: "tuple[float, ...]", help: str = ""):
        if not boundaries:
            raise ValueError(f"histogram {name}: at least one bucket boundary is required")
        ordered = tuple(float(b) for b in boundaries)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"histogram {name}: boundaries must be strictly increasing, got {boundaries}"
            )
        self.name = name
        self.help = help
        self.boundaries = ordered
        self._counts = [0] * (len(ordered) + 1)
        self._total = 0.0
        self._count = 0

    def observe(self, value: "int | float") -> None:
        """Record one observation."""
        self._counts[bisect.bisect_left(self.boundaries, value)] += 1
        self._total += value
        self._count += 1

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of all observed values."""
        return self._total

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 before any observation)."""
        return self._total / self._count if self._count else 0.0

    @property
    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket observation counts, overflow bucket last."""
        return tuple(self._counts)

    def merge(self, buckets: "list[int]", count: int, total: float) -> None:
        """Fold another histogram's state into this one, element-wise.

        The other histogram must share this one's boundaries (that is
        the invariant fixed boundaries buy); ``buckets``/``count``/
        ``total`` are the fields of its :meth:`snapshot`. Used by the
        serve fleet to aggregate per-worker registries into one
        exposition.
        """
        if len(buckets) != len(self._counts):
            raise ValueError(
                f"histogram {self.name}: cannot merge {len(buckets)} buckets "
                f"into {len(self._counts)}"
            )
        self._counts = [mine + int(theirs) for mine, theirs in zip(self._counts, buckets)]
        self._count += int(count)
        self._total += float(total)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready state: boundaries, bucket counts, count/total/mean."""
        return {
            "type": "histogram",
            "help": self.help,
            "boundaries": list(self.boundaries),
            "buckets": list(self._counts),
            "count": self._count,
            "total": self._total,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named metrics, get-or-create, one namespace per process.

    Lookups are idempotent: asking twice for the same name returns the
    same instrument, and asking with a conflicting type (or, for
    histograms, conflicting boundaries) raises ``ValueError`` — silent
    redefinition is how dashboards lie.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, "Counter | Gauge | Histogram"] = {}
        self._lock = Lock()

    def counter(self, name: str, *, help: str = "") -> Counter:
        """Get or create the counter called ``name``."""
        return self._get_or_create(Counter, name, help=help)

    def gauge(self, name: str, *, help: str = "") -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get_or_create(Gauge, name, help=help)

    def histogram(
        self,
        name: str,
        *,
        boundaries: "tuple[float, ...]" = DURATION_BUCKETS_S,
        help: str = "",
    ) -> Histogram:
        """Get or create the histogram called ``name``.

        Re-requesting an existing histogram with different boundaries
        raises — bucket layouts are part of the metric's identity.
        """
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__.lower()}, not histogram"
                    )
                if existing.boundaries != tuple(float(b) for b in boundaries):
                    raise ValueError(
                        f"histogram {name!r} already registered with boundaries "
                        f"{existing.boundaries}, not {boundaries}"
                    )
                return existing
            created = Histogram(name, boundaries, help=help)
            self._metrics[name] = created
            return created

    def _get_or_create(self, kind: type, name: str, *, help: str) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__.lower()}, not {kind.__name__.lower()}"
                    )
                return existing
            created = kind(name, help=help)
            self._metrics[name] = created
            return created

    def get(self, name: str) -> "Counter | Gauge | Histogram":
        """The registered metric called ``name``; KeyError when absent."""
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> "Iterator[str]":
        return iter(sorted(self._metrics))

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Every metric's JSON-ready state, keyed by name, sorted."""
        with self._lock:
            return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}

    def render(self) -> str:
        """Fixed-width text report: one line per metric, sorted by name."""
        rows = []
        for name, state in self.snapshot().items():
            if state["type"] == "histogram":
                detail = (
                    f"count={state['count']} total={state['total']:.6g} "
                    f"mean={state['mean']:.6g} buckets={state['buckets']}"
                )
            else:
                value = state["value"]
                detail = f"value={value:.6g}" if isinstance(value, float) else f"value={value}"
            rows.append((name, state["type"], detail, state["help"]))
        if not rows:
            return "(no metrics recorded)"
        name_width = max(len(row[0]) for row in rows)
        type_width = max(len(row[1]) for row in rows)
        lines = []
        for name, kind, detail, help_text in rows:
            line = f"{name.ljust(name_width)}  {kind.ljust(type_width)}  {detail}"
            if help_text:
                line += f"  # {help_text}"
            lines.append(line)
        return "\n".join(lines)

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format.

        This is the single source of truth for the format: both the
        ``/v1/metrics`` endpoint of :mod:`repro.serve` and the
        ``repro-taxonomy metrics --prometheus`` subcommand call it, and
        a golden-file test pins the exposition down byte-for-byte.
        """
        return render_prometheus(self)

    def reset(self) -> None:
        """Forget every metric (primarily for tests)."""
        with self._lock:
            self._metrics.clear()


#: Prefix applied to every metric name in the Prometheus exposition.
PROMETHEUS_PREFIX = "repro_"


def _prometheus_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus grammar."""
    sanitised = "".join(
        ch if ch.isascii() and (ch.isalnum() or ch == "_") else "_" for ch in name
    )
    return PROMETHEUS_PREFIX + sanitised


def _prometheus_value(value: "int | float") -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _prometheus_help(text: str) -> str:
    """Escape a HELP string per the exposition format rules."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_prometheus(registry: "MetricsRegistry | None" = None) -> str:
    """Render a registry (default: the process-wide one) as Prometheus text.

    Counters gain the conventional ``_total`` suffix, histograms expand
    into cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``,
    and metrics are emitted in sorted name order so the exposition is
    deterministic for a given registry state.

        >>> demo = MetricsRegistry()
        >>> demo.counter("demo.hits", help="cache hits").inc(3)
        >>> print(render_prometheus(demo))
        # HELP repro_demo_hits_total cache hits
        # TYPE repro_demo_hits_total counter
        repro_demo_hits_total 3
        <BLANKLINE>
    """
    source = registry if registry is not None else REGISTRY
    lines: list[str] = []
    for name, state in source.snapshot().items():
        kind = state["type"]
        base = _prometheus_name(name)
        if kind == "counter":
            base += "_total"
        help_text = _prometheus_help(state["help"])
        if help_text:
            lines.append(f"# HELP {base} {help_text}")
        lines.append(f"# TYPE {base} {kind}")
        if kind == "histogram":
            cumulative = 0
            for boundary, count in zip(state["boundaries"], state["buckets"]):
                cumulative += count
                lines.append(
                    f'{base}_bucket{{le="{_prometheus_value(float(boundary))}"}} {cumulative}'
                )
            lines.append(f'{base}_bucket{{le="+Inf"}} {state["count"]}')
            lines.append(f"{base}_sum {_prometheus_value(state['total'])}")
            lines.append(f"{base}_count {state['count']}")
        else:
            lines.append(f"{base} {_prometheus_value(state['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


#: The process-wide registry all built-in instrumentation reports to.
REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` instance."""
    return REGISTRY
