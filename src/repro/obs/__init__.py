"""Observability: tracing, metrics and profiling for every subsystem.

``repro.obs`` is the measurement base the ROADMAP's performance work
stands on. It is dependency-free and has three layers, cheapest first:

* :mod:`repro.obs.metrics` — always-on process-local counters, gauges
  and fixed-bucket histograms (:data:`REGISTRY`). The ModelCache, the
  sweep engine and every machine ``run()`` report here; the CLI prints
  the registry via ``repro-taxonomy metrics``.
* :mod:`repro.obs.trace` — an opt-in hierarchical span tracer
  (disabled by default, one-flag-check cheap when off). The analyses,
  the sweep engine, machine run loops and the fault runtime all carry
  spans/events; the CLI records a run with ``--trace FILE`` on ``dse``,
  ``faults``, ``costs`` and ``report``.
* :mod:`repro.obs.profile` — cProfile/tracemalloc wrappers that attach
  to any call and emit deterministic top-N tables into ``artifacts/``
  (``--profile`` on the sweep subcommands).

See ``docs/observability.md`` for the guided tour.
"""

from repro.obs.metrics import (
    DURATION_BUCKETS_S,
    PROMETHEUS_PREFIX,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    registry,
    render_prometheus,
)
from repro.obs.profile import ProfileReport, Profiler, profile_call
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    Span,
    SpanEvent,
    Tracer,
    add_event,
    current_span,
    disable,
    enable,
    enabled,
    reset,
    span,
    tracer,
    validate_trace,
)

__all__ = [
    # metrics
    "DURATION_BUCKETS_S",
    "PROMETHEUS_PREFIX",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "registry",
    "render_prometheus",
    # profiling
    "ProfileReport",
    "Profiler",
    "profile_call",
    # tracing
    "TRACE_SCHEMA_VERSION",
    "Span",
    "SpanEvent",
    "Tracer",
    "add_event",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "reset",
    "span",
    "tracer",
    "validate_trace",
]
