"""Hierarchical span tracing — *where the wall-clock goes*, as a tree.

A **span** is one named, timed region of work: a machine ``run()``, a
sweep, one sweep point, an artifact render. Spans nest — entering a span
inside another makes it a child — so a traced CLI invocation yields a
tree whose leaves are the units of compute the analyses actually paid
for. Each span carries

* monotonic start/stop timestamps (:func:`time.perf_counter`, never the
  wall clock, so durations are immune to clock steps);
* free-form **attributes** (``machine="IAP-IV"``, ``points=25``);
* point-in-time **events** (a fault landing, a policy decision), each
  with its own offset from the span start.

The global tracer is **disabled by default** and every instrumentation
site in this package is guarded so the disabled cost is one attribute
check — the ``bench_obs_overhead`` benchmark holds that to < 5% of the
sweep engine's median. Enable it around a region of interest:

    >>> from repro.obs import trace
    >>> trace.reset()
    >>> trace.enable()
    >>> with trace.span("outer", label="demo"):
    ...     with trace.span("inner"):
    ...         trace.add_event("milestone", step=1)
    >>> trace.disable()
    >>> root = trace.tracer().roots[0]
    >>> root.name, root.children[0].name
    ('outer', 'inner')
    >>> root.children[0].events[0].name
    'milestone'

Exporters: :meth:`Tracer.to_dict` (the JSON schema, checked by
:func:`validate_trace`), :meth:`Tracer.write_json` and
:meth:`Tracer.render_text` (a flat indented listing for terminals).
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "SpanEvent",
    "Span",
    "Tracer",
    "tracer",
    "span",
    "add_event",
    "current_span",
    "enable",
    "disable",
    "enabled",
    "reset",
    "validate_trace",
]

#: Version stamped into every exported trace payload.
TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True, slots=True)
class SpanEvent:
    """A point-in-time annotation inside a span (no duration)."""

    name: str
    t_s: float
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """The event as a JSON-ready mapping."""
        return {"name": self.name, "t_s": self.t_s, "attributes": dict(self.attributes)}


class Span:
    """One named, timed region of work in the trace tree."""

    __slots__ = ("name", "start_s", "end_s", "attributes", "events", "children")

    def __init__(self, name: str, start_s: float, attributes: "dict[str, Any] | None" = None):
        if not name:
            raise ValueError("span name must be non-empty")
        self.name = name
        self.start_s = start_s
        self.end_s: "float | None" = None
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.events: list[SpanEvent] = []
        self.children: list[Span] = []

    @property
    def duration_s(self) -> float:
        """Elapsed seconds; 0.0 while the span is still open."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute on this span."""
        self.attributes[key] = value

    def set_attributes(self, **attributes: Any) -> None:
        """Attach several attributes at once."""
        self.attributes.update(attributes)

    def add_event(self, name: str, **attributes: Any) -> SpanEvent:
        """Record a point-in-time event at the current monotonic offset."""
        event = SpanEvent(
            name=name, t_s=time.perf_counter() - self.start_s, attributes=attributes
        )
        self.events.append(event)
        return event

    def walk(self) -> "Iterator[Span]":
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        """The span subtree as a JSON-ready mapping (the export schema)."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "events": [event.to_dict() for event in self.events],
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, duration_s={self.duration_s:.6f})"


class _NoopSpan:
    """The do-nothing span handed out while tracing is disabled.

    It supports the same surface as :class:`Span` plus the context
    protocol, so instrumentation sites never need to branch on state.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        """Discard the attribute (tracing is off)."""

    def set_attributes(self, **attributes: Any) -> None:
        """Discard the attributes (tracing is off)."""

    def add_event(self, name: str, **attributes: Any) -> None:
        """Discard the event (tracing is off)."""


#: Shared no-op instance: ``span()`` while disabled allocates nothing.
NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager binding one live :class:`Span` to a tracer stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, owner: "Tracer", name: str, attributes: dict[str, Any]):
        self._tracer = owner
        self._span = Span(name, time.perf_counter(), attributes)

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self._span.end_s = time.perf_counter()
        if exc_type is not None:
            self._span.attributes.setdefault("error", getattr(exc_type, "__name__", str(exc_type)))
        self._tracer._pop(self._span)


class Tracer:
    """A span collector: an enable flag, a per-thread stack, root spans.

    Every thread gets its own span stack (nesting is a per-thread
    notion) while finished root spans from all threads accumulate in
    :attr:`roots` under a lock, in completion order.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- span lifecycle --------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Any:
        """Open a span context; a shared no-op when tracing is disabled."""
        if not self.enabled:
            return NOOP_SPAN
        return _ActiveSpan(self, name, attributes)

    def add_event(self, name: str, **attributes: Any) -> None:
        """Record an event on the innermost open span, if any."""
        if not self.enabled:
            return
        current = self.current_span()
        if current is not None:
            current.add_event(name, **attributes)

    def current_span(self) -> "Span | None":
        """The innermost open span on this thread, or None."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, item: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(item)

    def _pop(self, item: Span) -> None:
        stack = self._local.stack
        stack.pop()
        if stack:
            stack[-1].children.append(item)
        else:
            with self._lock:
                self.roots.append(item)

    # -- state -----------------------------------------------------------

    def enable(self) -> None:
        """Start recording spans."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; collected spans remain available for export."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every collected span and this thread's open stack."""
        with self._lock:
            self.roots.clear()
        self._local.stack = []

    # -- export ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The whole trace as the versioned JSON export payload."""
        with self._lock:
            spans = [root.to_dict() for root in self.roots]
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "generated_by": "repro.obs",
            "spans": spans,
        }

    def write_json(self, path: "str | os.PathLike[str]") -> str:
        """Write the trace to ``path`` as indented JSON; returns the path."""
        payload = self.to_dict()
        directory = os.path.dirname(os.fspath(path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)
            handle.write("\n")
        return os.fspath(path)

    def render_text(self) -> str:
        """Flat indented listing: one line per span, events inlined."""
        out = io.StringIO()
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            self._render_span(out, root, depth=0)
        text = out.getvalue().rstrip("\n")
        return text if text else "(no spans recorded)"

    def _render_span(self, out: io.StringIO, item: Span, *, depth: int) -> None:
        indent = "  " * depth
        attrs = " ".join(f"{key}={value}" for key, value in sorted(item.attributes.items()))
        suffix = f"  [{attrs}]" if attrs else ""
        out.write(f"{indent}{item.name}  {item.duration_s * 1e3:.3f} ms{suffix}\n")
        for event in item.events:
            out.write(f"{indent}  @ {event.t_s * 1e3:.3f} ms  {event.name}\n")
        for child in item.children:
            self._render_span(out, child, depth=depth + 1)


#: The process-wide tracer every instrumentation site reports to.
GLOBAL_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-wide :class:`Tracer` instance."""
    return GLOBAL_TRACER


def span(name: str, **attributes: Any) -> Any:
    """Open a span on the global tracer (no-op while disabled)."""
    if not GLOBAL_TRACER.enabled:
        return NOOP_SPAN
    return _ActiveSpan(GLOBAL_TRACER, name, attributes)


def add_event(name: str, **attributes: Any) -> None:
    """Record an event on the global tracer's innermost open span."""
    if GLOBAL_TRACER.enabled:
        GLOBAL_TRACER.add_event(name, **attributes)


def current_span() -> "Span | None":
    """The global tracer's innermost open span on this thread."""
    return GLOBAL_TRACER.current_span()


def enable() -> None:
    """Enable the global tracer."""
    GLOBAL_TRACER.enable()


def disable() -> None:
    """Disable the global tracer (already-collected spans survive)."""
    GLOBAL_TRACER.disable()


def enabled() -> bool:
    """Whether the global tracer is currently recording."""
    return GLOBAL_TRACER.enabled


def reset() -> None:
    """Clear the global tracer's collected spans."""
    GLOBAL_TRACER.reset()


def validate_trace(payload: Any) -> None:
    """Check an exported trace against the schema; raise ValueError if bad.

    The schema is deliberately small: a versioned envelope holding a
    list of span trees whose every node has a name, non-negative
    duration, attribute mapping, event list and child list. Tests (and
    downstream consumers) call this instead of hand-rolling asserts.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"trace payload must be a dict, got {type(payload).__name__}")
    if payload.get("schema") != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema {payload.get('schema')!r}; "
            f"expected {TRACE_SCHEMA_VERSION}"
        )
    spans = payload.get("spans")
    if not isinstance(spans, list):
        raise ValueError("trace payload must carry a 'spans' list")
    for item in spans:
        _validate_span(item, path="spans")


def _validate_span(item: Any, *, path: str) -> None:
    if not isinstance(item, dict):
        raise ValueError(f"{path}: span must be a dict, got {type(item).__name__}")
    name = item.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"{path}: span name must be a non-empty string")
    duration = item.get("duration_s")
    if not isinstance(duration, (int, float)) or duration < 0:
        raise ValueError(f"{path}.{name}: duration_s must be a non-negative number")
    if not isinstance(item.get("attributes"), dict):
        raise ValueError(f"{path}.{name}: attributes must be a mapping")
    events = item.get("events")
    if not isinstance(events, list):
        raise ValueError(f"{path}.{name}: events must be a list")
    for event in events:
        if not isinstance(event, dict) or not event.get("name"):
            raise ValueError(f"{path}.{name}: malformed event {event!r}")
    children = item.get("children")
    if not isinstance(children, list):
        raise ValueError(f"{path}.{name}: children must be a list")
    for child in children:
        _validate_span(child, path=f"{path}.{name}")
