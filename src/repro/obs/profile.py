"""Profiling hooks: cProfile and tracemalloc wrappers for any sweep.

Tracing tells you *which* span is slow; profiling tells you *why* — the
Python functions and allocation sites inside it. :class:`Profiler` is a
context manager that drives :mod:`cProfile` (always) and
:mod:`tracemalloc` (opt-in, it costs real memory and time) around any
region, then renders deterministic top-N tables and writes them under
``artifacts/``:

    >>> from repro.obs.profile import Profiler
    >>> with Profiler("demo", top=5) as prof:
    ...     _ = sorted(range(1000))
    >>> report = prof.report
    >>> report.label
    'demo'
    >>> "ncalls" in report.render()
    True

The CLI exposes this as ``--profile`` on the sweep subcommands
(``dse``, ``costs``, ``faults``): the whole command runs under the
profiler and the table lands in ``artifacts/profile_<command>.txt``.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["ProfileReport", "Profiler", "profile_call"]


@dataclass(frozen=True, slots=True)
class ProfileReport:
    """The rendered outcome of one profiled region."""

    label: str
    wall_s: float
    top: int
    stats_text: str
    memory_text: "str | None" = None

    def render(self) -> str:
        """The full human-readable report (CPU table, then memory)."""
        lines = [
            f"profile: {self.label}",
            f"wall time: {self.wall_s:.4f} s",
            "",
            f"top {self.top} functions by cumulative time:",
            self.stats_text.rstrip(),
        ]
        if self.memory_text is not None:
            lines += ["", f"top {self.top} allocation sites:", self.memory_text.rstrip()]
        return "\n".join(lines) + "\n"

    def write(self, directory: "str | os.PathLike[str]" = "artifacts") -> str:
        """Write the report to ``<directory>/profile_<label>.txt``."""
        os.makedirs(directory, exist_ok=True)
        safe = "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in self.label)
        path = os.path.join(os.fspath(directory), f"profile_{safe}.txt")
        with open(path, "w") as handle:
            handle.write(self.render())
        return path


class Profiler:
    """Context manager: profile a region, expose a :class:`ProfileReport`.

    ``memory=True`` additionally snapshots allocations via tracemalloc.
    If tracemalloc was already tracing (say, an outer profiler), this
    profiler leaves it running on exit rather than stopping the outer
    session's collection.
    """

    def __init__(self, label: str = "run", *, top: int = 20, memory: bool = False):
        if top < 1:
            raise ValueError(f"top must be >= 1, got {top}")
        self.label = label
        self.top = top
        self.memory = memory
        self.report: "ProfileReport | None" = None
        self._profile = cProfile.Profile()
        self._started_tracemalloc = False
        self._start_s = 0.0

    def __enter__(self) -> "Profiler":
        if self.memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._start_s = time.perf_counter()
        self._profile.enable()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self._profile.disable()
        wall_s = time.perf_counter() - self._start_s
        memory_text: "str | None" = None
        if self.memory:
            snapshot = tracemalloc.take_snapshot()
            if self._started_tracemalloc:
                tracemalloc.stop()
            memory_text = self._render_memory(snapshot)
        self.report = ProfileReport(
            label=self.label,
            wall_s=wall_s,
            top=self.top,
            stats_text=self._render_stats(),
            memory_text=memory_text,
        )

    def _render_stats(self) -> str:
        out = io.StringIO()
        stats = pstats.Stats(self._profile, stream=out)
        stats.sort_stats(pstats.SortKey.CUMULATIVE)
        stats.print_stats(self.top)
        return out.getvalue()

    def _render_memory(self, snapshot: "tracemalloc.Snapshot") -> str:
        entries = snapshot.statistics("lineno")[: self.top]
        if not entries:
            return "(no allocations recorded)"
        lines = []
        for stat in entries:
            frame = stat.traceback[0]
            lines.append(
                f"{stat.size / 1024:10.1f} KiB  {stat.count:8d} blocks  "
                f"{frame.filename}:{frame.lineno}"
            )
        return "\n".join(lines)


def profile_call(
    fn: "Callable[..., Any]",
    *args: Any,
    label: "str | None" = None,
    top: int = 20,
    memory: bool = False,
    **kwargs: Any,
) -> tuple[Any, ProfileReport]:
    """Run ``fn(*args, **kwargs)`` under a :class:`Profiler`.

    Returns ``(result, report)`` — the attachment point for profiling
    any sweep without restructuring it::

        result, report = profile_call(resilience_sweep, rates, n=64)
        print(report.render())
        report.write("artifacts")
    """
    chosen = label if label is not None else getattr(fn, "__name__", "call")
    with Profiler(chosen, top=top, memory=memory) as prof:
        result = fn(*args, **kwargs)
    assert prof.report is not None
    return result, prof.report
