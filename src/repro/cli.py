"""Command-line front end: regenerate any paper artifact from a shell.

::

    repro-taxonomy table1            # the 47-class extended taxonomy
    repro-taxonomy table2            # flexibility values per class
    repro-taxonomy table3            # the 25-architecture survey
    repro-taxonomy fig 7             # any of figures 1..7
    repro-taxonomy classify --ips 1 --dps 64 --ip-dp 1-64 \\
        --ip-im 1-1 --dp-dm 64-1 --dp-dp 64x64
    repro-taxonomy explain MorphoSys # survey entry + derivation
    repro-taxonomy dse --min-flexibility 4
    repro-taxonomy dse --trace trace.json   # span tree of the run
    repro-taxonomy costs --profile          # cProfile top-N to artifacts/
    repro-taxonomy metrics                  # counters after a calibration run
    repro-taxonomy serve --port 0           # hardened HTTP query service
    repro-taxonomy jobs submit --kind survey-costs --param n=32 --wait
    repro-taxonomy jobs status j-abc123     # poll a durable async job
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from repro.analysis.dse import Objective, Requirements, explore
from repro.core.classify import classify
from repro.core.errors import FabricError, FaultError, ReproError
from repro.core.signature import make_signature
from repro.registry.architectures import architecture
from repro.registry.survey import errata_report
from repro.reporting.figures import (
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
)
from repro.reporting.tables import render_table1, render_table2, render_table3

__all__ = ["main", "build_parser"]

_FIGURES = {
    1: render_fig1,
    2: render_fig2,
    3: render_fig3,
    4: render_fig4,
    5: render_fig5,
    6: render_fig6,
    7: render_fig7,
}


def build_parser() -> argparse.ArgumentParser:
    """The full ``repro-taxonomy`` argparse tree (also drives ``docs/cli.md``)."""
    parser = argparse.ArgumentParser(
        prog="repro-taxonomy",
        description=(
            "Extended Skillicorn taxonomy of massively parallel computer "
            "architectures (Shami & Hemani reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for table in ("table1", "table2", "table3"):
        table_parser = sub.add_parser(table, help=f"render {table}")
        table_parser.add_argument(
            "--markdown", action="store_true", help="Markdown layout"
        )

    fig_parser = sub.add_parser("fig", help="render a figure (1..7)")
    fig_parser.add_argument("number", type=int, choices=sorted(_FIGURES))

    classify_parser = sub.add_parser(
        "classify", help="classify an architecture from its structure"
    )
    classify_parser.add_argument("--ips", required=True)
    classify_parser.add_argument("--dps", required=True)
    classify_parser.add_argument("--ip-ip", default="none")
    classify_parser.add_argument("--ip-dp", default="none")
    classify_parser.add_argument("--ip-im", default="none")
    classify_parser.add_argument("--dp-dm", default="none")
    classify_parser.add_argument("--dp-dp", default="none")

    explain_parser = sub.add_parser(
        "explain", help="explain a surveyed architecture's classification"
    )
    explain_parser.add_argument("name")

    dse_parser = sub.add_parser(
        "dse", help="recommend a class for given requirements"
    )
    dse_parser.add_argument("--min-flexibility", type=int, default=0)
    dse_parser.add_argument("--max-area-ge", type=float, default=None)
    dse_parser.add_argument("--max-config-bits", type=int, default=None)
    dse_parser.add_argument("--n", type=int, default=16)
    dse_parser.add_argument(
        "--objective",
        choices=["config", "area", "flex-per-area"],
        default="config",
    )
    _add_jobs_argument(dse_parser)
    _add_resilience_arguments(dse_parser)
    _add_fabric_argument(dse_parser)
    _add_batch_kernel_argument(dse_parser)
    _add_trace_argument(dse_parser)
    _add_profile_argument(dse_parser)

    costs_parser = sub.add_parser(
        "costs", help="cost out the 25 surveyed architectures (Eq. 1/2 + energy)"
    )
    costs_parser.add_argument(
        "--n", type=int, default=16,
        help="design size for template (n/m/v) architectures (default 16)",
    )
    _add_jobs_argument(costs_parser)
    _add_resilience_arguments(costs_parser)
    _add_fabric_argument(costs_parser)
    _add_batch_kernel_argument(costs_parser)
    _add_trace_argument(costs_parser)
    _add_profile_argument(costs_parser)

    report_parser = sub.add_parser(
        "report", help="write every artifact (tables, figures, JSON) to a directory"
    )
    report_parser.add_argument("outdir")
    _add_trace_argument(report_parser)

    faults_parser = sub.add_parser(
        "faults",
        help="fault-injection demo + survey-wide resilience sweep",
    )
    faults_parser.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (default 0)"
    )
    faults_parser.add_argument(
        "--rate", type=float, default=0.05,
        help="per-resource fault rate for the machine demo (default 0.05)",
    )
    faults_parser.add_argument(
        "--rates", default=None,
        help="comma-separated sweep rates (default 0.01,0.02,0.05,0.1,0.2)",
    )
    faults_parser.add_argument(
        "--n", type=int, default=16, help="design size for the sweep"
    )
    faults_parser.add_argument(
        "--spares", type=int, default=0, help="spare PEs granted to remap"
    )
    faults_parser.add_argument(
        "--policy", default="remap",
        help="demo policy: fail-fast | retry[:N[:B]] | remap[:S] | degrade",
    )
    faults_parser.add_argument(
        "--out", default="artifacts/resilience.csv",
        help="CSV destination ('-' to skip writing)",
    )
    _add_jobs_argument(faults_parser)
    _add_resilience_arguments(faults_parser)
    _add_fabric_argument(faults_parser)
    _add_trace_argument(faults_parser)
    _add_profile_argument(faults_parser)

    worker_parser = sub.add_parser(
        "sweep-worker",
        help="serve sweep points to distributed coordinators (see --workers)",
    )
    worker_parser.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="bind address; port 0 picks an ephemeral port "
        "(default 127.0.0.1:0; the bound address is printed on stdout)",
    )
    worker_parser.add_argument(
        "--max-sessions", type=int, default=None, metavar="N",
        help="exit after serving N coordinator sessions (default: serve until killed)",
    )
    worker_parser.add_argument(
        "--throttle", type=float, default=0.0, metavar="S",
        help="sleep S seconds before each point evaluation — a chaos/tuning "
        "aid for rehearsing failure detection against fast sweeps (default 0)",
    )
    worker_parser.add_argument(
        "--heartbeat", type=float, default=None, metavar="S",
        help="override the coordinator-commanded heartbeat interval; setting "
        "it above the coordinator's lease TTL rehearses lease expiry",
    )

    metrics_parser = sub.add_parser(
        "metrics",
        help="run a calibration workload, then print the process metrics registry",
    )
    metrics_parser.add_argument(
        "--n", type=int, default=16,
        help="design size for the calibration sweeps (default 16)",
    )
    metrics_parser.add_argument(
        "--json", action="store_true",
        help="emit the registry snapshot as JSON instead of a table",
    )
    metrics_parser.add_argument(
        "--prometheus", action="store_true",
        help="emit the registry in Prometheus text exposition format "
        "(the same formatter the serve /v1/metrics endpoint uses)",
    )

    serve_parser = sub.add_parser(
        "serve",
        help="run the hardened HTTP query service (classify/costs/survey/metrics)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8080,
        help="bind port; 0 picks an ephemeral port (default 8080)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=4,
        help="worker threads executing taxonomy work (default 4)",
    )
    serve_parser.add_argument(
        "--processes", type=int, default=1,
        help="pre-fork worker processes sharing the port via SO_REUSEPORT "
        "(default 1 = single process)",
    )
    serve_parser.add_argument(
        "--queue-depth", type=int, default=16,
        help="requests allowed to wait for a worker before 503s (default 16)",
    )
    serve_parser.add_argument(
        "--keepalive-requests", type=int, default=100,
        help="requests served per keep-alive connection before it closes "
        "(default 100; 0 disables keep-alive)",
    )
    serve_parser.add_argument(
        "--keepalive-idle", type=float, default=5.0, metavar="S",
        help="idle seconds before a keep-alive connection is closed (default 5)",
    )
    serve_parser.add_argument(
        "--cache-size", type=int, default=1024,
        help="response-cache entries over /v1/classify and /v1/costs "
        "(default 1024; 0 disables caching)",
    )
    serve_parser.add_argument(
        "--deadline", type=float, default=2.0, metavar="S",
        help="per-request deadline in seconds (default 2.0)",
    )
    serve_parser.add_argument(
        "--rate", type=float, default=0.0,
        help="token-bucket rate limit in requests/s (default 0 = off)",
    )
    serve_parser.add_argument(
        "--burst", type=int, default=None,
        help="token-bucket burst capacity (default max(1, rate))",
    )
    serve_parser.add_argument(
        "--drain-deadline", type=float, default=5.0, metavar="S",
        help="seconds granted to in-flight requests on SIGTERM/SIGINT (default 5)",
    )
    serve_parser.add_argument(
        "--breaker-failures", type=int, default=5,
        help="consecutive failures that open the circuit breaker (default 5)",
    )
    serve_parser.add_argument(
        "--breaker-recovery", type=float, default=1.0, metavar="S",
        help="base breaker recovery interval in seconds (default 1.0)",
    )
    serve_parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="inject a seeded chaos FaultPlan into sweep-backed handlers",
    )
    serve_parser.add_argument(
        "--fault-rate", type=float, default=0.1,
        help="per-resource fault rate for --fault-seed (default 0.1)",
    )
    serve_parser.add_argument(
        "--log-requests", action="store_true",
        help="emit one access-log line per request to stderr",
    )
    serve_parser.add_argument(
        "--fabric-workers", default=None, metavar="HOST:PORT,...",
        help="route the sweep-backed survey endpoint over the distributed "
        "sweep fabric (comma-separated sweep-worker endpoints)",
    )
    serve_parser.add_argument(
        "--jobs-dir", default=None, metavar="DIR",
        help="enable the durable /v1/jobs subsystem, persisting job "
        "journals, checkpoints and result artifacts under DIR "
        "(default: disabled)",
    )
    serve_parser.add_argument(
        "--job-runners", type=int, default=2,
        help="async job-runner threads per process (default 2)",
    )
    serve_parser.add_argument(
        "--job-ttl", type=float, default=3600.0, metavar="S",
        help="seconds a finished job (and its result artifact) is kept "
        "before TTL garbage collection (default 3600)",
    )
    serve_parser.add_argument(
        "--job-poll", type=float, default=0.25, metavar="S",
        help="job-runner scan interval: queue polls, orphan adoption and "
        "GC all run on this cadence (default 0.25)",
    )
    _add_batch_kernel_argument(serve_parser)

    jobs_parser = sub.add_parser(
        "jobs",
        help="submit, poll and manage durable async jobs on a running server",
    )
    jobs_sub = jobs_parser.add_subparsers(dest="jobs_command", required=True)

    def _add_url(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--url", default="http://127.0.0.1:8080",
            help="base URL of the serving endpoint (default http://127.0.0.1:8080)",
        )

    jobs_submit = jobs_sub.add_parser(
        "submit", help="submit a job (POST /v1/jobs) and print its record"
    )
    _add_url(jobs_submit)
    jobs_submit.add_argument(
        "--kind", required=True,
        help="registered job kind (e.g. survey-costs, population)",
    )
    jobs_submit.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="one job parameter; repeat for several (e.g. --param n=32)",
    )
    jobs_submit.add_argument(
        "--idempotency-key", default=None, metavar="KEY",
        help="dedupe key: resubmitting with the same key returns the "
        "original job instead of running it again",
    )
    jobs_submit.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="per-job wall-clock deadline in seconds (server default 300)",
    )
    jobs_submit.add_argument(
        "--ttl", type=float, default=None, metavar="S",
        help="seconds the finished job outlives completion (server default)",
    )
    jobs_submit.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="execution attempts before a transient failure turns permanent",
    )
    jobs_submit.add_argument(
        "--wait", action="store_true",
        help="poll until the job reaches a terminal state, then print the "
        "result document on success",
    )
    jobs_submit.add_argument(
        "--poll-interval", type=float, default=0.2, metavar="S",
        help="seconds between --wait polls (default 0.2)",
    )

    jobs_status = jobs_sub.add_parser(
        "status", help="print one job's current record (GET /v1/jobs/ID)"
    )
    _add_url(jobs_status)
    jobs_status.add_argument("job_id")

    jobs_result = jobs_sub.add_parser(
        "result",
        help="print a succeeded job's result document, byte-identical to "
        "its on-disk artifact (GET /v1/jobs/ID/result)",
    )
    _add_url(jobs_result)
    jobs_result.add_argument("job_id")

    jobs_cancel = jobs_sub.add_parser(
        "cancel", help="request cooperative cancellation (DELETE /v1/jobs/ID)"
    )
    _add_url(jobs_cancel)
    jobs_cancel.add_argument("job_id")

    jobs_list = jobs_sub.add_parser(
        "list", help="list jobs, oldest first (GET /v1/jobs)"
    )
    _add_url(jobs_list)
    jobs_list.add_argument(
        "--state", default=None,
        choices=["queued", "running", "succeeded", "failed", "cancelled", "expired"],
        help="only jobs currently in this state",
    )
    jobs_list.add_argument(
        "--kind", default=None, help="only jobs of this kind"
    )

    populations_parser = sub.add_parser(
        "populations",
        help="generate or describe a seeded synthetic signature population",
    )
    populations_parser.add_argument(
        "action", choices=["generate", "describe"],
        help="generate: one canonical signature per line; "
        "describe: class-occupancy table for the same draw",
    )
    populations_parser.add_argument(
        "--size", type=int, default=1000,
        help="number of signatures to draw (default 1000)",
    )
    populations_parser.add_argument(
        "--seed", type=int, default=0,
        help="population seed; same seed, same population (default 0)",
    )
    populations_parser.add_argument(
        "--mode", choices=["stratified", "uniform"], default="stratified",
        help="stratified cycles the 47 class structures round-robin; "
        "uniform draws from all 406 valid structures (default stratified)",
    )
    populations_parser.add_argument(
        "--max-n", type=int, default=256, dest="max_n",
        help="largest concrete count decorated onto n/m/v placeholders "
        "(default 256)",
    )
    populations_parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the output to FILE instead of stdout",
    )

    sub.add_parser("errata", help="paper-vs-derived discrepancies")
    sub.add_parser("audit", help="run the library self-consistency audit")
    sub.add_parser("baselines", help="compare against Flynn and Skillicorn 1988")
    return parser


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--jobs`` flag: sweep parallelism, artifact-invariant.

    Results are byte-identical for every value — the sweep engine
    preserves input ordering — so ``--jobs`` trades wall-clock only.
    ``0`` means one worker per core.
    """
    parser.add_argument(
        "--jobs", type=_jobs_count, default=1, metavar="N",
        help="worker processes for the sweep (default 1 = serial, 0 = all cores)",
    )


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared sweep-resilience flags: ``--on-error``, ``--timeout``,
    ``--resume``.

    ``--on-error raise`` (the default) keeps the historical fail-fast
    behaviour and byte-identical artifacts; ``skip`` drops failing
    points from the output, ``retry`` re-attempts them on a seeded
    deterministic backoff schedule first. ``--timeout`` bounds each
    point attempt. ``--resume`` journals completed points under
    ``artifacts/checkpoints/`` (override with ``$REPRO_CHECKPOINT_DIR``)
    and skips them bit-identically on a re-run after an interrupt.
    """
    parser.add_argument(
        "--on-error", choices=["raise", "skip", "retry"], default="raise",
        dest="on_error",
        help="per-point failure policy: raise (default), skip, or retry with backoff",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-point deadline in seconds (over-budget points time out)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="journal completed sweep points and skip them on re-run",
    )


def _add_fabric_argument(parser: argparse.ArgumentParser) -> None:
    """The shared fabric flags: ``--workers``, ``--supervise``,
    ``--max-lease-size``, ``--rejoin-backoff``.

    ``--workers`` endpoints name running ``sweep-worker`` processes
    (coordinator dials workers). Results stay byte-identical to a local
    run; if no worker answers within the join deadline the sweep
    silently runs locally instead. With ``--resume`` the checkpoint
    journal shards by point index (``.s0of8`` … files) and merges
    deterministically. ``--supervise N`` launches (and respawns) N
    local workers for the duration of the command; the other two tune
    the elastic-membership scheduler — none of the three can change an
    artifact.
    """
    parser.add_argument(
        "--workers", default=None, metavar="HOST:PORT,...",
        help="distribute the sweep over these sweep-worker endpoints "
        "(default: run locally)",
    )
    parser.add_argument(
        "--supervise", type=int, default=0, metavar="N",
        help="launch N supervised local sweep workers for this command "
        "(crashed workers respawn on the same port; default 0)",
    )
    parser.add_argument(
        "--max-lease-size", type=int, default=None, metavar="N",
        dest="max_lease_size",
        help="let per-worker lease sizes autoscale up to N points from "
        "observed throughput (default: fixed at the base lease size)",
    )
    parser.add_argument(
        "--rejoin-backoff", type=float, default=None, metavar="S",
        dest="rejoin_backoff",
        help="base seconds before re-dialing a lost worker endpoint "
        "(exponential with jitter; 0 disables rejoin; default 0.25)",
    )


@contextlib.contextmanager
def _fabric_fleet(args: argparse.Namespace):
    """Resolve the fabric flags into ``(workers, fabric_options)``.

    Builds the :func:`~repro.perf.fabric_sweep` option dict from
    ``--max-lease-size`` / ``--rejoin-backoff``, and — under
    ``--supervise N`` — boots a :class:`~repro.perf.WorkerSupervisor`
    whose endpoints are appended to ``--workers`` for the duration of
    the command. The supervisor (and its workers) are torn down on the
    way out, success or not. Out-of-range flag values surface as
    :class:`~repro.core.errors.FabricError` so the CLI's usual
    ``error: ...`` / exit-2 contract holds.
    """
    options: "dict[str, object]" = {}
    if getattr(args, "max_lease_size", None) is not None:
        if args.max_lease_size < 1:
            raise FabricError(
                f"--max-lease-size must be >= 1, got {args.max_lease_size}"
            )
        options["max_lease_size"] = args.max_lease_size
    if getattr(args, "rejoin_backoff", None) is not None:
        from repro.perf.fabric import MembershipPolicy

        try:
            options["membership"] = MembershipPolicy(
                rejoin_backoff_s=args.rejoin_backoff
            )
        except ValueError as error:
            raise FabricError(f"--rejoin-backoff: {error}") from error
    workers = args.workers
    supervise = getattr(args, "supervise", 0)
    if not supervise:
        yield workers, options
        return
    from repro.perf.supervisor import WorkerSupervisor

    try:
        supervisor = WorkerSupervisor(supervise)
    except ValueError as error:
        raise FabricError(f"--supervise: {error}") from error
    endpoints = ",".join(supervisor.start())
    merged = f"{workers},{endpoints}" if workers else endpoints
    try:
        yield merged, options
    finally:
        supervisor.stop()


def _add_batch_kernel_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--batch-kernel/--no-batch-kernel`` flag.

    The vectorized :mod:`repro.core.batch` fast path is bit-exact, so
    the flag never changes any artifact — ``--no-batch-kernel`` exists
    for A/B debugging and for timing the scalar path.
    """
    parser.add_argument(
        "--batch-kernel",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="route single-job default-model evaluations through the "
        "vectorized batch kernel when NumPy is available "
        "(default on; output is byte-identical either way)",
    )


def _jobs_count(text: str) -> int:
    """Parse a ``--jobs`` value: any non-negative integer."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--trace FILE`` flag: record the run as a span tree.

    The tracer is enabled for the duration of the command and the
    collected spans are written to ``FILE`` as schema-versioned JSON
    (see :func:`repro.obs.validate_trace`). The note confirming the
    write goes to stderr so stdout artifacts stay byte-identical.
    """
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a span tree of this run and write it to FILE as JSON",
    )


def _add_profile_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--profile`` flag: cProfile the command into artifacts/."""
    parser.add_argument(
        "--profile", action="store_true",
        help="profile this command and write a top-N table to "
        "artifacts/profile_<command>.txt",
    )


def _run_metrics(args: argparse.Namespace) -> int:
    """The ``metrics`` subcommand: exercise the hot paths, dump counters.

    Metrics are process-local, so a fresh CLI process must generate some
    work before its registry says anything useful. The calibration
    workload touches each instrumented subsystem: the survey cost sweep
    twice (the second pass is all ModelCache hits), a short resilience
    sweep, and one machine run.
    """
    from repro.analysis.resilience import resilience_sweep
    from repro.analysis.survey_costs import evaluate_survey
    from repro.machine.array_processor import ArrayProcessor, ArraySubtype
    from repro.machine.kernels import simd_vector_add
    from repro.obs import REGISTRY

    evaluate_survey(default_n=args.n)
    evaluate_survey(default_n=args.n)  # repeat pass: pure cache hits
    resilience_sweep((0.01, 0.05, 0.2), n=args.n)
    lanes = max(args.n, 2)
    machine = ArrayProcessor(lanes, ArraySubtype.IAP_IV)
    machine.scatter(0, list(range(lanes * 8)))
    machine.scatter(64, list(range(lanes * 8)))
    machine.run(simd_vector_add(8))

    if args.prometheus:
        from repro.obs import render_prometheus

        print(render_prometheus(REGISTRY), end="")
    elif args.json:
        import json

        print(json.dumps(REGISTRY.snapshot(), indent=2))
    else:
        print(f"process metrics after the calibration workload (n={args.n}):")
        print()
        print(REGISTRY.render())
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: run the hardened HTTP query service.

    Blocks until SIGTERM/SIGINT, then drains in-flight requests within
    ``--drain-deadline`` seconds and exits 0 on a clean drain (1 if the
    deadline expired with work still in flight). ``--fault-seed`` arms a
    deterministic chaos plan against the sweep-backed handlers so the
    circuit breaker and ``/v1/readyz`` behaviour can be demonstrated
    without real failures.
    """
    from repro.faults import FaultPlan
    from repro.serve import BreakerPolicy, ServerConfig, run_server

    fault_plan = None
    if args.fault_seed is not None:
        fault_plan = FaultPlan.random(
            args.fault_seed, args.fault_rate, n_pes=64, horizon=64
        )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        processes=args.processes,
        queue_depth=args.queue_depth,
        deadline_s=args.deadline,
        rate=args.rate,
        burst=args.burst,
        drain_s=args.drain_deadline,
        breaker=BreakerPolicy(
            failure_threshold=args.breaker_failures,
            recovery_s=args.breaker_recovery,
        ),
        fault_plan=fault_plan,
        log_requests=args.log_requests,
        fabric_workers=args.fabric_workers,
        keepalive_requests=args.keepalive_requests,
        keepalive_idle_s=args.keepalive_idle,
        cache_size=args.cache_size,
        batch_kernel=args.batch_kernel,
        jobs_dir=args.jobs_dir,
        job_runners=args.job_runners,
        job_ttl_s=args.job_ttl,
        job_poll_s=args.job_poll,
    )
    return run_server(config)


def _jobs_http(url: str, *, method: str = "GET", payload: "dict | None" = None) -> bytes:
    """One request against the jobs API; HTTP errors become ReproError.

    The server's structured error body carries a user-facing message;
    surfacing it through :class:`~repro.core.errors.ReproError` reuses
    the CLI's ``error: ...`` / exit-2 contract.
    """
    import json
    import urllib.error
    import urllib.request

    body = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=body,
        method=method,
        headers={"Content-Type": "application/json"} if body else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.read()
    except urllib.error.HTTPError as error:
        raw = error.read()
        try:
            message = json.loads(raw)["error"]["message"]
        except (ValueError, KeyError, TypeError):
            message = raw.decode("utf-8", "replace").strip() or str(error)
        raise ReproError(f"{error.code}: {message}") from None
    except urllib.error.URLError as error:
        raise ReproError(f"cannot reach {url}: {error.reason}") from None


def _run_jobs(args: argparse.Namespace) -> int:
    """The ``jobs`` subcommand group: an HTTP client over ``/v1/jobs``.

    ``result`` writes the response body verbatim — the same bytes as
    the server's on-disk ``result.json`` artifact — so shell pipelines
    can diff results across runs and restarts.
    """
    import json
    import time as _time

    base = args.url.rstrip("/")
    if args.jobs_command == "submit":
        payload: "dict[str, object]" = {"kind": args.kind}
        for pair in args.param:
            key, sep, value = pair.partition("=")
            if not sep or not key:
                raise ReproError(f"--param must look like KEY=VALUE, got {pair!r}")
            payload[key] = value
        if args.idempotency_key is not None:
            payload["idempotency-key"] = args.idempotency_key
        if args.deadline is not None:
            payload["deadline"] = args.deadline
        if args.ttl is not None:
            payload["ttl"] = args.ttl
        if args.max_attempts is not None:
            payload["max-attempts"] = args.max_attempts
        raw = _jobs_http(f"{base}/v1/jobs", method="POST", payload=payload)
        submitted = json.loads(raw)
        job = submitted["job"]
        if not args.wait:
            sys.stdout.write(raw.decode("utf-8"))
            return 0
        job_id = job["id"]
        while job["state"] not in ("succeeded", "failed", "cancelled", "expired"):
            _time.sleep(args.poll_interval)
            job = json.loads(_jobs_http(f"{base}/v1/jobs/{job_id}"))["job"]
        if job["state"] != "succeeded":
            raise ReproError(
                f"job {job_id} ended in state {job['state']}"
                + (f": {job['error']}" if job.get("error") else "")
            )
        sys.stdout.buffer.write(_jobs_http(f"{base}/v1/jobs/{job_id}/result"))
        return 0
    if args.jobs_command == "status":
        sys.stdout.write(
            _jobs_http(f"{base}/v1/jobs/{args.job_id}").decode("utf-8")
        )
        return 0
    if args.jobs_command == "result":
        sys.stdout.buffer.write(_jobs_http(f"{base}/v1/jobs/{args.job_id}/result"))
        return 0
    if args.jobs_command == "cancel":
        sys.stdout.write(
            _jobs_http(f"{base}/v1/jobs/{args.job_id}", method="DELETE").decode("utf-8")
        )
        return 0
    query = []
    if args.state is not None:
        query.append(f"state={args.state}")
    if args.kind is not None:
        query.append(f"kind={args.kind}")
    suffix = ("?" + "&".join(query)) if query else ""
    sys.stdout.write(_jobs_http(f"{base}/v1/jobs{suffix}").decode("utf-8"))
    return 0


def _run_populations(args: argparse.Namespace) -> int:
    """The ``populations`` subcommand: seeded synthetic signature sets.

    ``generate`` prints one canonical signature per line — exactly the
    population a :class:`repro.core.batch.SignatureBatch` would be built
    from; ``describe`` prints the class-occupancy table for the same
    draw. Both are pure functions of (size, seed, mode, max-n):
    re-running a command reproduces its output byte-for-byte.
    """
    from repro.registry.populations import (
        PopulationSpec,
        describe_population,
        generate_signatures,
    )

    spec = PopulationSpec(
        size=args.size, seed=args.seed, mode=args.mode, max_n=args.max_n
    )
    signatures = generate_signatures(spec)
    if args.action == "describe":
        text = describe_population(signatures)
    else:
        text = "\n".join(signature.describe() for signature in signatures)
    if args.out and args.out != "-":
        from pathlib import Path

        path = Path(args.out)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _run_sweep_worker(args: argparse.Namespace) -> int:
    """The ``sweep-worker`` subcommand: one node of the sweep fabric.

    Binds the listen address (printing the resolved ``HOST:PORT`` so
    scripts can use ``--listen HOST:0``), marks the process via
    ``$REPRO_SWEEP_WORKER`` so sweep functions can detect worker
    context, and serves coordinator sessions until killed (or after
    ``--max-sessions``). The worker is stateless: all journalling
    happens coordinator-side, so killing a worker loses nothing.
    """
    import os

    from repro.perf.fabric import WORKER_ENV, FabricWorker, parse_endpoints

    ((host, port),) = parse_endpoints(args.listen)
    os.environ[WORKER_ENV] = "1"
    worker = FabricWorker(
        host,
        port,
        throttle_s=args.throttle,
        heartbeat_override_s=args.heartbeat,
        max_sessions=args.max_sessions,
    )
    bound_host, bound_port = worker.address
    print(f"worker listening on {bound_host}:{bound_port}", flush=True)
    try:
        sessions = worker.serve_forever()
    finally:
        worker.close()
    print(f"served {sessions} sweep session(s)", file=sys.stderr)
    return 0


def _run_faults(args: argparse.Namespace) -> int:
    """The ``faults`` subcommand: demo two classes, then sweep the survey.

    Everything below is a pure function of (seed, rate, n, spares,
    policy): running the same command twice produces byte-identical
    output — determinism is the point of seeded fault plans.
    """
    from repro.analysis.resilience import (
        DEFAULT_FAULT_RATES,
        render_resilience_table,
        resilience_csv_rows,
        resilience_sweep,
    )
    from repro.faults import FaultPlan, FaultPolicy
    from repro.machine.array_processor import ArrayProcessor, ArraySubtype
    from repro.machine.kernels import simd_vector_add
    from repro.models.area import redundancy_overhead

    policy = FaultPolicy.parse(args.policy)
    n_lanes = max(args.n, 2)
    plan = FaultPlan.random(args.seed, args.rate, n_pes=n_lanes)
    print(plan.describe())
    print()

    # The taxonomy's flexibility argument, executed: the same plan and
    # policy against the all-direct IAP-I and the all-switched IAP-IV.
    program = simd_vector_add(8)
    for subtype in (ArraySubtype.IAP_I, ArraySubtype.IAP_IV):
        machine = ArrayProcessor(n_lanes, subtype)
        machine.scatter(0, list(range(n_lanes * 8)))
        machine.scatter(64, list(range(n_lanes * 8)))
        try:
            result = machine.run(program, faults=plan, policy=policy)
        except ReproError as error:
            print(f"{subtype.label:8s} {policy.describe():12s} FAULT: {error}")
            continue
        print(
            f"{subtype.label:8s} {policy.describe():12s} "
            f"cycles={result.cycles} operations={result.operations} "
            f"remaps={result.stats.get('remap_events', 0)} "
            f"achieved={result.stats.get('achieved_parallelism', 0.0):.2f}/"
            f"{result.stats.get('nominal_parallelism', 0.0):.0f}"
        )
    print()

    if policy.spares or args.spares:
        spares = policy.spares or args.spares
        from repro.core.signature import make_signature

        iap_iv = make_signature(
            1, "n", ip_dp="1-n", ip_im="1-1", dp_dm="nxn", dp_dp="nxn"
        )
        print(redundancy_overhead(iap_iv, n=args.n, spares=spares).describe())
        print()

    if args.rates:
        try:
            rates = tuple(float(token) for token in args.rates.split(","))
        except ValueError:
            raise FaultError(
                f"--rates must be a comma-separated list of numbers, "
                f"got {args.rates!r}"
            ) from None
    else:
        rates = DEFAULT_FAULT_RATES
    with _fabric_fleet(args) as (workers, fabric_options):
        points = resilience_sweep(
            rates,
            n=args.n,
            spares=args.spares,
            jobs=args.jobs,
            on_error=args.on_error,
            timeout_s=args.timeout,
            resume=args.resume,
            workers=workers,
            fabric_options=fabric_options,
        )
    print(render_resilience_table(points))

    if args.out != "-":
        from repro.reporting.export import write_csv

        rows = resilience_csv_rows(points)
        write_csv(args.out, rows[0], rows[1:])
        print()
        print(f"wrote {args.out}")
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "table1":
        print(render_table1(markdown=args.markdown))
    elif args.command == "table2":
        print(render_table2(markdown=args.markdown))
    elif args.command == "table3":
        print(render_table3(markdown=args.markdown))
    elif args.command == "fig":
        print(_FIGURES[args.number]())
    elif args.command == "classify":
        signature = make_signature(
            args.ips,
            args.dps,
            ip_ip=args.ip_ip,
            ip_dp=args.ip_dp,
            ip_im=args.ip_im,
            dp_dm=args.dp_dm,
            dp_dp=args.dp_dp,
        )
        print(classify(signature).explain())
    elif args.command == "explain":
        record = architecture(args.name)
        print(f"{record.name} ({record.year}) — {record.family.value}")
        print(record.description)
        print()
        print(record.classification.explain())
    elif args.command == "dse":
        objective = {
            "config": Objective.CONFIG_BITS,
            "area": Objective.AREA,
            "flex-per-area": Objective.FLEXIBILITY_PER_AREA,
        }[args.objective]
        requirements = Requirements(
            min_flexibility=args.min_flexibility,
            max_area_ge=args.max_area_ge,
            max_config_bits=args.max_config_bits,
            n=args.n,
        )
        with _fabric_fleet(args) as (workers, fabric_options):
            recommendation = explore(
                requirements,
                objective=objective,
                jobs=args.jobs,
                on_error=args.on_error,
                timeout_s=args.timeout,
                resume=args.resume,
                workers=workers,
                fabric_options=fabric_options,
                batch_kernel=args.batch_kernel,
            )
        print(recommendation.explain())
    elif args.command == "costs":
        from repro.analysis.survey_costs import survey_cost_table

        with _fabric_fleet(args) as (workers, fabric_options):
            print(
                survey_cost_table(
                    default_n=args.n,
                    jobs=args.jobs,
                    on_error=args.on_error,
                    timeout_s=args.timeout,
                    resume=args.resume,
                    workers=workers,
                    fabric_options=fabric_options,
                    batch_kernel=args.batch_kernel,
                )
            )
    elif args.command == "report":
        from repro.reporting.bundle import generate_report

        files = generate_report(args.outdir)
        for path in files:
            print(path)
        print(f"wrote {len(files)} artifact files to {args.outdir}")
    elif args.command == "errata":
        report = errata_report()
        print("\n".join(report) if report else "no discrepancies")
    elif args.command == "audit":
        from repro.audit import run_audit

        audit = run_audit()
        print(audit.summary())
        return 0 if audit.passed else 1
    elif args.command == "faults":
        return _run_faults(args)
    elif args.command == "metrics":
        return _run_metrics(args)
    elif args.command == "populations":
        return _run_populations(args)
    elif args.command == "serve":
        return _run_serve(args)
    elif args.command == "jobs":
        return _run_jobs(args)
    elif args.command == "sweep-worker":
        return _run_sweep_worker(args)
    elif args.command == "baselines":
        from repro.core import baseline_resolution, extension_report

        print(extension_report().summary())
        print()
        for label, row in baseline_resolution().items():
            members = ", ".join(row.extended_classes)
            print(f"{label:12s} ({row.resolution_gain:2d}): {members}")
    return 0


def _dispatch_observed(args: argparse.Namespace) -> int:
    """Dispatch under the optional ``--profile`` wrapper."""
    if not getattr(args, "profile", False):
        return _dispatch(args)
    from repro.obs import Profiler

    with Profiler(args.command, top=20, memory=True) as profiler:
        status = _dispatch(args)
    assert profiler.report is not None
    path = profiler.report.write("artifacts")
    print(f"wrote profile to {path}", file=sys.stderr)
    return status


def main(argv: "list[str] | None" = None) -> int:
    """Parse and dispatch; library errors become a one-line diagnostic.

    Any :class:`ReproError` — bad signature, unknown architecture,
    untolerated fault, … — prints ``error: <message>`` on stderr and
    returns exit code 2 (argparse's own usage-error convention), so
    shell pipelines can distinguish "the machine broke" from "the tool
    crashed". Ctrl-C prints one ``interrupted`` line and returns 130
    (the shell's SIGINT convention) after an orderly pool shutdown —
    sweep progress journalled under ``--resume`` survives the
    interrupt. Non-library exceptions still traceback: those are bugs.

    ``--trace FILE`` (on ``dse``, ``costs``, ``faults`` and ``report``)
    records the whole command as a span tree; the JSON lands in FILE
    even when the command fails, so a trace of a crashing run is still
    inspectable.
    """
    args = build_parser().parse_args(argv)
    trace_file = getattr(args, "trace", None)
    if trace_file is not None:
        from repro.obs import trace as obs_trace

        obs_trace.reset()
        obs_trace.enable()
    try:
        return _dispatch_observed(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(
            "interrupted — completed sweep points are kept when --resume is used",
            file=sys.stderr,
        )
        return 130
    finally:
        if trace_file is not None:
            obs_trace.disable()
            path = obs_trace.tracer().write_json(trace_file)
            print(f"wrote trace to {path}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
