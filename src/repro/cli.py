"""Command-line front end: regenerate any paper artifact from a shell.

::

    repro-taxonomy table1            # the 47-class extended taxonomy
    repro-taxonomy table2            # flexibility values per class
    repro-taxonomy table3            # the 25-architecture survey
    repro-taxonomy fig 7             # any of figures 1..7
    repro-taxonomy classify --ips 1 --dps 64 --ip-dp 1-64 \\
        --ip-im 1-1 --dp-dm 64-1 --dp-dp 64x64
    repro-taxonomy explain MorphoSys # survey entry + derivation
    repro-taxonomy dse --min-flexibility 4
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.dse import Objective, Requirements, explore
from repro.core.classify import classify
from repro.core.signature import make_signature
from repro.registry.architectures import architecture
from repro.registry.survey import errata_report
from repro.reporting.figures import (
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
)
from repro.reporting.tables import render_table1, render_table2, render_table3

__all__ = ["main", "build_parser"]

_FIGURES = {
    1: render_fig1,
    2: render_fig2,
    3: render_fig3,
    4: render_fig4,
    5: render_fig5,
    6: render_fig6,
    7: render_fig7,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-taxonomy",
        description=(
            "Extended Skillicorn taxonomy of massively parallel computer "
            "architectures (Shami & Hemani reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for table in ("table1", "table2", "table3"):
        table_parser = sub.add_parser(table, help=f"render {table}")
        table_parser.add_argument(
            "--markdown", action="store_true", help="Markdown layout"
        )

    fig_parser = sub.add_parser("fig", help="render a figure (1..7)")
    fig_parser.add_argument("number", type=int, choices=sorted(_FIGURES))

    classify_parser = sub.add_parser(
        "classify", help="classify an architecture from its structure"
    )
    classify_parser.add_argument("--ips", required=True)
    classify_parser.add_argument("--dps", required=True)
    classify_parser.add_argument("--ip-ip", default="none")
    classify_parser.add_argument("--ip-dp", default="none")
    classify_parser.add_argument("--ip-im", default="none")
    classify_parser.add_argument("--dp-dm", default="none")
    classify_parser.add_argument("--dp-dp", default="none")

    explain_parser = sub.add_parser(
        "explain", help="explain a surveyed architecture's classification"
    )
    explain_parser.add_argument("name")

    dse_parser = sub.add_parser(
        "dse", help="recommend a class for given requirements"
    )
    dse_parser.add_argument("--min-flexibility", type=int, default=0)
    dse_parser.add_argument("--max-area-ge", type=float, default=None)
    dse_parser.add_argument("--max-config-bits", type=int, default=None)
    dse_parser.add_argument("--n", type=int, default=16)
    dse_parser.add_argument(
        "--objective",
        choices=["config", "area", "flex-per-area"],
        default="config",
    )

    report_parser = sub.add_parser(
        "report", help="write every artifact (tables, figures, JSON) to a directory"
    )
    report_parser.add_argument("outdir")

    sub.add_parser("errata", help="paper-vs-derived discrepancies")
    sub.add_parser("audit", help="run the library self-consistency audit")
    sub.add_parser("baselines", help="compare against Flynn and Skillicorn 1988")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        print(render_table1(markdown=args.markdown))
    elif args.command == "table2":
        print(render_table2(markdown=args.markdown))
    elif args.command == "table3":
        print(render_table3(markdown=args.markdown))
    elif args.command == "fig":
        print(_FIGURES[args.number]())
    elif args.command == "classify":
        signature = make_signature(
            args.ips,
            args.dps,
            ip_ip=args.ip_ip,
            ip_dp=args.ip_dp,
            ip_im=args.ip_im,
            dp_dm=args.dp_dm,
            dp_dp=args.dp_dp,
        )
        print(classify(signature).explain())
    elif args.command == "explain":
        record = architecture(args.name)
        print(f"{record.name} ({record.year}) — {record.family.value}")
        print(record.description)
        print()
        print(record.classification.explain())
    elif args.command == "dse":
        objective = {
            "config": Objective.CONFIG_BITS,
            "area": Objective.AREA,
            "flex-per-area": Objective.FLEXIBILITY_PER_AREA,
        }[args.objective]
        requirements = Requirements(
            min_flexibility=args.min_flexibility,
            max_area_ge=args.max_area_ge,
            max_config_bits=args.max_config_bits,
            n=args.n,
        )
        print(explore(requirements, objective=objective).explain())
    elif args.command == "report":
        from repro.reporting.bundle import generate_report

        files = generate_report(args.outdir)
        for path in files:
            print(path)
        print(f"wrote {len(files)} artifact files to {args.outdir}")
    elif args.command == "errata":
        report = errata_report()
        print("\n".join(report) if report else "no discrepancies")
    elif args.command == "audit":
        from repro.audit import run_audit

        audit = run_audit()
        print(audit.summary())
        return 0 if audit.passed else 1
    elif args.command == "baselines":
        from repro.core import baseline_resolution, extension_report

        print(extension_report().summary())
        print()
        for label, row in baseline_resolution().items():
            members = ", ".join(row.extended_classes)
            print(f"{label:12s} ({row.resolution_gain:2d}): {members}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
