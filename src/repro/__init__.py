"""repro — reproduction of "Classification of Massively Parallel Computer
Architectures" (Shami & Hemani, IPPS 2012).

The library implements the paper's extended Skillicorn taxonomy end to
end:

* :mod:`repro.core` — components, signatures, the 47-class enumeration
  (Table I), the naming hierarchy (Fig. 2), the flexibility scoring
  system (Table II) and the classifier;
* :mod:`repro.models` — the Eq.-1 area and Eq.-2 configuration-bit
  estimators with switch-cost and technology libraries;
* :mod:`repro.interconnect` — executable topologies behind the ``'-'``
  and ``'x'`` cells (crossbars, buses, meshes, sliding windows,
  hierarchies);
* :mod:`repro.machine` — executable machine models for every class
  family (dataflow, uniprocessor, SIMD array, MIMD, spatial, LUT-fabric
  universal) plus the morphability engine;
* :mod:`repro.registry` — the 25 surveyed architectures of Table III;
* :mod:`repro.bibliometrics` — the synthetic corpus behind Fig. 1;
* :mod:`repro.analysis` — similarity, Pareto and design-space analytics;
* :mod:`repro.reporting` — regenerates every table and figure.

Quickstart
----------
>>> from repro import classify, make_signature
>>> sig = make_signature(1, 64, ip_dp="1-64", ip_im="1-1",
...                      dp_dm="64-1", dp_dp="64x64")
>>> result = classify(sig)
>>> result.short_name, result.flexibility
('IAP-II', 2)
"""

from repro.core import (
    Classification,
    FlexibilityScore,
    Granularity,
    Link,
    LinkKind,
    LinkSite,
    MachineType,
    Multiplicity,
    ProcessingType,
    ReproError,
    Signature,
    TaxonomicName,
    TaxonomyClass,
    all_classes,
    class_by_name,
    class_by_serial,
    classify,
    compare_names,
    flexibility,
    implementable_classes,
    make_signature,
    similarity,
)
from repro.models import (
    AreaModel,
    ConfigBitsModel,
    estimate_area,
    estimate_config_bits,
)
from repro.registry import (
    ArchitectureRecord,
    all_architectures,
    architecture,
    flexibility_ranking,
    survey_table,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Classification",
    "FlexibilityScore",
    "Granularity",
    "Link",
    "LinkKind",
    "LinkSite",
    "MachineType",
    "Multiplicity",
    "ProcessingType",
    "ReproError",
    "Signature",
    "TaxonomicName",
    "TaxonomyClass",
    "all_classes",
    "class_by_name",
    "class_by_serial",
    "classify",
    "compare_names",
    "flexibility",
    "implementable_classes",
    "make_signature",
    "similarity",
    # models
    "AreaModel",
    "ConfigBitsModel",
    "estimate_area",
    "estimate_config_bits",
    # registry
    "ArchitectureRecord",
    "all_architectures",
    "architecture",
    "flexibility_ranking",
    "survey_table",
]
