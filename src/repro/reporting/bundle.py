"""Artifact bundle writer: dump every reproduced artifact to a directory.

``generate_report(outdir)`` writes the full reproduction record — every
table (text, Markdown and CSV), every figure (text), the JSON exports
and the audit summary — so a reviewer can diff a complete run without
executing Python. This is the "make all artifacts" entry point.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs import trace as _trace
from repro.reporting.export import (
    rows_to_csv,
    survey_to_json,
    taxonomy_to_json,
    write_artifact,
)
from repro.reporting.figures import (
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
)
from repro.reporting.tables import (
    TABLE1_HEADER,
    TABLE3_HEADER,
    render_table1,
    render_table2,
    render_table3,
    table1_rows,
    table2_rows,
    table3_rows,
)

__all__ = ["generate_report"]


def generate_report(outdir: "str | Path") -> list[Path]:
    """Write every artifact into ``outdir``; returns the files written."""
    base = Path(outdir)
    base.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    with _trace.span("report.generate", outdir=str(base)) as report_span:
        _write_artifacts(base, written)
        report_span.set_attribute("files", len(written))
    return written


def _write_artifacts(base: Path, written: "list[Path]") -> None:
    """Render and write every artifact file, one child span per file."""

    def write(name: str, content: str) -> None:
        with _trace.span("report.artifact", file=name):
            # Atomic (tmp + os.replace): a crash mid-report never leaves
            # a truncated artifact for a reviewer to diff against.
            written.append(write_artifact(base / name, content))

    # Tables in three formats.
    write("table1.txt", render_table1())
    write("table1.md", render_table1(markdown=True))
    write("table1.csv", rows_to_csv(TABLE1_HEADER, table1_rows()))
    write("table2.txt", render_table2())
    write("table2.csv", rows_to_csv(("class", "flexibility"), table2_rows()))
    write("table3.txt", render_table3())
    write("table3.md", render_table3(markdown=True))
    write("table3.csv", rows_to_csv(TABLE3_HEADER, table3_rows()))

    # Figures as text renderings.
    figures = {
        "fig1_trends.txt": render_fig1,
        "fig2_hierarchy.txt": render_fig2,
        "fig3_dataflow.txt": render_fig3,
        "fig4_array.txt": render_fig4,
        "fig5_spatial.txt": render_fig5,
        "fig6_universal.txt": render_fig6,
        "fig7_flexibility.txt": render_fig7,
    }
    for name, renderer in figures.items():
        write(name, renderer())

    # Figure data series as CSV (for external plotting).
    from repro.reporting.figures import fig1_series, fig7_series

    years, series = fig1_series()
    fig1_header = ["year"] + list(series)
    fig1_rows = [
        [year] + [series[topic][index] for topic in series]
        for index, year in enumerate(years)
    ]
    write("fig1_series.csv", rows_to_csv(fig1_header, fig1_rows))
    names, values = fig7_series()
    write(
        "fig7_series.csv",
        rows_to_csv(("architecture", "flexibility"), zip(names, values)),
    )

    # The survey cost scatter (Table III meets Eq. 1/2 and the models).
    from repro.analysis.survey_costs import survey_cost_table

    write("survey_costs.txt", survey_cost_table())

    # The resilience sweep (fault-rate degradation per architecture).
    from repro.analysis.resilience import (
        render_resilience_table,
        resilience_csv_rows,
        resilience_sweep,
    )

    resilience_points = resilience_sweep()
    write("resilience.txt", render_resilience_table(resilience_points))
    rows = resilience_csv_rows(resilience_points)
    write("resilience.csv", rows_to_csv(rows[0], rows[1:]))

    # Machine-readable exports.
    write("taxonomy.json", taxonomy_to_json())
    write("survey.json", survey_to_json())

    # Self-audit record.
    from repro.audit import run_audit

    write("audit.txt", run_audit().summary())
