"""Machine-readable export of tables, figures and signatures.

JSON for programmatic consumers, CSV for spreadsheets. Serialised
signatures round-trip through :func:`signature_from_dict`, which the
property tests exercise.

Artifact files all leave through :func:`write_artifact` /
:func:`write_csv`, which delegate to :mod:`repro.core.atomicio` — a
crash (or SIGKILL) mid-write can therefore never leave a truncated
CSV/TXT/JSON on disk; readers see the old artifact or the new one,
never half of either.
"""

from __future__ import annotations

import csv
import io
import json
import os
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.core.atomicio import atomic_write_text
from repro.core.classify import classify
from repro.core.signature import Signature, make_signature
from repro.core.taxonomy import all_classes
from repro.registry.survey import survey_table

__all__ = [
    "signature_to_dict",
    "signature_from_dict",
    "taxonomy_to_json",
    "survey_to_json",
    "rows_to_csv",
    "write_artifact",
    "write_csv",
]


def signature_to_dict(signature: Signature) -> dict[str, Any]:
    """Serialise a signature into a plain JSON-safe mapping."""
    return {
        "granularity": signature.granularity.value,
        "ips": str(signature.ips),
        "dps": str(signature.dps),
        "ip_ip": signature.ip_ip.render(),
        "ip_dp": signature.ip_dp.render(),
        "ip_im": signature.ip_im.render(),
        "dp_dm": signature.dp_dm.render(),
        "dp_dp": signature.dp_dp.render(),
    }


def signature_from_dict(payload: "dict[str, Any]") -> Signature:
    """Inverse of :func:`signature_to_dict`."""
    return make_signature(
        payload["ips"],
        payload["dps"],
        ip_ip=payload.get("ip_ip", "none"),
        ip_dp=payload.get("ip_dp", "none"),
        ip_im=payload.get("ip_im", "none"),
        dp_dm=payload.get("dp_dm", "none"),
        dp_dp=payload.get("dp_dp", "none"),
        granularity=payload.get("granularity"),
    )


def taxonomy_to_json(*, indent: int | None = 2) -> str:
    """The full 47-class table as JSON."""
    records = []
    for cls in all_classes():
        record: dict[str, Any] = {
            "serial": cls.serial,
            "name": cls.comment,
            "implementable": cls.implementable,
            "signature": signature_to_dict(cls.signature),
        }
        if cls.implementable:
            record["flexibility"] = classify(cls.signature).flexibility
        records.append(record)
    return json.dumps({"classes": records}, indent=indent)


def survey_to_json(*, indent: int | None = 2) -> str:
    """The classified Table-III survey as JSON."""
    records = []
    for entry in survey_table():
        rec = entry.record
        records.append(
            {
                "name": rec.name,
                "year": rec.year,
                "family": rec.family.value,
                "reference": rec.reference,
                "signature": signature_to_dict(rec.signature),
                "derived_name": rec.derived_name,
                "derived_flexibility": rec.derived_flexibility,
                "paper_name": rec.paper_name,
                "paper_flexibility": rec.paper_flexibility,
                "agrees_with_paper": rec.matches_paper_name
                and rec.matches_paper_flexibility,
            }
        )
    return json.dumps({"architectures": records}, indent=indent)


def rows_to_csv(header: "Sequence[str]", rows: "Iterable[Sequence[Any]]") -> str:
    """Render header + rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def write_artifact(path: "str | os.PathLike", content: str) -> Path:
    """Write one text artifact crash-safely (tmp + ``os.replace`` + fsync)."""
    return atomic_write_text(path, content)


def write_csv(
    path: "str | os.PathLike",
    header: "Sequence[str]",
    rows: "Iterable[Sequence[Any]]",
) -> Path:
    """Render and write one CSV artifact crash-safely."""
    return write_artifact(path, rows_to_csv(header, rows))
