"""Renderers that regenerate the paper's tables from library state.

Each ``table*_rows`` function produces structured cells (consumed by the
golden tests and benchmarks); ``render_*`` wraps them in plain-text or
Markdown layout. Nothing here is transcribed — every cell is derived
from the taxonomy engine, the scoring system or the registry.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.flexibility import flexibility
from repro.core.taxonomy import SECTION_HEADINGS, all_classes, implementable_classes
from repro.registry.survey import survey_table

__all__ = [
    "format_table",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "render_table1",
    "render_table2",
    "render_table3",
    "TABLE1_HEADER",
    "TABLE3_HEADER",
]

TABLE1_HEADER = (
    "S.N", "Gran.", "IPs", "DPs", "IP-IP", "IP-DP", "IP-IM",
    "DP-DM", "DP-DP", "Comments",
)

TABLE3_HEADER = (
    "Architecture", "IPs", "DPs", "IP-IP", "IP-DP", "IP-IM",
    "DP-DM", "DP-DP", "Name", "Flexibility",
)


def format_table(
    header: "Sequence[str]",
    rows: "Iterable[Sequence[str]]",
    *,
    markdown: bool = False,
) -> str:
    """Fixed-width (or Markdown) tabular layout."""
    materialised = [tuple(str(c) for c in row) for row in rows]
    columns = len(header)
    for row in materialised:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, header has {columns}: {row!r}"
            )
    widths = [
        max(len(header[i]), *(len(row[i]) for row in materialised), 1)
        if materialised
        else len(header[i])
        for i in range(columns)
    ]
    if markdown:
        lines = [
            "| " + " | ".join(h.ljust(w) for h, w in zip(header, widths)) + " |",
            "|" + "|".join("-" * (w + 2) for w in widths) + "|",
        ]
        for row in materialised:
            lines.append(
                "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
            )
        return "\n".join(lines)
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def table1_rows(*, include_sections: bool = False) -> list[tuple[str, ...]]:
    """The 47 derived Table-I rows (optionally with section-heading rows)."""
    rows: list[tuple[str, ...]] = []
    for cls in all_classes():
        if include_sections and cls.serial in SECTION_HEADINGS:
            rows.append((SECTION_HEADINGS[cls.serial],) + ("",) * 9)
        rows.append(cls.row_cells())
    return rows


def render_table1(*, markdown: bool = False) -> str:
    """Render Table I: the full class enumeration."""
    return format_table(TABLE1_HEADER, table1_rows(), markdown=markdown)


def table2_rows() -> list[tuple[str, str]]:
    """(class short name, flexibility) for every named class, Table-I order."""
    return [
        (cls.name.short, str(flexibility(cls.signature)))
        for cls in implementable_classes()
        if cls.name is not None
    ]


def render_table2(*, markdown: bool = False) -> str:
    """Table II in the paper's grouped four-column layout."""
    rows = table2_rows()
    groups: list[tuple[str, list[tuple[str, str]]]] = []
    spec = [
        ("Data Flow --> Uni Processor (+0)", lambda n: n == "DUP"),
        ("Data Flow --> Multi Processor (+1)", lambda n: n.startswith("DMP")),
        ("Instruction Flow --> Uni Processor (+0)", lambda n: n == "IUP"),
        ("Instruction Flow --> Array Processor (+1)", lambda n: n.startswith("IAP")),
        (
            "Instruction Flow --> Multi Processor (+2)",
            lambda n: n.startswith(("IMP", "ISP")),
        ),
        ("Universal Flow --> Fine Grained (+3)", lambda n: n == "USP"),
    ]
    for title, predicate in spec:
        groups.append((title, [row for row in rows if predicate(row[0])]))
    lines = []
    header = ("ST", "Flx.", "ST", "Flx.", "ST", "Flx.", "ST", "Flx.")
    for title, members in groups:
        lines.append(title)
        table_rows = []
        for start in range(0, len(members), 4):
            chunk = members[start:start + 4]
            flat: list[str] = []
            for name, flex in chunk:
                flat.extend((name, flex))
            while len(flat) < 8:
                flat.extend(("-", "-"))
            table_rows.append(tuple(flat))
        lines.append(format_table(header, table_rows, markdown=markdown))
        lines.append("")
    return "\n".join(lines).rstrip()


def table3_rows() -> list[tuple[str, ...]]:
    """The 25 derived Table-III rows in the paper's order."""
    return [entry.record.table_row() for entry in survey_table()]


def render_table3(*, markdown: bool = False) -> str:
    """Render Table III: the surveyed architectures and their classifications."""
    return format_table(TABLE3_HEADER, table3_rows(), markdown=markdown)
