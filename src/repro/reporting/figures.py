"""Text renderings of the paper's figures.

Each function returns both the underlying series (for tests and CSV
export) and an ASCII rendering, so figures regenerate in any terminal
without plotting dependencies:

* Fig. 1 — per-topic publication trends (multi-series chart);
* Fig. 2 — the naming hierarchy tree;
* Fig. 3-6 — structural diagrams of machine organisations;
* Fig. 7 — the survey flexibility bar chart.
"""

from __future__ import annotations


from repro.bibliometrics.trends import TrendReport, compute_trends
from repro.core.connectivity import LINK_SITES
from repro.core.hierarchy import HierarchyNode, build_hierarchy
from repro.core.taxonomy import class_by_name
from repro.registry.survey import flexibility_ranking

__all__ = [
    "bar_chart",
    "multi_series_chart",
    "fig1_series",
    "render_fig1",
    "render_fig2",
    "render_structure",
    "render_fig3",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "fig7_series",
    "render_fig7",
]


def bar_chart(
    labels: "list[str]",
    values: "list[float]",
    *,
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return "(empty chart)"
    label_width = max(len(label) for label in labels)
    peak = max(max(values), 1e-12)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(width * value / peak)), 0)
        lines.append(f"{label.ljust(label_width)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def multi_series_chart(
    x_values: "list[int]",
    series: "dict[str, list[float]]",
    *,
    height: int = 12,
) -> str:
    """Several series over a shared x axis, one symbol per series."""
    if not series:
        return "(empty chart)"
    symbols = "*o+x#@%&"
    peak = max(max(values) for values in series.values())
    peak = max(peak, 1e-12)
    columns = len(x_values)
    grid = [[" "] * columns for _ in range(height)]
    legend = []
    for index, (name, values) in enumerate(series.items()):
        if len(values) != columns:
            raise ValueError(f"series {name!r} length mismatch")
        symbol = symbols[index % len(symbols)]
        legend.append(f"{symbol} = {name}")
        for column, value in enumerate(values):
            row = height - 1 - int(round((height - 1) * value / peak))
            if grid[row][column] == " ":
                grid[row][column] = symbol
    lines = [f"{peak:>8.0f} +" + "".join(grid[0])]
    for row in grid[1:]:
        lines.append("         +" + "".join(row))
    lines.append("         +" + "-" * columns)
    lines.append(f"          {x_values[0]}{' ' * max(columns - 12, 1)}{x_values[-1]}")
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


# -- Fig. 1 ---------------------------------------------------------------


def fig1_series(report: "TrendReport | None" = None) -> tuple[list[int], dict[str, list[float]]]:
    """(years, {topic: counts}) — the data behind Fig. 1."""
    active = report if report is not None else compute_trends()
    years = list(active.trends[0].years)
    series = {
        trend.topic: [float(c) for c in trend.counts] for trend in active.trends
    }
    return years, series


def render_fig1(report: "TrendReport | None" = None) -> str:
    """Render Fig. 1: publication trends over the synthetic corpus."""
    years, series = fig1_series(report)
    chart = multi_series_chart(years, series)
    return "Research Trends in Parallel Computing (synthetic corpus)\n" + chart


# -- Fig. 2 --------------------------------------------------------------


def render_fig2(*, include_ni: bool = False) -> str:
    """The hierarchy-of-computing-machines tree."""
    root = build_hierarchy(include_ni=include_ni)
    lines: list[str] = []

    def walk(node: HierarchyNode, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(node.label)
            child_prefix = ""
        else:
            connector = "`-- " if is_last else "|-- "
            lines.append(prefix + connector + node.label)
            child_prefix = prefix + ("    " if is_last else "|   ")
        entries: list[tuple[str, HierarchyNode | None]] = [
            (child.label, child) for child in node.children
        ]
        if node.classes:
            names = ", ".join(cls.comment for cls in node.classes)
            entries.append((f"[{names}]", None))
        for index, (label, child) in enumerate(entries):
            last = index == len(entries) - 1
            if child is None:
                connector = "`-- " if last else "|-- "
                lines.append(child_prefix + connector + label)
            else:
                walk(child, child_prefix, last, False)

    walk(root, "", True, True)
    return "\n".join(lines)


# -- Figs. 3-6: structural diagrams ------------------------------------------


def render_structure(class_name: str) -> str:
    """Block diagram of one taxonomy class's component organisation."""
    cls = class_by_name(class_name)
    sig = cls.signature
    lines = [f"{cls.comment}: {sig.describe()}", ""]
    ips = str(sig.ips)
    dps = str(sig.dps)
    if not sig.is_data_flow:
        lines.append(f"   [IM x {ips}] <-{_sep(sig, 'IP_IM')}-> [IP x {ips}]")
        if sig.link(LINK_SITES[0]).exists:  # IP-IP
            lines.append(f"                     [IP]<-{_sep(sig, 'IP_IP')}->[IP]")
        lines.append(f"        {_arrow(sig, 'IP_DP')}")
    lines.append(f"   [DP x {dps}] <-{_sep(sig, 'DP_DM')}-> [DM x {dps}]")
    if sig.link(LINK_SITES[4]).exists:  # DP-DP
        lines.append(f"   [DP]<-{_sep(sig, 'DP_DP')}->[DP]")
    return "\n".join(lines)


def _sep(sig, site_name: str) -> str:
    from repro.core.connectivity import LinkSite

    link = sig.link(LinkSite[site_name])
    return "xbar" if link.is_switched else "wire"


def _arrow(sig, site_name: str) -> str:
    from repro.core.connectivity import LinkSite

    link = sig.link(LinkSite[site_name])
    tag = "xbar" if link.is_switched else "direct"
    return f"| IP-DP {tag} ({link.render()})"


def render_fig3() -> str:
    """Fig. 3: the data-flow machine sub-types."""
    parts = ["Skillicorn's Data Flow Machines with sub-types", ""]
    for name in ("DUP", "DMP-I", "DMP-II", "DMP-III", "DMP-IV"):
        parts.append(render_structure(name))
        parts.append("")
    return "\n".join(parts).rstrip()


def render_fig4() -> str:
    """Fig. 4: the array-processor sub-types."""
    parts = ["Array Processors with sub-types", ""]
    for name in ("IAP-I", "IAP-II", "IAP-III", "IAP-IV"):
        parts.append(render_structure(name))
        parts.append("")
    return "\n".join(parts).rstrip()


def render_fig5() -> str:
    """Fig. 5: instruction-flow spatial processors (IP-IP composition)."""
    parts = ["Instruction Flow Spatial Processors", ""]
    for name in ("ISP-I", "ISP-IV", "ISP-XVI"):
        parts.append(render_structure(name))
        parts.append("")
    return "\n".join(parts).rstrip()


def render_fig6() -> str:
    """Fig. 6: the universal-flow spatial processor."""
    return "Universal Flow Spatial Processor\n\n" + render_structure("USP")


# -- Fig. 7 -------------------------------------------------------------------


def fig7_series() -> tuple[list[str], list[int]]:
    """(architecture names, flexibility values), descending by flexibility."""
    ranking = flexibility_ranking()
    return (
        [entry.name for entry in ranking],
        [entry.flexibility for entry in ranking],
    )


def render_fig7() -> str:
    """Render Fig. 7: flexibility of the surveyed architectures."""
    names, values = fig7_series()
    chart = bar_chart(names, [float(v) for v in values])
    return (
        "Comparison of Published Architectures w.r.t. Relative Flexibility\n"
        + chart
    )
