"""Reporting layer: regenerates the paper's tables (I-III) and figures
(1-7) from library state, plus JSON/CSV export."""

from repro.reporting.bundle import generate_report
from repro.reporting.export import (
    rows_to_csv,
    signature_from_dict,
    signature_to_dict,
    survey_to_json,
    taxonomy_to_json,
)
from repro.reporting.figures import (
    bar_chart,
    fig1_series,
    fig7_series,
    multi_series_chart,
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_structure,
)
from repro.reporting.tables import (
    TABLE1_HEADER,
    TABLE3_HEADER,
    format_table,
    render_table1,
    render_table2,
    render_table3,
    table1_rows,
    table2_rows,
    table3_rows,
)

__all__ = [
    "generate_report",
    "format_table",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "render_table1",
    "render_table2",
    "render_table3",
    "TABLE1_HEADER",
    "TABLE3_HEADER",
    "bar_chart",
    "multi_series_chart",
    "fig1_series",
    "fig7_series",
    "render_fig1",
    "render_fig2",
    "render_fig3",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "render_fig7",
    "render_structure",
    "signature_to_dict",
    "signature_from_dict",
    "taxonomy_to_json",
    "survey_to_json",
    "rows_to_csv",
]
