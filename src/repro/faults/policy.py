"""Graceful-degradation policies: what a machine does when hardware dies.

A :class:`FaultPolicy` is the operational answer a machine gives to a
:class:`~repro.faults.plan.FaultEvent`. Which answers are *available*
depends on the taxonomy class — that is the point of the subsystem:

* ``fail-fast`` — any fault aborts the run with
  :class:`~repro.core.errors.FaultError`. Always available; the baseline
  every other policy is measured against.
* ``retry(n, backoff)`` — transient faults are retried up to ``n`` times,
  each attempt stalling ``backoff`` cycles. Rides out upsets on any
  class, but cannot revive permanently dead silicon.
* ``remap(spares)`` — work on a dead unit moves to a spare PE (free) or
  is time-multiplexed onto survivors (slower). Requires a switched path
  to the dead unit's state: a direct-linked class (IAP-I and friends)
  has no way to reach the stranded bank and must raise instead.
* ``degrade`` — the dead unit is simply dropped: the machine keeps
  running at reduced width and its results shrink accordingly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import FaultError

__all__ = ["PolicyKind", "FaultPolicy"]


class PolicyKind(enum.Enum):
    """The four degradation strategies."""

    FAIL_FAST = "fail-fast"
    RETRY = "retry"
    REMAP = "remap"
    DEGRADE = "degrade"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class FaultPolicy:
    """One configured degradation strategy.

    Use the named constructors; the raw constructor validates parameter
    applicability (retry counts only make sense for ``retry``, spares
    only for ``remap``).
    """

    kind: PolicyKind
    max_retries: int = 0
    backoff: int = 1
    spares: int = 0

    def __post_init__(self) -> None:
        if self.kind is PolicyKind.RETRY:
            if self.max_retries < 1:
                raise FaultError("retry policy needs max_retries >= 1")
            if self.backoff < 1:
                raise FaultError("retry backoff must be at least one cycle")
        elif self.max_retries != 0:
            raise FaultError(f"{self.kind.value} policy takes no retry budget")
        if self.spares < 0:
            raise FaultError("spare count must be non-negative")
        if self.spares and self.kind is not PolicyKind.REMAP:
            raise FaultError(f"{self.kind.value} policy cannot use spare PEs")

    # -- constructors ------------------------------------------------------

    @classmethod
    def fail_fast(cls) -> "FaultPolicy":
        """Policy that aborts the run on the first fault."""
        return cls(PolicyKind.FAIL_FAST)

    @classmethod
    def retry(cls, max_retries: int = 3, *, backoff: int = 1) -> "FaultPolicy":
        """Policy that stalls and retries transient faults, up to a bounded count."""
        return cls(PolicyKind.RETRY, max_retries=max_retries, backoff=backoff)

    @classmethod
    def remap(cls, *, spares: int = 0) -> "FaultPolicy":
        """Policy that remaps work from failed units onto surviving or spare ones."""
        return cls(PolicyKind.REMAP, spares=spares)

    @classmethod
    def degrade(cls) -> "FaultPolicy":
        """Policy that drops failed units and continues at reduced width."""
        return cls(PolicyKind.DEGRADE)

    @classmethod
    def parse(cls, token: str) -> "FaultPolicy":
        """Parse a CLI-style policy token.

        ``fail-fast`` | ``retry`` | ``retry:N`` | ``retry:N:B`` |
        ``remap`` | ``remap:S`` | ``degrade``.
        """
        parts = token.strip().lower().split(":")
        name, args = parts[0], parts[1:]
        try:
            numbers = [int(a) for a in args]
        except ValueError as exc:
            raise FaultError(f"bad policy arguments in {token!r}") from exc
        if name in ("fail-fast", "failfast") and not numbers:
            return cls.fail_fast()
        if name == "retry" and len(numbers) <= 2:
            retries = numbers[0] if numbers else 3
            backoff = numbers[1] if len(numbers) == 2 else 1
            return cls.retry(retries, backoff=backoff)
        if name == "remap" and len(numbers) <= 1:
            return cls.remap(spares=numbers[0] if numbers else 0)
        if name == "degrade" and not numbers:
            return cls.degrade()
        raise FaultError(
            f"unknown fault policy {token!r} (expected fail-fast, retry[:N[:B]], "
            "remap[:S] or degrade)"
        )

    def describe(self) -> str:
        """One-line human-readable description."""
        if self.kind is PolicyKind.RETRY:
            return f"retry(max={self.max_retries}, backoff={self.backoff})"
        if self.kind is PolicyKind.REMAP:
            return f"remap(spares={self.spares})"
        return self.kind.value
