"""The machine-side fault engine shared by every executable machine.

:class:`FaultRuntime` owns the bookkeeping that is identical across the
array processor, the multiprocessor and the spatial machine: which units
(lanes/cores) are dead or momentarily stunned, how many retries and
remap events the policy has spent, and what each fault costs in cycles.
The machines keep their own execution semantics and ask the runtime two
questions per issue slot: *what does this slot cost?* and *which faults
just landed, and may I continue?*

Cost model
----------
* ``retry``      — each transient attempt stalls ``backoff`` cycles;
  permanent faults are unrecoverable and raise.
* ``remap``      — a spare PE absorbs a death for free; without spares the
  dead unit's work is time-multiplexed onto the survivors, so an issue
  slot that nominally costs one cycle costs ``ceil(n / survivors)``.
  Transient faults replay the lost work: ``duration`` stall cycles.
* ``degrade``    — nothing stalls; dead and stunned units simply stop
  retiring operations, shrinking achieved parallelism.
* ``fail-fast``  — the first fault raises :class:`FaultError`.

These penalties are all non-negative and the multiplex factor is
monotone in the dead-unit count, which yields the subsystem's testable
guarantee: cycles are non-decreasing in the number of injected faults,
and under ``remap`` retired operations match the fault-free run exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import FaultError
from repro.faults.plan import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.faults.policy import FaultPolicy, PolicyKind
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = ["FaultRuntime"]

# Process-wide fault accounting — incremented only on the fault paths,
# so fault-free runs (the overhead-benchmarked common case) never touch
# these. ``repro-taxonomy metrics`` surfaces them next to the sweep
# engine's resilience counters.
_FAULTS_SEEN = _metrics.REGISTRY.counter(
    "faults.seen", help="fault events absorbed by policy runtimes"
)
_FAULT_RETRIES = _metrics.REGISTRY.counter(
    "faults.retries", help="transient-fault retry attempts spent"
)
_FAULT_REMAPS = _metrics.REGISTRY.counter(
    "faults.remap_events", help="permanent faults absorbed by remapping"
)
_FAULT_ABORTS = _metrics.REGISTRY.counter(
    "faults.aborts", help="fault events the active policy could not tolerate"
)


@dataclass
class FaultRuntime:
    """Health tracker + policy arbiter for one machine run."""

    n_units: int
    injector: FaultInjector
    policy: FaultPolicy
    can_remap: bool
    machine: str
    unit_noun: str = "unit"
    #: optional sink for PORT/LINK events — machines with an attached
    #: interconnect route them into its fault state instead of treating
    #: them as unit deaths.
    fabric_handler: "Callable[[FaultEvent], None] | None" = None

    dead: set[int] = field(default_factory=set)
    fabric_faults: int = 0
    stunned: dict[int, int] = field(default_factory=dict)
    faults_seen: int = 0
    retries: int = 0
    remap_events: int = 0
    degraded_units: int = 0
    spares_used: int = 0
    stall_cycles: int = 0

    @classmethod
    def create(
        cls,
        faults: "FaultPlan | FaultInjector | None",
        policy: "FaultPolicy | None",
        *,
        n_units: int,
        can_remap: bool,
        machine: str,
        unit_noun: str = "unit",
        fabric_handler: "Callable[[FaultEvent], None] | None" = None,
    ) -> "FaultRuntime | None":
        """Normalise the machine-facing ``faults=``/``policy=`` arguments.

        Returns None when no faults were requested (the fault-free fast
        path). A plan without a policy defaults to ``fail-fast`` — the
        honest baseline.
        """
        if faults is None:
            if policy is not None and policy.kind is not PolicyKind.FAIL_FAST:
                # A policy without faults is inert but harmless.
                return None
            return None
        injector = faults.injector() if isinstance(faults, FaultPlan) else faults
        return cls(
            n_units=n_units,
            injector=injector,
            policy=policy or FaultPolicy.fail_fast(),
            can_remap=can_remap,
            machine=machine,
            unit_noun=unit_noun,
            fabric_handler=fabric_handler,
        )

    # -- per-cycle protocol ------------------------------------------------

    def issue_cost(self) -> int:
        """Cycles one nominal issue slot costs under the current health.

        Only ``remap`` without spares slows the clock: survivors host the
        dead units' work time-multiplexed.
        """
        if self.policy.kind is not PolicyKind.REMAP or not self.dead:
            return 1
        survivors = self.n_units - len(self.dead)
        return -(-self.n_units // survivors)  # ceil

    def absorb(self, cycle: int) -> int:
        """Apply every fault due at ``cycle``; return stall-cycle penalty.

        Raises :class:`FaultError` when the policy (or the machine's
        structure) cannot tolerate an event.
        """
        penalty = 0
        for event in self.injector.due(cycle):
            penalty += self._apply(event, cycle + penalty)
        self.stall_cycles += penalty
        return penalty

    def _apply(self, event: FaultEvent, cycle: int) -> int:
        unit = event.target % self.n_units
        self.faults_seen += 1
        _FAULTS_SEEN.inc()
        kind = self.policy.kind
        if kind is PolicyKind.FAIL_FAST:
            self._decision(event, unit, "abort")
            _FAULT_ABORTS.inc()
            raise FaultError(
                f"{self.machine}: fail-fast abort — {event.describe()} "
                f"({self.unit_noun} {unit})"
            )
        if event.kind is not FaultKind.PE and self.fabric_handler is not None:
            # The interconnect absorbs its own faults: switched fabrics
            # reroute, and routes that become unrealisable raise
            # FaultError from the topology itself.
            self._decision(event, unit, "fabric")
            self.fabric_handler(event)
            self.fabric_faults += 1
            return 0
        if not event.is_permanent:
            return self._apply_transient(event, unit, cycle)
        return self._apply_permanent(event, unit)

    def _apply_transient(self, event: FaultEvent, unit: int, cycle: int) -> int:
        kind = self.policy.kind
        if kind is PolicyKind.RETRY:
            attempts = -(-event.duration // self.policy.backoff)  # ceil
            if attempts > self.policy.max_retries:
                self._decision(event, unit, "abort", attempts=attempts)
                _FAULT_ABORTS.inc()
                raise FaultError(
                    f"{self.machine}: transient fault on {self.unit_noun} "
                    f"{unit} needs {attempts} retries, over the budget of "
                    f"{self.policy.max_retries}"
                )
            self.retries += attempts
            _FAULT_RETRIES.inc(attempts)
            self._decision(event, unit, "retry", attempts=attempts)
            return attempts * self.policy.backoff
        if kind is PolicyKind.REMAP:
            # The interrupted work replays once the unit recovers.
            self._decision(event, unit, "replay", stall_cycles=event.duration)
            return event.duration
        # degrade: the unit misses its issue slots until it recovers.
        until = cycle + event.duration
        self.stunned[unit] = max(self.stunned.get(unit, 0), until)
        self._decision(event, unit, "stun", until_cycle=until)
        return 0

    def _apply_permanent(self, event: FaultEvent, unit: int) -> int:
        kind = self.policy.kind
        if kind is PolicyKind.RETRY:
            self._decision(event, unit, "abort")
            _FAULT_ABORTS.inc()
            raise FaultError(
                f"{self.machine}: {self.unit_noun} {unit} failed permanently "
                "at cycle "
                f"{event.cycle}; retrying cannot revive dead silicon — use a "
                "remap or degrade policy"
            )
        if unit in self.dead:
            return 0  # already accounted
        if kind is PolicyKind.REMAP:
            if self.spares_used < self.policy.spares:
                # A cold spare steps in: full width preserved, no slowdown.
                self.spares_used += 1
                self.remap_events += 1
                _FAULT_REMAPS.inc()
                self._decision(event, unit, "spare", spares_used=self.spares_used)
                return 0
            if not self.can_remap:
                self._decision(event, unit, "abort")
                _FAULT_ABORTS.inc()
                raise FaultError(
                    f"{self.machine}: cannot remap {self.unit_noun} {unit} — "
                    "its state sits behind direct ('-') links, and direct "
                    "links cannot route around failures (only switched 'x' "
                    "sites can)"
                )
            self.dead.add(unit)
            self.remap_events += 1
            _FAULT_REMAPS.inc()
            self._decision(event, unit, "remap", dead_units=len(self.dead))
        else:  # degrade
            self.dead.add(unit)
            self.degraded_units += 1
            self._decision(event, unit, "degrade", dead_units=len(self.dead))
        if len(self.dead) >= self.n_units:
            raise FaultError(
                f"{self.machine}: every {self.unit_noun} has failed; nothing "
                "left to degrade onto"
            )
        return 0

    def _decision(self, event: FaultEvent, unit: int, action: str, **detail: int) -> None:
        """Publish one policy decision as a span event (no-op untraced)."""
        if not _trace.GLOBAL_TRACER.enabled:
            return
        _trace.add_event(
            "fault.policy",
            machine=self.machine,
            policy=self.policy.describe(),
            action=action,
            kind=event.kind.value,
            unit=unit,
            cycle=event.cycle,
            **detail,
        )

    # -- queries -----------------------------------------------------------

    def executing_units(self, cycle: int) -> list[int]:
        """Units whose work is executed (and retired) this cycle.

        Under ``degrade`` dead units are gone and stunned units miss
        their slots; under every other policy all units' work happens —
        remapped work still executes, it just costs extra cycles.
        """
        if self.policy.kind is not PolicyKind.DEGRADE:
            return list(range(self.n_units))
        return [u for u in range(self.n_units) if self.is_active(u, cycle)]

    def is_active(self, unit: int, cycle: int) -> bool:
        """Whether a unit retires work this cycle (degrade semantics)."""
        if unit in self.dead:
            return False
        until = self.stunned.get(unit)
        if until is not None:
            if cycle < until:
                return False
            del self.stunned[unit]
        return True

    def stats(self) -> dict:
        """Fault accounting merged into ``ExecutionResult.stats``."""
        return {
            "fault_policy": self.policy.describe(),
            "faults_injected": len(self.injector.plan),
            "faults_seen": self.faults_seen,
            "retries": self.retries,
            "remap_events": self.remap_events,
            "degraded_units": self.degraded_units,
            "spares_used": self.spares_used,
            "fault_stall_cycles": self.stall_cycles,
            "fabric_faults": self.fabric_faults,
            "dead_units": sorted(self.dead),
        }
