"""Fault injection and graceful degradation for simulated fabrics.

The taxonomy's flexibility argument (§III-B) claims that classes with
switched (``x``) links adapt where direct-linked (``-``) classes cannot.
This package makes that claim operational: seeded
:class:`~repro.faults.plan.FaultPlan` schedules kill processing
elements, ports and links mid-run; machines respond according to a
:class:`~repro.faults.policy.FaultPolicy` (fail-fast, retry, remap onto
survivors or spares, degrade); and
:mod:`repro.analysis.resilience` sweeps fault rates across the Table-III
survey to measure how gracefully each class's throughput degrades.
"""

from repro.faults.plan import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSeverity,
)
from repro.faults.policy import FaultPolicy, PolicyKind
from repro.faults.runtime import FaultRuntime

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSeverity",
    "FaultPolicy",
    "PolicyKind",
    "FaultRuntime",
]
