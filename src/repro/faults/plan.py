"""Fault models: what fails, when, and for how long.

A :class:`FaultPlan` is a deterministic, fully materialised schedule of
hardware failures — permanent and transient — against the abstract
resources every machine in this library is built from: processing
elements (DPs/IPs/lanes/cores/cells), crossbar ports and topology links.
Plans are either constructed explicitly (tests, targeted experiments) or
drawn from a seeded generator (:meth:`FaultPlan.random`), so any fault
experiment is reproducible from ``(seed, rate)`` alone.

The :class:`FaultInjector` turns a plan into a cycle-driven stream: a
machine asks it each cycle which events have come due. Injectors carry
the mutable cursor so one immutable plan can drive many runs.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.core.errors import FaultError

__all__ = ["FaultKind", "FaultSeverity", "FaultEvent", "FaultPlan", "FaultInjector"]


class FaultKind(enum.Enum):
    """Which resource class a fault strikes."""

    PE = "pe"        #: a processing element (DP lane, core, LUT cell)
    PORT = "port"    #: a switch/crossbar port
    LINK = "link"    #: a topology wire between two nodes

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class FaultSeverity(enum.Enum):
    """Whether the resource comes back."""

    PERMANENT = "permanent"
    TRANSIENT = "transient"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True, order=True)
class FaultEvent:
    """One failure: at ``cycle``, resource ``target`` of ``kind`` dies.

    Transient events recover ``duration`` cycles after they strike
    (an SEU-style upset); permanent events never do (hard silicon
    failure). ``target`` is an abstract resource index — the consuming
    layer maps it onto its own population (machines fold it modulo the
    unit count, interconnects onto port/link indices).
    """

    cycle: int
    kind: FaultKind = FaultKind.PE
    target: int = 0
    severity: FaultSeverity = FaultSeverity.PERMANENT
    duration: int = 0

    def __post_init__(self) -> None:
        if self.cycle < 1:
            raise FaultError("fault events strike at cycle >= 1")
        if self.target < 0:
            raise FaultError("fault target index must be non-negative")
        if self.severity is FaultSeverity.TRANSIENT and self.duration < 1:
            raise FaultError("transient faults need a positive duration")
        if self.severity is FaultSeverity.PERMANENT and self.duration != 0:
            raise FaultError("permanent faults have no recovery duration")

    @property
    def is_permanent(self) -> bool:
        """True for permanent (non-recovering) faults."""
        return self.severity is FaultSeverity.PERMANENT

    def describe(self) -> str:
        """One-line human-readable description."""
        life = (
            "permanently"
            if self.is_permanent
            else f"for {self.duration} cycle{'s' if self.duration != 1 else ''}"
        )
        return f"cycle {self.cycle}: {self.kind.value} {self.target} fails {life}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, cycle-sorted failure schedule.

    ``seed``/``rate`` record the provenance of generated plans (None for
    hand-built ones) so results can cite their fault regime.
    """

    #: sentinel cycle for draining a whole plan at once (single-settle
    #: machines like the USP's combinational personality absorb every
    #: event before their one evaluation cycle).
    DRAIN_CYCLE = 1 << 62

    events: tuple[FaultEvent, ...] = ()
    seed: "int | None" = None
    rate: "float | None" = None

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: (e.cycle, e.target)))
        object.__setattr__(self, "events", ordered)
        if self.rate is not None and not 0.0 <= self.rate <= 1.0:
            raise FaultError(f"fault rate must lie in [0, 1], got {self.rate}")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def permanent_count(self) -> int:
        """Number of permanent events in the plan."""
        return sum(1 for event in self.events if event.is_permanent)

    def of_kind(self, kind: FaultKind) -> tuple[FaultEvent, ...]:
        """The plan's events of one fault kind, in cycle order."""
        return tuple(event for event in self.events if event.kind is kind)

    def truncated(self, count: int) -> "FaultPlan":
        """The plan's first ``count`` events (a strictly weaker regime).

        Prefix plans are how fault-count monotonicity is stated: run the
        same workload under ``plan.truncated(k)`` for growing ``k`` and
        the cycle count must never decrease.
        """
        if count < 0:
            raise FaultError("truncation count must be non-negative")
        return FaultPlan(self.events[:count], seed=self.seed, rate=self.rate)

    def injector(self) -> "FaultInjector":
        """A fresh FaultInjector that deals this plan's events in cycle order."""
        return FaultInjector(self)

    @classmethod
    def random(
        cls,
        seed: int,
        rate: float,
        *,
        n_pes: int,
        n_links: int = 0,
        horizon: int = 64,
        transient_fraction: float = 0.25,
        max_transient_duration: int = 4,
    ) -> "FaultPlan":
        """Draw a plan: each PE (and optionally link) fails i.i.d. at ``rate``.

        Fully determined by the arguments — the same ``(seed, rate, ...)``
        always yields the same plan, which is what makes
        ``repro-taxonomy faults --seed S --rate R`` reproducible.
        """
        if n_pes < 1:
            raise FaultError("a fault plan needs at least one PE to target")
        if not 0.0 <= rate <= 1.0:
            raise FaultError(f"fault rate must lie in [0, 1], got {rate}")
        if horizon < 1:
            raise FaultError("horizon must be positive")
        if not 0.0 <= transient_fraction <= 1.0:
            raise FaultError("transient fraction must lie in [0, 1]")
        rng = random.Random(seed)
        events: list[FaultEvent] = []
        targets = [(FaultKind.PE, index) for index in range(n_pes)]
        targets += [(FaultKind.LINK, index) for index in range(n_links)]
        for kind, index in targets:
            if rng.random() >= rate:
                continue
            cycle = rng.randint(1, horizon)
            if rng.random() < transient_fraction:
                events.append(
                    FaultEvent(
                        cycle=cycle,
                        kind=kind,
                        target=index,
                        severity=FaultSeverity.TRANSIENT,
                        duration=rng.randint(1, max_transient_duration),
                    )
                )
            else:
                events.append(FaultEvent(cycle=cycle, kind=kind, target=index))
        return cls(tuple(events), seed=seed, rate=rate)

    def describe(self) -> str:
        """Multi-line human-readable listing of the plan's events."""
        origin = (
            f"seed={self.seed}, rate={self.rate}" if self.seed is not None else "hand-built"
        )
        lines = [f"FaultPlan({origin}): {len(self.events)} events"]
        lines += [f"  {event.describe()}" for event in self.events]
        return "\n".join(lines)


@dataclass
class FaultInjector:
    """Mutable cursor over a plan: deals out events as cycles advance."""

    plan: FaultPlan
    _cursor: int = field(default=0, repr=False)

    def due(self, cycle: int) -> list[FaultEvent]:
        """All not-yet-delivered events with ``event.cycle <= cycle``."""
        delivered: list[FaultEvent] = []
        while (
            self._cursor < len(self.plan.events)
            and self.plan.events[self._cursor].cycle <= cycle
        ):
            delivered.append(self.plan.events[self._cursor])
            self._cursor += 1
        return delivered

    @property
    def exhausted(self) -> bool:
        """True once every event has been delivered."""
        return self._cursor >= len(self.plan.events)

    @property
    def delivered(self) -> int:
        """Number of events delivered so far."""
        return self._cursor

    def reset(self) -> None:
        """Rewind delivery so the plan can be replayed from cycle zero."""
        self._cursor = 0
