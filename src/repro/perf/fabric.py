"""The distributed sweep fabric: one sweep, many hosts, zero lost points.

:func:`fabric_sweep` is the multi-host sibling of
:func:`repro.perf.engine.sweep`: the same pure-function-over-points
contract, the same :class:`~repro.perf.engine.PointResult` outcome
taxonomy, the same deterministic input-order results — but the points
are evaluated by *worker processes on other hosts*, connected over
plain TCP (stdlib only, like everything else in this package).

Topology
--------

Workers are servers; the coordinator dials them::

    repro-taxonomy sweep-worker --listen 0.0.0.0:7070     # on each host
    repro-taxonomy costs --workers hostA:7070,hostB:7070  # coordinator

The coordinator shards the point grid into *leases* (``lease_size``
points each), hands leases to workers as they ask for work, and tracks
every lease against its worker's heartbeat. The design is
robustness-first, because at fleet scale worker death is the normal
case, not the exception:

* **failure detection** — a dead socket (the worker was SIGKILLed, its
  host rebooted) or a missed heartbeat (``lease_ttl_s`` without a sign
  of life — the worker is wedged or partitioned) expires the worker:
  every point it held is re-queued and evaluated elsewhere;
* **work-stealing** — an idle worker with nothing left in the queue
  duplicates the oldest outstanding lease of a straggler; the first
  result for a point wins and later duplicates are discarded, which is
  sound because point functions are pure;
* **bounded crash retry** — a point whose holder died is re-queued at
  most ``max_point_crashes`` times; past that it is treated as a
  *poison point* (the same identification PR 4's single-host engine
  performs) and finished through the engine's last-resort path instead
  of wedging the fleet;
* **graceful degradation** — if no worker joins within
  ``join_deadline_s``, or every worker is lost mid-sweep, the
  coordinator finishes the remaining points locally: a lost fleet
  costs wall-clock, never a lost sweep;
* **checkpointing** — pass a
  :class:`~repro.perf.journal.ShardedCheckpoint` and every completed
  point is fsync-journalled into its index's home shard as results
  arrive; a killed coordinator resumes bit-identically, exactly like
  the single-host ``--resume``.

Results are byte-identical to a single-host run: outcomes are keyed by
point index, values are whatever the pure point function returns, and
the fabric's scheduling (which worker, in what order, stolen or not)
leaves no trace in the output.

Trust model: the worker executes a function object shipped by whoever
connects to it — the same trust level as unpickling a checkpoint
journal. Bind workers to loopback or a network you trust.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.core.errors import FabricError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.perf import engine as _engine
from repro.perf.engine import PointResult, RetryPolicy, SweepResult

__all__ = [
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_JOIN_DEADLINE_S",
    "DEFAULT_LEASE_SIZE",
    "DEFAULT_MAX_POINT_CRASHES",
    "FABRIC_PROTOCOL",
    "WORKER_ENV",
    "FabricWorker",
    "fabric_sweep",
    "parse_endpoints",
]

#: Protocol tag exchanged in the handshake; mismatches refuse the link.
FABRIC_PROTOCOL = "repro-sweep-fabric/1"

#: Environment variable set to ``"1"`` inside ``sweep-worker`` processes,
#: so point functions can tell whether they run on a worker or locally.
WORKER_ENV = "REPRO_SWEEP_WORKER"

#: Points per lease. Small leases keep re-queue cost and steal
#: granularity low; raise it only when points are very cheap.
DEFAULT_LEASE_SIZE = 1

#: Seconds a worker may go silent before its leases expire (multiples
#: of the heartbeat interval; see :func:`fabric_sweep`).
DEFAULT_LEASE_TTL_BEATS = 4

#: Default worker heartbeat interval in seconds.
DEFAULT_HEARTBEAT_S = 0.5

#: How long the coordinator waits for workers before degrading to
#: local execution.
DEFAULT_JOIN_DEADLINE_S = 2.0

#: Times a point may crash (lose) its worker before it is treated as
#: poison and finished through the last-resort path.
DEFAULT_MAX_POINT_CRASHES = 2

_FABRIC_SWEEPS = _metrics.REGISTRY.counter(
    "fabric.sweeps", help="fabric_sweep() invocations (including local fallbacks)"
)
_WORKERS_JOINED = _metrics.REGISTRY.counter(
    "fabric.workers_joined", help="workers that completed the join handshake"
)
_WORKERS_LOST = _metrics.REGISTRY.counter(
    "fabric.workers_lost", help="workers lost mid-sweep (dead socket or expired lease)"
)
_LEASES_EXPIRED = _metrics.REGISTRY.counter(
    "fabric.leases_expired", help="leases expired by missed heartbeats"
)
_POINTS_STOLEN = _metrics.REGISTRY.counter(
    "fabric.points_stolen", help="straggler points duplicated onto idle workers"
)
_POINTS_REQUEUED = _metrics.REGISTRY.counter(
    "fabric.points_requeued", help="points re-queued after their worker was lost"
)
_POINTS_RESPAWNED = _metrics.REGISTRY.counter(
    "fabric.poison_points", help="points that exhausted their crash budget"
)
_LOCAL_FALLBACKS = _metrics.REGISTRY.counter(
    "fabric.local_fallbacks", help="sweeps (or sweep tails) finished locally for lack of workers"
)


# -- wire helpers ----------------------------------------------------------


def parse_endpoints(value: "str | Iterable[Any]") -> "tuple[tuple[str, int], ...]":
    """Normalise worker endpoints into ``(host, port)`` pairs.

    Accepts the CLI's comma-separated string or any iterable of
    ``"host:port"`` strings / ``(host, port)`` pairs.

        >>> parse_endpoints("127.0.0.1:7070, hostB:7071")
        (('127.0.0.1', 7070), ('hostB', 7071))
        >>> parse_endpoints([("hostA", 9000)])
        (('hostA', 9000),)
    """
    if isinstance(value, str):
        tokens: "list[Any]" = [t.strip() for t in value.split(",") if t.strip()]
    else:
        tokens = list(value)
    endpoints: list[tuple[str, int]] = []
    for token in tokens:
        if isinstance(token, str):
            host, _, port_text = token.rpartition(":")
            if not host or not port_text.isdigit():
                raise FabricError(
                    f"worker endpoint must look like HOST:PORT, got {token!r}"
                )
            endpoints.append((host, int(port_text)))
        else:
            host, port = token
            endpoints.append((str(host), int(port)))
    if not endpoints:
        raise FabricError("at least one worker endpoint is required")
    return tuple(endpoints)


def _pack(obj: Any) -> str:
    """Pickle ``obj`` and wrap it for transport inside a JSON frame."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def _unpack(text: str) -> Any:
    """Inverse of :func:`_pack`."""
    return pickle.loads(base64.b64decode(text))


def _send(wfile: Any, wlock: threading.Lock, message: "dict[str, Any]") -> None:
    """Write one newline-delimited JSON frame (thread-safe per link)."""
    line = json.dumps(message, sort_keys=True)
    with wlock:
        wfile.write(line + "\n")
        wfile.flush()


def _recv(rfile: Any) -> "dict[str, Any] | None":
    """Read one frame; ``None`` on a closed connection."""
    line = rfile.readline()
    if not line:
        return None
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as error:
        raise FabricError(f"malformed fabric frame: {line[:80]!r}") from error
    if not isinstance(frame, dict) or "type" not in frame:
        raise FabricError(f"fabric frame without a type: {line[:80]!r}")
    return frame


# -- coordinator -----------------------------------------------------------


@dataclass
class _Link:
    """One connected worker, as the coordinator sees it."""

    id: int
    endpoint: str
    sock: socket.socket
    rfile: Any
    wfile: Any
    host: str = "?"
    pid: int = 0
    wlock: threading.Lock = field(default_factory=threading.Lock)
    last_seen: float = field(default_factory=time.monotonic)
    lost: bool = False

    @property
    def label(self) -> str:
        """``host:pid`` identity for spans and diagnostics."""
        return f"{self.host}:{self.pid}"


@dataclass
class _Lease:
    """One batch of points out with a worker."""

    id: int
    worker: int
    pairs: "list[tuple[int, Any]]"
    issued: float
    stolen: bool = False


class _Coordinator:
    """Shard, lease, watch, steal, merge — the fabric's control loop.

    One instance drives one sweep. Reader threads (one per worker link)
    handle the message traffic; the caller's thread runs :meth:`run`,
    which polices heartbeats, finishes poison points, and degrades to
    local execution when the fleet is gone. All shared state is guarded
    by one lock — the fabric's scale ceiling is network round-trips,
    not this lock.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        pairs: "list[tuple[int, Any]]",
        links: "list[_Link]",
        *,
        spec: Any,
        checkpoint: Any,
        lease_size: int,
        heartbeat_s: float,
        lease_ttl_s: float,
        max_point_crashes: int,
        span: Any,
    ):
        self._fn = fn
        self._spec = spec
        self._checkpoint = checkpoint
        self._lease_size = lease_size
        self._heartbeat_s = heartbeat_s
        self._lease_ttl_s = lease_ttl_s
        self._max_point_crashes = max_point_crashes
        self._span = span
        self._total = len(pairs)
        self._lock = threading.Lock()
        self._pending: "deque[tuple[int, Any]]" = deque(pairs)
        self._leases: dict[int, _Lease] = {}
        self._covered: dict[int, int] = {}
        self._results: dict[int, PointResult] = {}
        self._crashes: dict[int, int] = {}
        self._poison: "list[tuple[int, Any]]" = []
        self._poisoned: set[int] = set()
        self._links: dict[int, _Link] = {link.id: link for link in links}
        self._lease_seq = 0
        self._complete = threading.Event()
        self._tick_s = max(0.01, min(0.05, heartbeat_s / 4.0))

    # -- lifecycle -------------------------------------------------------

    def run(self) -> "list[PointResult]":
        """Drive the sweep to completion; returns fresh outcomes."""
        readers = [
            threading.Thread(
                target=self._read_loop,
                args=(link,),
                name=f"fabric-worker-{link.id}",
                daemon=True,
            )
            for link in self._links.values()
        ]
        for reader in readers:
            reader.start()
        try:
            if self._total == 0:
                self._complete.set()
            while not self._complete.is_set():
                self._complete.wait(self._tick_s)
                self._expire_stale_links()
                self._finish_poison_points()
                with self._lock:
                    alive = any(not link.lost for link in self._links.values())
                    done = len(self._results) >= self._total
                if done:
                    self._complete.set()
                elif not alive and not self._poison:
                    self._finish_locally()
        finally:
            self._complete.set()
            self._shutdown_links()
        for reader in readers:
            reader.join(timeout=2.0)
        with self._lock:
            return sorted(self._results.values(), key=lambda r: r.index)

    def _shutdown_links(self) -> None:
        """Best-effort ``done`` + close on every link that is still up."""
        for link in list(self._links.values()):
            if link.lost:
                continue
            try:
                _send(link.wfile, link.wlock, {"type": "done"})
            except OSError:
                pass
            self._sever(link)

    @staticmethod
    def _sever(link: _Link) -> None:
        """Tear a link's socket down, unblocking its reader thread."""
        try:
            link.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            link.sock.close()
        except OSError:
            pass

    # -- per-link reader -------------------------------------------------

    def _read_loop(self, link: _Link) -> None:
        """Handle one worker's traffic until it finishes or is lost."""
        reason = "connection closed"
        try:
            while not self._complete.is_set():
                frame = _recv(link.rfile)
                if frame is None:
                    break
                link.last_seen = time.monotonic()
                kind = frame["type"]
                if kind == "heartbeat":
                    continue
                if kind == "ready":
                    self._offer_work(link)
                elif kind == "result":
                    self._accept_result(link, frame)
                else:
                    reason = f"unexpected {kind!r} frame"
                    break
        except (OSError, ValueError, FabricError) as error:
            reason = repr(error)
        finally:
            self._lose_worker(link, reason)

    def _offer_work(self, link: _Link) -> None:
        """Answer a ``ready``: a lease, a stolen lease, a wait, or done."""
        with self._lock:
            if len(self._results) >= self._total:
                reply: "dict[str, Any]" = {"type": "done"}
            else:
                chunk = self._next_chunk(link)
                if chunk is None:
                    reply = {"type": "wait", "delay_s": round(self._tick_s * 2, 4)}
                else:
                    reply = {
                        "type": "lease",
                        "id": chunk.id,
                        "points": _pack(chunk.pairs),
                    }
        try:
            _send(link.wfile, link.wlock, reply)
        except OSError:
            self._lose_worker(link, "send failed")

    def _next_chunk(self, link: _Link) -> "_Lease | None":
        """Pop a fresh lease, or steal from a straggler (lock held)."""
        pairs: "list[tuple[int, Any]]" = []
        while self._pending and len(pairs) < self._lease_size:
            index, point = self._pending.popleft()
            if index not in self._results:
                pairs.append((index, point))
        stolen = False
        if not pairs:
            victim = self._steal_candidate(link)
            if victim is None:
                return None
            pairs = [
                (index, point)
                for index, point in victim.pairs
                if index not in self._results and self._covered.get(index, 0) < 2
            ]
            if not pairs:
                return None
            stolen = True
            _POINTS_STOLEN.inc(len(pairs))
            self._span.add_event(
                "steal",
                points=len(pairs),
                from_worker=victim.worker,
                to_worker=link.id,
            )
        self._lease_seq += 1
        lease = _Lease(
            id=self._lease_seq,
            worker=link.id,
            pairs=pairs,
            issued=time.monotonic(),
            stolen=stolen,
        )
        self._leases[lease.id] = lease
        for index, _ in pairs:
            self._covered[index] = self._covered.get(index, 0) + 1
        return lease

    def _steal_candidate(self, thief: _Link) -> "_Lease | None":
        """The oldest outstanding lease held by a *different* worker."""
        candidates = [
            lease
            for lease in self._leases.values()
            if lease.worker != thief.id
            and any(
                index not in self._results and self._covered.get(index, 0) < 2
                for index, _ in lease.pairs
            )
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda lease: lease.issued)

    def _accept_result(self, link: _Link, frame: "dict[str, Any]") -> None:
        """Record a lease's outcomes; duplicates (stolen races) are dropped."""
        outcomes: "list[PointResult]" = _unpack(frame["outcomes"])
        with self._lock:
            lease = self._leases.pop(int(frame["id"]), None)
            if lease is not None:
                for index, _ in lease.pairs:
                    self._covered[index] = max(0, self._covered.get(index, 0) - 1)
            for outcome in outcomes:
                self._settle(outcome)

    def _settle(self, outcome: PointResult) -> None:
        """First result for an index wins; journal it (lock held)."""
        if outcome.index in self._results:
            return
        self._results[outcome.index] = outcome
        if self._checkpoint is not None:
            self._checkpoint.record(outcome)
        if len(self._results) >= self._total:
            self._complete.set()

    # -- failure handling ------------------------------------------------

    def _lose_worker(self, link: _Link, reason: str) -> None:
        """Expire a worker: re-queue its points, bound their crash budget."""
        with self._lock:
            if link.lost:
                return
            link.lost = True
            orphaned = [
                lease for lease in self._leases.values() if lease.worker == link.id
            ]
            for lease in orphaned:
                del self._leases[lease.id]
            requeued = 0
            for lease in orphaned:
                for index, point in lease.pairs:
                    self._covered[index] = max(0, self._covered.get(index, 0) - 1)
                    if index in self._results or index in self._poisoned:
                        continue
                    self._crashes[index] = self._crashes.get(index, 0) + 1
                    if self._crashes[index] > self._max_point_crashes:
                        self._poisoned.add(index)
                        self._poison.append((index, point))
                        _POINTS_RESPAWNED.inc()
                    elif self._covered.get(index, 0) == 0:
                        self._pending.appendleft((index, point))
                        requeued += 1
        if self._complete.is_set():
            return  # orderly shutdown, not a failure
        _WORKERS_LOST.inc()
        if requeued:
            _POINTS_REQUEUED.inc(requeued)
        self._span.add_event(
            "worker_lost",
            worker=link.id,
            identity=link.label,
            reason=reason,
            requeued=requeued,
        )
        self._sever(link)

    def _expire_stale_links(self) -> None:
        """Drop workers whose heartbeats stopped (wedged or partitioned)."""
        now = time.monotonic()
        for link in list(self._links.values()):
            if link.lost or now - link.last_seen <= self._lease_ttl_s:
                continue
            with self._lock:
                expired = sum(
                    1 for lease in self._leases.values() if lease.worker == link.id
                )
            _LEASES_EXPIRED.inc(max(expired, 1))
            self._span.add_event(
                "lease_expired",
                worker=link.id,
                identity=link.label,
                silent_s=round(now - link.last_seen, 3),
                leases=expired,
            )
            self._sever(link)  # the reader thread observes EOF and re-queues

    def _finish_poison_points(self) -> None:
        """Run crash-budget-exhausted points through the last-resort path."""
        with self._lock:
            pairs, self._poison = self._poison, []
        if not pairs:
            return
        outcomes = _engine._sweep_last_resort(
            self._fn, sorted(pairs), self._spec, self._span, None
        )
        with self._lock:
            for outcome in outcomes:
                self._settle(outcome)

    def _finish_locally(self) -> None:
        """Every worker is gone: finish the remaining points in-process."""
        with self._lock:
            remaining = sorted(
                {
                    index: point
                    for index, point in self._pending
                    if index not in self._results
                }.items()
            )
            self._pending.clear()
        _LOCAL_FALLBACKS.inc()
        self._span.add_event("fallback_local", points=len(remaining))
        outcomes = _engine._sweep_serial(
            self._fn, remaining, spec=self._spec, checkpoint=None
        )
        with self._lock:
            for outcome in outcomes:
                self._settle(outcome)
            if len(self._results) >= self._total:
                self._complete.set()


# -- joining ---------------------------------------------------------------


def _dial(
    endpoint: "tuple[str, int]",
    link_id: int,
    *,
    fn_blob: str,
    spec_blob: str,
    heartbeat_s: float,
    connect_timeout_s: float,
    give_up: threading.Event,
) -> "_Link | None":
    """Connect to one worker and complete the handshake (with retries)."""
    host, port = endpoint
    while not give_up.is_set():
        try:
            sock = socket.create_connection((host, port), timeout=connect_timeout_s)
        except OSError:
            if give_up.wait(0.05):
                return None
            continue
        try:
            sock.settimeout(connect_timeout_s)
            rfile = sock.makefile("r", encoding="utf-8", newline="\n")
            wfile = sock.makefile("w", encoding="utf-8", newline="\n")
            hello = _recv(rfile)
            if (
                hello is None
                or hello.get("type") != "hello"
                or hello.get("protocol") != FABRIC_PROTOCOL
            ):
                raise FabricError(
                    f"worker {host}:{port} spoke an unexpected protocol: {hello!r}"
                )
            link = _Link(
                id=link_id,
                endpoint=f"{host}:{port}",
                sock=sock,
                rfile=rfile,
                wfile=wfile,
                host=str(hello.get("host", "?")),
                pid=int(hello.get("pid", 0)),
            )
            _send(
                wfile,
                link.wlock,
                {
                    "type": "job",
                    "protocol": FABRIC_PROTOCOL,
                    "fn": fn_blob,
                    "spec": spec_blob,
                    "heartbeat_s": heartbeat_s,
                },
            )
            sock.settimeout(None)
            return link
        except (OSError, FabricError):
            try:
                sock.close()
            except OSError:
                pass
            if give_up.wait(0.05):
                return None
    return None


def _join(
    endpoints: "tuple[tuple[str, int], ...]",
    *,
    fn: Callable[[Any], Any],
    spec: Any,
    heartbeat_s: float,
    join_deadline_s: float,
    connect_timeout_s: float,
    span: Any,
) -> "list[_Link]":
    """Dial every endpoint in parallel; return whoever joined in time.

    Endpoints are retried until the join deadline. Once at least one
    worker has joined, stragglers get a short grace period rather than
    the full deadline — a half-up fleet should start sweeping, not wait.
    """
    fn_blob, spec_blob = _pack(fn), _pack(spec)
    give_up = threading.Event()
    joined: "list[_Link]" = []
    joined_lock = threading.Lock()

    def attempt(endpoint: "tuple[str, int]", link_id: int) -> None:
        link = _dial(
            endpoint,
            link_id,
            fn_blob=fn_blob,
            spec_blob=spec_blob,
            heartbeat_s=heartbeat_s,
            connect_timeout_s=connect_timeout_s,
            give_up=give_up,
        )
        if link is not None:
            with joined_lock:
                joined.append(link)

    dialers = [
        threading.Thread(target=attempt, args=(endpoint, index), daemon=True)
        for index, endpoint in enumerate(endpoints)
    ]
    for dialer in dialers:
        dialer.start()
    deadline = time.monotonic() + join_deadline_s
    first_join: "float | None" = None
    grace_s = min(0.25, join_deadline_s / 4.0)
    while time.monotonic() < deadline:
        with joined_lock:
            count = len(joined)
        if count == len(endpoints):
            break
        if count and first_join is None:
            first_join = time.monotonic()
        if first_join is not None and time.monotonic() - first_join > grace_s:
            break
        time.sleep(0.02)
    give_up.set()
    for dialer in dialers:
        dialer.join(timeout=max(connect_timeout_s, 0.1) + 0.5)
    with joined_lock:
        links = sorted(joined, key=lambda link: link.id)
    _WORKERS_JOINED.inc(len(links))
    for link in links:
        span.add_event("worker_joined", worker=link.id, endpoint=link.endpoint, identity=link.label)
    return links


# -- the public sweep entry point ------------------------------------------


def fabric_sweep(
    fn: Callable[[Any], Any],
    points: "Iterable[Any]",
    *,
    workers: "str | Iterable[Any]",
    lease_size: int = DEFAULT_LEASE_SIZE,
    on_error: str = "raise",
    retry: "RetryPolicy | None" = None,
    timeout_s: "float | None" = None,
    checkpoint: Any = None,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    lease_ttl_s: "float | None" = None,
    join_deadline_s: float = DEFAULT_JOIN_DEADLINE_S,
    connect_timeout_s: float = 1.0,
    max_point_crashes: int = DEFAULT_MAX_POINT_CRASHES,
    fallback_executor: str = "process",
    fallback_jobs: "int | None" = None,
) -> SweepResult:
    """Evaluate ``fn`` over ``points`` on a fleet of TCP-connected workers.

    The distributed counterpart of :func:`repro.perf.sweep`, returning
    the same :class:`~repro.perf.engine.SweepResult` (``executor`` is
    ``"fabric"``, ``jobs`` is the number of workers that joined) with
    values in input order, byte-identical to a single-host run of the
    same sweep. ``on_error``/``retry``/``timeout_s`` are the engine's
    failure policies, enforced *on the workers*; under ``"raise"`` the
    coordinator raises :class:`~repro.core.errors.FabricError` for the
    lowest-indexed failing point once the sweep settles.

    ``checkpoint`` should be a
    :class:`~repro.perf.journal.ShardedCheckpoint` (any object with the
    checkpoint interface works): completed points are journalled as
    they arrive, and a resumed call restores them without recomputing.

    If no worker joins within ``join_deadline_s`` the sweep runs
    locally through :func:`repro.perf.sweep` with ``fallback_executor``
    / ``fallback_jobs`` — callers never need a fleet to make progress.
    """
    endpoints = parse_endpoints(workers)
    if lease_size < 1:
        raise ValueError(f"lease_size must be >= 1, got {lease_size}")
    if on_error not in _engine.ON_ERROR_POLICIES:
        raise ValueError(
            f"unknown on_error {on_error!r}: expected one of "
            f"{', '.join(_engine.ON_ERROR_POLICIES)}"
        )
    if retry is not None and on_error != "retry":
        raise ValueError("a retry policy requires on_error='retry'")
    if timeout_s is not None and timeout_s <= 0.0:
        raise ValueError(f"timeout_s must be positive, got {timeout_s}")
    if heartbeat_s <= 0.0:
        raise ValueError(f"heartbeat_s must be positive, got {heartbeat_s}")
    if max_point_crashes < 0:
        raise ValueError(f"max_point_crashes must be >= 0, got {max_point_crashes}")
    ttl_s = (
        lease_ttl_s if lease_ttl_s is not None else heartbeat_s * DEFAULT_LEASE_TTL_BEATS
    )
    if ttl_s <= heartbeat_s:
        raise ValueError(
            f"lease_ttl_s ({ttl_s:g}) must exceed heartbeat_s ({heartbeat_s:g})"
        )
    spec = _engine._EvalSpec(
        on_error=on_error,
        retry=(retry or RetryPolicy()) if on_error == "retry" else None,
        timeout_s=timeout_s,
    )
    indexed: "list[tuple[int, Any]]" = list(enumerate(points))
    _FABRIC_SWEEPS.inc()
    start = time.perf_counter()
    with _trace.span(
        "perf.fabric",
        endpoints=len(endpoints),
        points=len(indexed),
        lease_size=lease_size,
        on_error=on_error,
    ) as span:
        links = _join(
            endpoints,
            fn=fn,
            spec=spec,
            heartbeat_s=heartbeat_s,
            join_deadline_s=join_deadline_s,
            connect_timeout_s=connect_timeout_s,
            span=span,
        )
        if not links:
            _LOCAL_FALLBACKS.inc()
            span.add_event("fallback_local", points=len(indexed), reason="no workers joined")
            return _engine.sweep(
                fn,
                [point for _, point in indexed],
                executor=fallback_executor,
                jobs=fallback_jobs,
                on_error=on_error,
                retry=retry,
                timeout_s=timeout_s,
                checkpoint=checkpoint,
            )
        restored, remaining = _engine._restore_from_checkpoint(checkpoint, indexed)
        if restored:
            span.add_event("resume", restored=len(restored), remaining=len(remaining))
        coordinator = _Coordinator(
            fn,
            remaining,
            links,
            spec=spec,
            checkpoint=checkpoint,
            lease_size=lease_size,
            heartbeat_s=heartbeat_s,
            lease_ttl_s=ttl_s,
            max_point_crashes=max_point_crashes,
            span=span,
        )
        fresh = coordinator.run()
        outcomes = sorted(restored + fresh, key=lambda r: r.index)
        if on_error == "raise":
            first_bad = next((o for o in outcomes if not o.ok), None)
            if first_bad is not None:
                raise FabricError(
                    f"point {first_bad.index} {first_bad.status} on the fabric: "
                    f"{first_bad.error}"
                )
        wall = time.perf_counter() - start
        result = SweepResult(
            values=tuple(r.value for r in outcomes),
            timings=tuple(r.elapsed_s for r in outcomes),
            executor="fabric",
            jobs=len(links),
            chunksize=lease_size,
            wall_s=wall,
            outcomes=tuple(outcomes),
            resumed=len(restored),
            respawns=0,
        )
        span.set_attributes(
            workers=len(links),
            wall_s=result.wall_s,
            point_s=result.point_s,
            resumed=result.resumed,
        )
    _engine._SWEEP_RUNS.inc()
    _engine._SWEEP_POINTS.inc(len(result))
    _engine._SWEEP_WALL.observe(result.wall_s)
    _engine._SWEEP_COMPUTE.observe(result.point_s)
    _engine._observe_outcomes(fresh, restored, 0)
    return result


# -- the worker ------------------------------------------------------------


class FabricWorker:
    """One sweep worker: listen, handshake, evaluate leases, heartbeat.

    Sessions are sequential — one coordinator at a time; further
    coordinators queue in the listen backlog. Inside a session the
    worker asks for work (``ready``), evaluates each leased point under
    the sweep's shipped policy (retries, deadlines), ships results
    back, and heartbeats from a side thread the whole time. A vanished
    coordinator (dead socket mid-session) returns the worker to
    listening — workers outlive the sweeps they serve.

    ``throttle_s`` sleeps before every point evaluation: an operational
    chaos aid for exercising work-stealing, failure detection and the
    chaos CI job against sweeps that would otherwise finish in
    milliseconds. ``heartbeat_override_s`` replaces the
    coordinator-commanded heartbeat interval — set it above the
    coordinator's lease TTL to rehearse the missed-heartbeat expiry
    path without freezing a process.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        throttle_s: float = 0.0,
        heartbeat_override_s: "float | None" = None,
        max_sessions: "int | None" = None,
    ):
        if throttle_s < 0.0:
            raise ValueError(f"throttle_s must be >= 0, got {throttle_s}")
        if max_sessions is not None and max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self._throttle_s = throttle_s
        self._heartbeat_override_s = heartbeat_override_s
        self._max_sessions = max_sessions
        self._closed = threading.Event()
        self._listener = socket.create_server((host, port), backlog=8)

    @property
    def address(self) -> "tuple[str, int]":
        """The actually-bound ``(host, port)`` (port 0 resolves here)."""
        host, port = self._listener.getsockname()[:2]
        return host, port

    def serve_forever(self) -> int:
        """Accept coordinator sessions until closed; returns sessions served."""
        sessions = 0
        while not self._closed.is_set() and (
            self._max_sessions is None or sessions < self._max_sessions
        ):
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed under us
            sessions += 1
            self._serve_session(conn)
        return sessions

    def close(self) -> None:
        """Stop accepting sessions (unblocks :meth:`serve_forever`)."""
        self._closed.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    # -- one coordinator session -----------------------------------------

    def _serve_session(self, conn: socket.socket) -> None:
        """Run one coordinator's sweep until done (or the socket dies)."""
        rfile = conn.makefile("r", encoding="utf-8", newline="\n")
        wfile = conn.makefile("w", encoding="utf-8", newline="\n")
        wlock = threading.Lock()
        stop = threading.Event()
        beat: "threading.Thread | None" = None
        try:
            _send(
                wfile,
                wlock,
                {
                    "type": "hello",
                    "protocol": FABRIC_PROTOCOL,
                    "host": socket.gethostname(),
                    "pid": os.getpid(),
                },
            )
            job = _recv(rfile)
            if job is None or job.get("type") != "job" or job.get("protocol") != FABRIC_PROTOCOL:
                return
            fn = _unpack(job["fn"])
            spec = _unpack(job["spec"])
            interval = (
                self._heartbeat_override_s
                if self._heartbeat_override_s is not None
                else float(job["heartbeat_s"])
            )
            worker_spec = _engine._EvalSpec(
                # Workers never raise: under "raise" the coordinator owns
                # the deterministic lowest-index raise, so failures ship
                # back as structured outcomes instead.
                on_error="skip" if spec.on_error == "raise" else spec.on_error,
                retry=spec.retry,
                timeout_s=spec.timeout_s,
            )
            beat = threading.Thread(
                target=self._heartbeat_loop,
                args=(wfile, wlock, stop, interval),
                name="fabric-heartbeat",
                daemon=True,
            )
            beat.start()
            self._work_loop(rfile, wfile, wlock, fn, worker_spec)
        except (OSError, ValueError, EOFError, FabricError):
            pass  # the coordinator vanished; go back to listening
        finally:
            stop.set()
            if beat is not None:
                beat.join(timeout=1.0)
            for stream in (rfile, wfile):
                try:
                    stream.close()
                except OSError:
                    pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def _work_loop(
        self,
        rfile: Any,
        wfile: Any,
        wlock: threading.Lock,
        fn: Callable[[Any], Any],
        spec: Any,
    ) -> None:
        """ready → lease → evaluate → result, until the coordinator says done."""
        while True:
            _send(wfile, wlock, {"type": "ready"})
            frame = _recv(rfile)
            if frame is None or frame["type"] == "done":
                return
            if frame["type"] == "wait":
                time.sleep(float(frame["delay_s"]))
                continue
            if frame["type"] != "lease":
                raise FabricError(f"unexpected {frame['type']!r} frame from coordinator")
            pairs = _unpack(frame["points"])
            outcomes = []
            for index, point in pairs:
                if self._throttle_s:
                    time.sleep(self._throttle_s)
                outcomes.append(_engine._eval_point(fn, index, point, spec))
            _send(
                wfile,
                wlock,
                {"type": "result", "id": frame["id"], "outcomes": _pack(outcomes)},
            )

    @staticmethod
    def _heartbeat_loop(
        wfile: Any, wlock: threading.Lock, stop: threading.Event, interval: float
    ) -> None:
        """Prove liveness every ``interval`` seconds until the session ends."""
        while not stop.wait(interval):
            try:
                _send(wfile, wlock, {"type": "heartbeat"})
            except OSError:
                return
