"""The distributed sweep fabric: one sweep, many hosts, zero lost points.

:func:`fabric_sweep` is the multi-host sibling of
:func:`repro.perf.engine.sweep`: the same pure-function-over-points
contract, the same :class:`~repro.perf.engine.PointResult` outcome
taxonomy, the same deterministic input-order results — but the points
are evaluated by *worker processes on other hosts*, connected over
plain TCP (stdlib only, like everything else in this package).

Topology
--------

Workers are servers; the coordinator dials them::

    repro-taxonomy sweep-worker --listen 0.0.0.0:7070     # on each host
    repro-taxonomy costs --workers hostA:7070,hostB:7070  # coordinator

The coordinator shards the point grid into *leases* (``lease_size``
points each), hands leases to workers as they ask for work, and tracks
every lease against its worker's heartbeat. The design is
robustness-first, because at fleet scale worker death is the normal
case, not the exception:

* **failure detection** — a dead socket (the worker was SIGKILLed, its
  host rebooted) or a missed heartbeat (``lease_ttl_s`` without a sign
  of life — the worker is wedged or partitioned) expires the worker:
  every point it held is re-queued and evaluated elsewhere;
* **elastic membership** — a lost endpoint is not lost capacity: the
  coordinator re-dials it with seeded exponential backoff + jitter
  (:class:`MembershipPolicy`), and an optional listen socket lets
  brand-new workers *register* mid-sweep (``listen=``) — late joins and
  rejoins are issued leases immediately;
* **quarantine** — a per-worker health ledger (consecutive losses,
  crash-budget spend, heartbeat gap) spots flapping workers; past
  ``quarantine_losses`` consecutive losses a worker sits out a
  geometric probation (mirroring the serve circuit breaker) and is
  ejected for good once it exhausts ``max_quarantines``;
* **adaptive leases** — each worker's observed points/sec (EWMA) sizes
  its next lease between ``lease_size`` and ``max_lease_size``, so
  stragglers stop hoarding work and fast workers stop round-tripping;
* **work-stealing** — an idle worker with nothing left in the queue
  duplicates the oldest outstanding lease of a straggler; the first
  result for a point wins and later duplicates are discarded, which is
  sound because point functions are pure;
* **bounded crash retry** — a point whose holder died is re-queued at
  most ``max_point_crashes`` times; past that it is treated as a
  *poison point* (the same identification PR 4's single-host engine
  performs) and finished through the engine's last-resort path instead
  of wedging the fleet;
* **graceful degradation** — if no worker joins within
  ``join_deadline_s``, or every worker is lost and none can possibly
  return within a lease TTL, the coordinator finishes the remaining
  points locally: a lost fleet costs wall-clock, never a lost sweep;
* **checkpointing** — pass a
  :class:`~repro.perf.journal.ShardedCheckpoint` and every completed
  point is fsync-journalled into its index's home shard as results
  arrive; a killed coordinator resumes bit-identically, exactly like
  the single-host ``--resume``.

Results are byte-identical to a single-host run: outcomes are keyed by
point index, values are whatever the pure point function returns, and
the fabric's scheduling (which worker, in what order, stolen, rejoined
or not) leaves no trace in the output.

Fleet health (state per endpoint, rejoin counts, lease latency) is
published through :func:`fleet_health` and ``fabric.*`` gauges so the
serve plane's ``/v1/readyz`` — and any orchestrator scraping it — can
watch the fleet breathe.

Trust model: the worker executes a function object shipped by whoever
connects to it — the same trust level as unpickling a checkpoint
journal. Bind workers to loopback or a network you trust.
"""

from __future__ import annotations

import base64
import copy
import json
import os
import pickle
import random
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.core.errors import FabricError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.perf import engine as _engine
from repro.perf.engine import PointResult, RetryPolicy, SweepResult

__all__ = [
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_JOIN_DEADLINE_S",
    "DEFAULT_LEASE_SIZE",
    "DEFAULT_MAX_POINT_CRASHES",
    "FABRIC_PROTOCOL",
    "FABRIC_PROTOCOLS",
    "MembershipPolicy",
    "WORKER_ENV",
    "FabricWorker",
    "fabric_sweep",
    "fleet_health",
    "parse_endpoints",
]

#: Protocol tag this build speaks natively (offered in every handshake).
FABRIC_PROTOCOL = "repro-sweep-fabric/2"

#: Protocol tags the coordinator accepts, newest first. A v1 worker's
#: hello is answered with a v1 job frame (the coordinator echoes the
#: worker's protocol), so old fleets keep working against new drivers.
FABRIC_PROTOCOLS = ("repro-sweep-fabric/2", "repro-sweep-fabric/1")

#: Environment variable set to ``"1"`` inside ``sweep-worker`` processes,
#: so point functions can tell whether they run on a worker or locally.
WORKER_ENV = "REPRO_SWEEP_WORKER"

#: Points per lease. Small leases keep re-queue cost and steal
#: granularity low; raise it only when points are very cheap.
DEFAULT_LEASE_SIZE = 1

#: Seconds a worker may go silent before its leases expire (multiples
#: of the heartbeat interval; see :func:`fabric_sweep`).
DEFAULT_LEASE_TTL_BEATS = 4

#: Default worker heartbeat interval in seconds.
DEFAULT_HEARTBEAT_S = 0.5

#: How long the coordinator waits for workers before degrading to
#: local execution.
DEFAULT_JOIN_DEADLINE_S = 2.0

#: Times a point may crash (lose) its worker before it is treated as
#: poison and finished through the last-resort path.
DEFAULT_MAX_POINT_CRASHES = 2

_FABRIC_SWEEPS = _metrics.REGISTRY.counter(
    "fabric.sweeps", help="fabric_sweep() invocations (including local fallbacks)"
)
_WORKERS_JOINED = _metrics.REGISTRY.counter(
    "fabric.workers_joined", help="workers that completed the join handshake"
)
_WORKERS_LOST = _metrics.REGISTRY.counter(
    "fabric.workers_lost", help="workers lost mid-sweep (dead socket or expired lease)"
)
_WORKERS_REJOINED = _metrics.REGISTRY.counter(
    "fabric.workers_rejoined", help="lost endpoints re-admitted after a successful re-dial"
)
_LATE_JOINS = _metrics.REGISTRY.counter(
    "fabric.late_joins", help="workers that registered on the listen socket mid-sweep"
)
_WORKERS_QUARANTINED = _metrics.REGISTRY.counter(
    "fabric.workers_quarantined", help="flapping workers put on re-admission probation"
)
_WORKERS_EJECTED = _metrics.REGISTRY.counter(
    "fabric.workers_ejected", help="workers ejected after exhausting their quarantine budget"
)
_LEASES_EXPIRED = _metrics.REGISTRY.counter(
    "fabric.leases_expired", help="leases expired by missed heartbeats"
)
_POINTS_STOLEN = _metrics.REGISTRY.counter(
    "fabric.points_stolen", help="straggler points duplicated onto idle workers"
)
_POINTS_REQUEUED = _metrics.REGISTRY.counter(
    "fabric.points_requeued", help="points re-queued after their worker was lost"
)
_POINTS_RESPAWNED = _metrics.REGISTRY.counter(
    "fabric.poison_points", help="points that exhausted their crash budget"
)
_LOCAL_FALLBACKS = _metrics.REGISTRY.counter(
    "fabric.local_fallbacks", help="sweeps (or sweep tails) finished locally for lack of workers"
)
_LIVE_WORKERS = _metrics.REGISTRY.gauge(
    "fabric.live_workers", help="workers currently holding a live fabric session"
)
_QUARANTINED_WORKERS = _metrics.REGISTRY.gauge(
    "fabric.quarantined_workers", help="workers currently sitting out a probation window"
)
_PENDING_POINTS = _metrics.REGISTRY.gauge(
    "fabric.pending_points", help="points queued and not yet leased (scale on this)"
)
_LEASE_LATENCY = _metrics.REGISTRY.histogram(
    "fabric.lease_latency_s", help="seconds from lease issue to its result frame"
)


# -- wire helpers ----------------------------------------------------------


def parse_endpoints(value: "str | Iterable[Any]") -> "tuple[tuple[str, int], ...]":
    """Normalise worker endpoints into ``(host, port)`` pairs.

    Accepts the CLI's comma-separated string or any iterable of
    ``"host:port"`` strings / ``(host, port)`` pairs.

        >>> parse_endpoints("127.0.0.1:7070, hostB:7071")
        (('127.0.0.1', 7070), ('hostB', 7071))
        >>> parse_endpoints([("hostA", 9000)])
        (('hostA', 9000),)
    """
    if isinstance(value, str):
        tokens: "list[Any]" = [t.strip() for t in value.split(",") if t.strip()]
    else:
        tokens = list(value)
    endpoints: list[tuple[str, int]] = []
    for token in tokens:
        if isinstance(token, str):
            host, _, port_text = token.rpartition(":")
            if not host or not port_text.isdigit():
                raise FabricError(
                    f"worker endpoint must look like HOST:PORT, got {token!r}"
                )
            endpoints.append((host, int(port_text)))
        else:
            host, port = token
            endpoints.append((str(host), int(port)))
    if not endpoints:
        raise FabricError("at least one worker endpoint is required")
    return tuple(endpoints)


def _pack(obj: Any) -> str:
    """Pickle ``obj`` and wrap it for transport inside a JSON frame."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def _unpack(text: str) -> Any:
    """Inverse of :func:`_pack`."""
    return pickle.loads(base64.b64decode(text))


def _send(wfile: Any, wlock: threading.Lock, message: "dict[str, Any]") -> None:
    """Write one newline-delimited JSON frame (thread-safe per link)."""
    line = json.dumps(message, sort_keys=True)
    with wlock:
        wfile.write(line + "\n")
        wfile.flush()


def _recv(rfile: Any) -> "dict[str, Any] | None":
    """Read one frame; ``None`` on a closed connection."""
    line = rfile.readline()
    if not line:
        return None
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as error:
        raise FabricError(f"malformed fabric frame: {line[:80]!r}") from error
    if not isinstance(frame, dict) or "type" not in frame:
        raise FabricError(f"fabric frame without a type: {line[:80]!r}")
    return frame


# -- membership policy -----------------------------------------------------


@dataclass(frozen=True)
class MembershipPolicy:
    """How the coordinator heals, polices and prunes fleet membership.

    Two seeded-geometric schedules (the same deterministic shape the
    serve :class:`~repro.serve.breaker.BreakerPolicy` uses for its
    recovery intervals) drive the two halves of the lifecycle:

    * **rejoin** — a lost endpoint is re-dialed after
      ``rejoin_backoff_s``, doubling (``rejoin_factor``) per failed
      dial up to ``max_rejoin_backoff_s``; ``max_dial_failures``
      consecutive connection failures write the endpoint off as
      unreachable. ``rejoin_backoff_s = 0`` disables re-dialing
      entirely (the pre-elastic fabric's behaviour).
    * **quarantine** — ``quarantine_losses`` consecutive session losses
      (or any loss while on probation) quarantine the worker for
      ``probation_s``, doubling per quarantine up to
      ``max_probation_s``; more than ``max_quarantines`` quarantines
      eject it for the rest of the sweep.

    Jitter is deterministic: ``seed`` is hash-mixed with the endpoint
    ordinal and attempt number, so a membership schedule replays
    identically — which is what lets hypothesis pin the determinism
    contract over join/leave/quarantine interleavings.
    """

    rejoin_backoff_s: float = 0.25
    rejoin_factor: float = 2.0
    rejoin_jitter: float = 0.25
    max_rejoin_backoff_s: float = 2.0
    max_dial_failures: int = 3
    quarantine_losses: int = 3
    probation_s: float = 1.0
    probation_factor: float = 2.0
    max_probation_s: float = 30.0
    max_quarantines: int = 2
    seed: int = 0

    def __post_init__(self):
        """Validate the knobs; raises :class:`ValueError` on nonsense."""
        if self.rejoin_backoff_s < 0.0:
            raise ValueError(
                f"rejoin_backoff_s must be >= 0, got {self.rejoin_backoff_s}"
            )
        if self.rejoin_factor < 1.0:
            raise ValueError(f"rejoin_factor must be >= 1, got {self.rejoin_factor}")
        if not 0.0 <= self.rejoin_jitter <= 1.0:
            raise ValueError(
                f"rejoin_jitter must be within [0, 1], got {self.rejoin_jitter}"
            )
        if self.max_rejoin_backoff_s < self.rejoin_backoff_s:
            raise ValueError(
                f"max_rejoin_backoff_s ({self.max_rejoin_backoff_s:g}) must be >= "
                f"rejoin_backoff_s ({self.rejoin_backoff_s:g})"
            )
        if self.max_dial_failures < 1:
            raise ValueError(
                f"max_dial_failures must be >= 1, got {self.max_dial_failures}"
            )
        if self.quarantine_losses < 1:
            raise ValueError(
                f"quarantine_losses must be >= 1, got {self.quarantine_losses}"
            )
        if self.probation_s <= 0.0:
            raise ValueError(f"probation_s must be positive, got {self.probation_s}")
        if self.probation_factor < 1.0:
            raise ValueError(
                f"probation_factor must be >= 1, got {self.probation_factor}"
            )
        if self.max_probation_s < self.probation_s:
            raise ValueError(
                f"max_probation_s ({self.max_probation_s:g}) must be >= "
                f"probation_s ({self.probation_s:g})"
            )
        if self.max_quarantines < 0:
            raise ValueError(
                f"max_quarantines must be >= 0, got {self.max_quarantines}"
            )

    def _noise(self, *salts: int) -> float:
        """Deterministic jitter in ``[0, 1)`` from the seed and salts."""
        mixed = (self.seed & 0xFFFFFFFF) * 0x9E3779B1
        for salt in salts:
            mixed = (mixed ^ (mixed >> 16)) * 0x85EBCA6B + salt
        return random.Random(mixed & 0xFFFFFFFFFFFFFFFF).random()

    def rejoin_delay_s(self, ordinal: int, attempt: int) -> float:
        """Seconds before re-dial ``attempt`` (1-based) of endpoint ``ordinal``."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        base = min(
            self.rejoin_backoff_s * self.rejoin_factor ** (attempt - 1),
            self.max_rejoin_backoff_s,
        )
        return base * (1.0 + self.rejoin_jitter * self._noise(ordinal + 1, attempt))

    def probation_delay_s(self, ordinal: int, quarantine_count: int) -> float:
        """Seconds quarantine ``quarantine_count`` (1-based) sidelines the worker."""
        if quarantine_count < 1:
            raise ValueError(f"quarantine_count is 1-based, got {quarantine_count}")
        base = min(
            self.probation_s * self.probation_factor ** (quarantine_count - 1),
            self.max_probation_s,
        )
        return base * (
            1.0 + self.rejoin_jitter * self._noise(-(ordinal + 1), quarantine_count)
        )


@dataclass
class _EndpointHealth:
    """The coordinator's health ledger entry for one worker identity.

    States: ``connecting`` (a dial is in flight), ``live`` (session up),
    ``lost`` (awaiting a rejoin backoff), ``quarantined`` (flapping —
    sitting out probation), ``unreachable`` (dial budget exhausted, or
    an inbound registration that cannot be re-dialed), ``ejected``
    (quarantine budget exhausted; out for the rest of the sweep).
    """

    ordinal: int
    endpoint: str
    addr: "tuple[str, int] | None"
    state: str = "connecting"
    link_id: "int | None" = None
    label: str = "?"
    losses: int = 0
    consecutive_losses: int = 0
    dial_failures: int = 0
    rejoins: int = 0
    quarantines: int = 0
    crash_spend: int = 0
    probation: bool = False
    gap_ewma_s: float = 0.0
    rate_ewma: float = 0.0
    next_attempt: float = 0.0
    dialing: bool = False

    def snapshot(self) -> "dict[str, Any]":
        """A JSON-safe view of this entry for :func:`fleet_health`."""
        return {
            "endpoint": self.endpoint,
            "identity": self.label,
            "state": self.state,
            "losses": self.losses,
            "consecutive_losses": self.consecutive_losses,
            "dial_failures": self.dial_failures,
            "rejoins": self.rejoins,
            "quarantines": self.quarantines,
            "crash_spend": self.crash_spend,
            "probation": self.probation,
            "heartbeat_gap_s": round(self.gap_ewma_s, 4),
            "points_per_s": round(self.rate_ewma, 3),
        }


# -- fleet health ----------------------------------------------------------

_FLEET_LOCK = threading.Lock()
_FLEET: "dict[str, Any]" = {"active": False, "workers": []}


def fleet_health() -> "dict[str, Any]":
    """A snapshot of the most recent (or in-flight) fabric sweep's fleet.

    ``{"active": bool, "workers": [ledger entries], "counts": {state:
    n}, "points": {"total", "done", "pending"}, "rejoins",
    "late_joins", "lease": {...}}``. Published once per coordinator
    tick; after the sweep ends the final tallies stay readable with
    ``active`` false. Concurrent sweeps overwrite each other — the
    serve plane runs one fabric sweep at a time, which is the intended
    consumer (``/v1/readyz``).
    """
    with _FLEET_LOCK:
        return copy.deepcopy(_FLEET)


def _publish(snapshot: "dict[str, Any]") -> None:
    """Replace the module-level fleet snapshot atomically."""
    with _FLEET_LOCK:
        _FLEET.clear()
        _FLEET.update(snapshot)


# -- coordinator -----------------------------------------------------------


@dataclass
class _Link:
    """One connected worker, as the coordinator sees it."""

    id: int
    endpoint: str
    sock: socket.socket
    rfile: Any
    wfile: Any
    host: str = "?"
    pid: int = 0
    wlock: threading.Lock = field(default_factory=threading.Lock)
    last_seen: float = field(default_factory=time.monotonic)
    lost: bool = False
    rate_ewma: float = 0.0
    gap_ewma_s: float = 0.0

    @property
    def label(self) -> str:
        """``host:pid`` identity for spans and diagnostics."""
        return f"{self.host}:{self.pid}"


@dataclass
class _Lease:
    """One batch of points out with a worker."""

    id: int
    worker: int
    pairs: "list[tuple[int, Any]]"
    issued: float
    stolen: bool = False


def _handshake(
    sock: socket.socket,
    endpoint: str,
    link_id: int,
    *,
    fn_blob: str,
    spec_blob: str,
    heartbeat_s: float,
    lease_ttl_s: float,
    timeout_s: float,
) -> _Link:
    """Complete the coordinator side of the handshake on a raw socket.

    The worker speaks first (hello) on *both* the dial and the
    registration path, which is what makes inbound registration a
    one-line reuse of this function. The job frame echoes whichever
    protocol the worker offered, so v1 workers — which check for an
    exact protocol match — keep working. Raises :class:`OSError` or
    :class:`FabricError`; the caller owns closing the socket then.
    """
    sock.settimeout(timeout_s)
    rfile = sock.makefile("r", encoding="utf-8", newline="\n")
    wfile = sock.makefile("w", encoding="utf-8", newline="\n")
    hello = _recv(rfile)
    if (
        hello is None
        or hello.get("type") != "hello"
        or hello.get("protocol") not in FABRIC_PROTOCOLS
    ):
        raise FabricError(
            f"worker {endpoint} spoke an unexpected protocol: {hello!r}"
        )
    link = _Link(
        id=link_id,
        endpoint=endpoint,
        sock=sock,
        rfile=rfile,
        wfile=wfile,
        host=str(hello.get("host", "?")),
        pid=int(hello.get("pid", 0)),
    )
    _send(
        wfile,
        link.wlock,
        {
            "type": "job",
            "protocol": str(hello.get("protocol")),
            "fn": fn_blob,
            "spec": spec_blob,
            "heartbeat_s": heartbeat_s,
            "lease_ttl_s": lease_ttl_s,
        },
    )
    sock.settimeout(None)
    return link


def _dial_once(
    endpoint: "tuple[str, int]",
    link_id: int,
    *,
    fn_blob: str,
    spec_blob: str,
    heartbeat_s: float,
    lease_ttl_s: float,
    timeout_s: float,
) -> _Link:
    """One connection + handshake attempt; raises on any failure."""
    host, port = endpoint
    sock = socket.create_connection((host, port), timeout=timeout_s)
    try:
        return _handshake(
            sock,
            f"{host}:{port}",
            link_id,
            fn_blob=fn_blob,
            spec_blob=spec_blob,
            heartbeat_s=heartbeat_s,
            lease_ttl_s=lease_ttl_s,
            timeout_s=timeout_s,
        )
    except (OSError, FabricError):
        try:
            sock.close()
        except OSError:
            pass
        raise


class _Coordinator:
    """Shard, lease, watch, steal, heal, merge — the fabric's control loop.

    One instance drives one sweep. Reader threads (one per worker link)
    handle the message traffic; the caller's thread runs :meth:`run`,
    which polices heartbeats, re-dials lost endpoints, admits
    late-registering workers, finishes poison points, and degrades to
    local execution when the fleet is gone for good. All shared state
    is guarded by one lock — the fabric's scale ceiling is network
    round-trips, not this lock.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        pairs: "list[tuple[int, Any]]",
        links: "list[_Link]",
        *,
        endpoints: "tuple[tuple[str, int], ...]",
        fn_blob: str,
        spec_blob: str,
        spec: Any,
        checkpoint: Any,
        lease_size: int,
        max_lease_size: int,
        heartbeat_s: float,
        lease_ttl_s: float,
        max_point_crashes: int,
        policy: MembershipPolicy,
        listener: "socket.socket | None",
        connect_timeout_s: float,
        span: Any,
    ):
        self._fn = fn
        self._fn_blob = fn_blob
        self._spec_blob = spec_blob
        self._spec = spec
        self._checkpoint = checkpoint
        self._lease_size = lease_size
        self._max_lease_size = max_lease_size
        self._heartbeat_s = heartbeat_s
        self._lease_ttl_s = lease_ttl_s
        self._max_point_crashes = max_point_crashes
        self._policy = policy
        self._listener = listener
        self._connect_timeout_s = connect_timeout_s
        self._span = span
        self._total = len(pairs)
        self._lock = threading.Lock()
        self._pending: "deque[tuple[int, Any]]" = deque(pairs)
        self._leases: dict[int, _Lease] = {}
        self._covered: dict[int, int] = {}
        self._results: dict[int, PointResult] = {}
        self._crashes: dict[int, int] = {}
        self._poison: "list[tuple[int, Any]]" = []
        self._poisoned: set[int] = set()
        self._links: dict[int, _Link] = {link.id: link for link in links}
        self._lease_seq = 0
        self._latency_ewma_s = 0.0
        self._late_joins = 0
        self._complete = threading.Event()
        self._tick_s = max(0.01, min(0.05, heartbeat_s / 4.0))
        self._readers: "list[threading.Thread]" = []
        # The health ledger: one entry per dialable endpoint up front
        # (ordinal == join-time link id), grown by registrations.
        now = time.monotonic()
        self._health: "list[_EndpointHealth]" = []
        self._health_by_link: "dict[int, _EndpointHealth]" = {}
        for ordinal, (host, port) in enumerate(endpoints):
            health = _EndpointHealth(
                ordinal=ordinal, endpoint=f"{host}:{port}", addr=(host, port)
            )
            link = self._links.get(ordinal)
            if link is not None:
                health.state = "live"
                health.link_id = ordinal
                health.label = link.label
                self._health_by_link[ordinal] = health
            elif policy.rejoin_backoff_s <= 0.0:
                health.state = "unreachable"
            else:
                health.state = "lost"
                health.next_attempt = now + policy.rejoin_delay_s(ordinal, 1)
            self._health.append(health)
        self._link_seq = len(endpoints)

    # -- lifecycle -------------------------------------------------------

    def run(self) -> "list[PointResult]":
        """Drive the sweep to completion; returns fresh outcomes."""
        for link in self._links.values():
            self._start_reader(link)
        if self._listener is not None:
            threading.Thread(
                target=self._accept_loop, name="fabric-accept", daemon=True
            ).start()
        try:
            if self._total == 0:
                self._complete.set()
            while not self._complete.is_set():
                self._complete.wait(self._tick_s)
                self._expire_stale_links()
                self._finish_poison_points()
                self._membership_tick()
                self._publish_fleet()
                with self._lock:
                    done = len(self._results) >= self._total
                    possible = self._workers_possible(time.monotonic())
                if done:
                    self._complete.set()
                elif not possible and not self._poison:
                    self._finish_locally()
        finally:
            self._complete.set()
            self._close_listener()
            self._shutdown_links()
            self._publish_fleet(active=False)
        with self._lock:
            readers = list(self._readers)
        for reader in readers:
            reader.join(timeout=2.0)
        with self._lock:
            return sorted(self._results.values(), key=lambda r: r.index)

    def _start_reader(self, link: _Link) -> None:
        """Spin up (and track) the reader thread for one link."""
        reader = threading.Thread(
            target=self._read_loop,
            args=(link,),
            name=f"fabric-worker-{link.id}",
            daemon=True,
        )
        with self._lock:
            self._readers.append(reader)
        reader.start()

    def _close_listener(self) -> None:
        """Stop accepting registrations (best effort)."""
        if self._listener is None:
            return
        try:
            self._listener.close()
        except OSError:
            pass

    def _shutdown_links(self) -> None:
        """Best-effort ``done`` + close on every link that is still up."""
        for link in list(self._links.values()):
            if link.lost:
                continue
            try:
                _send(link.wfile, link.wlock, {"type": "done"})
            except OSError:
                pass
            self._sever(link)

    @staticmethod
    def _sever(link: _Link) -> None:
        """Tear a link's socket down, unblocking its reader thread."""
        try:
            link.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            link.sock.close()
        except OSError:
            pass

    # -- elastic membership ----------------------------------------------

    def _workers_possible(self, now: float) -> bool:
        """Could any worker still produce results? (lock held).

        True while a link is live, a dial is in flight, or a lost /
        quarantined endpoint's next re-dial lands within one lease TTL
        — the horizon past which waiting costs more than finishing the
        tail locally.
        """
        if any(not link.lost for link in self._links.values()):
            return True
        for health in self._health:
            if health.dialing or health.state == "connecting":
                return True
            if (
                health.addr is not None
                and health.state in ("lost", "quarantined")
                and health.next_attempt <= now + self._lease_ttl_s
            ):
                return True
        return False

    def _membership_tick(self) -> None:
        """Schedule re-dials for every endpoint whose backoff has lapsed."""
        now = time.monotonic()
        due: "list[tuple[_EndpointHealth, int]]" = []
        with self._lock:
            if self._complete.is_set():
                return
            for health in self._health:
                if health.dialing or health.addr is None:
                    continue
                if health.state not in ("lost", "quarantined"):
                    continue
                if health.next_attempt > now:
                    continue
                if health.state == "quarantined":
                    health.probation = True
                health.dialing = True
                health.state = "connecting"
                self._link_seq += 1
                due.append((health, self._link_seq))
        for health, link_id in due:
            threading.Thread(
                target=self._redial,
                args=(health, link_id),
                name=f"fabric-redial-{health.ordinal}",
                daemon=True,
            ).start()

    def _redial(self, health: _EndpointHealth, link_id: int) -> None:
        """One re-dial attempt for a lost endpoint (own thread)."""
        try:
            link = _dial_once(
                health.addr,  # type: ignore[arg-type]
                link_id,
                fn_blob=self._fn_blob,
                spec_blob=self._spec_blob,
                heartbeat_s=self._heartbeat_s,
                lease_ttl_s=self._lease_ttl_s,
                timeout_s=self._connect_timeout_s,
            )
        except (OSError, FabricError):
            self._redial_failed(health)
            return
        if not self._admit(link, health, event="worker_rejoined"):
            return

    def _redial_failed(self, health: _EndpointHealth) -> None:
        """Bookkeeping after a failed re-dial: back off or write off."""
        unreachable = False
        with self._lock:
            health.dialing = False
            health.dial_failures += 1
            if health.dial_failures >= self._policy.max_dial_failures:
                health.state = "unreachable"
                unreachable = True
            else:
                health.state = "lost"
                health.next_attempt = time.monotonic() + self._policy.rejoin_delay_s(
                    health.ordinal, health.dial_failures + 1
                )
        if unreachable and not self._complete.is_set():
            self._span.add_event(
                "worker_unreachable",
                endpoint=health.endpoint,
                dial_failures=health.dial_failures,
            )

    def _admit(self, link: _Link, health: _EndpointHealth, *, event: str,
               start_reader: bool = True) -> bool:
        """Register a freshly-handshaken link (rejoin or late join)."""
        with self._lock:
            if self._complete.is_set():
                health.dialing = False
                if health.state == "connecting":
                    health.state = "lost"
                self._sever(link)
                return False
            self._links[link.id] = link
            self._health_by_link[link.id] = health
            health.link_id = link.id
            health.label = link.label
            health.state = "live"
            health.dialing = False
            health.dial_failures = 0
            if event == "worker_rejoined":
                health.rejoins += 1
            else:
                self._late_joins += 1
        _WORKERS_JOINED.inc()
        if event == "worker_rejoined":
            _WORKERS_REJOINED.inc()
        else:
            _LATE_JOINS.inc()
        self._span.add_event(
            event, worker=link.id, endpoint=link.endpoint, identity=link.label
        )
        if start_reader:
            self._start_reader(link)
        return True

    def _accept_loop(self) -> None:
        """Accept inbound worker registrations until the sweep settles."""
        while not self._complete.is_set():
            try:
                conn, _ = self._listener.accept()  # type: ignore[union-attr]
            except OSError:
                return  # listener closed under us
            threading.Thread(
                target=self._admit_registration,
                args=(conn,),
                name="fabric-register",
                daemon=True,
            ).start()

    def _admit_registration(self, conn: socket.socket) -> None:
        """Handshake one inbound registration and admit it as a late join."""
        try:
            peer = conn.getpeername()
            endpoint = f"{peer[0]}:{peer[1]}"
        except OSError:
            endpoint = "registered:?"
        with self._lock:
            self._link_seq += 1
            link_id = self._link_seq
        try:
            link = _handshake(
                conn,
                endpoint,
                link_id,
                fn_blob=self._fn_blob,
                spec_blob=self._spec_blob,
                heartbeat_s=self._heartbeat_s,
                lease_ttl_s=self._lease_ttl_s,
                timeout_s=self._connect_timeout_s,
            )
        except (OSError, FabricError):
            try:
                conn.close()
            except OSError:
                pass
            return
        # Inbound workers have no dialable address: if the session is
        # lost it is gone unless it registers again of its own accord.
        with self._lock:
            health = _EndpointHealth(
                ordinal=len(self._health), endpoint=endpoint, addr=None
            )
            self._health.append(health)
        self._admit(link, health, event="late_join")

    def _publish_fleet(self, *, active: bool = True) -> None:
        """Refresh :func:`fleet_health` and the fleet gauges."""
        with self._lock:
            counts: "dict[str, int]" = {}
            for health in self._health:
                counts[health.state] = counts.get(health.state, 0) + 1
            snapshot = {
                "active": active,
                "workers": [health.snapshot() for health in self._health],
                "counts": counts,
                "points": {
                    "total": self._total,
                    "done": len(self._results),
                    "pending": len(self._pending),
                },
                "rejoins": sum(health.rejoins for health in self._health),
                "late_joins": self._late_joins,
                "lease": {
                    "latency_ewma_s": round(self._latency_ewma_s, 6),
                    "size_min": self._lease_size,
                    "size_max": self._max_lease_size,
                },
            }
            pending = len(self._pending)
        if active:
            _LIVE_WORKERS.set(counts.get("live", 0))
            _QUARANTINED_WORKERS.set(counts.get("quarantined", 0))
            _PENDING_POINTS.set(pending)
        else:
            _LIVE_WORKERS.set(0)
            _QUARANTINED_WORKERS.set(0)
            _PENDING_POINTS.set(0)
        _publish(snapshot)

    # -- per-link reader -------------------------------------------------

    def _read_loop(self, link: _Link) -> None:
        """Handle one worker's traffic until it finishes or is lost."""
        reason = "connection closed"
        try:
            while not self._complete.is_set():
                frame = _recv(link.rfile)
                if frame is None:
                    break
                now = time.monotonic()
                gap = now - link.last_seen
                link.gap_ewma_s = (
                    gap if link.gap_ewma_s <= 0.0 else 0.8 * link.gap_ewma_s + 0.2 * gap
                )
                link.last_seen = now
                kind = frame["type"]
                if kind == "heartbeat":
                    continue
                if kind == "ready":
                    self._offer_work(link)
                elif kind == "result":
                    self._accept_result(link, frame)
                else:
                    reason = f"unexpected {kind!r} frame"
                    break
        except (OSError, ValueError, FabricError) as error:
            reason = repr(error)
        finally:
            self._lose_worker(link, reason)

    def _offer_work(self, link: _Link) -> None:
        """Answer a ``ready``: a lease, a stolen lease, a wait, or done."""
        with self._lock:
            if len(self._results) >= self._total:
                reply: "dict[str, Any]" = {"type": "done"}
            else:
                chunk = self._next_chunk(link)
                if chunk is None:
                    reply = {"type": "wait", "delay_s": round(self._tick_s * 2, 4)}
                else:
                    reply = {
                        "type": "lease",
                        "id": chunk.id,
                        "points": _pack(chunk.pairs),
                    }
        try:
            _send(link.wfile, link.wlock, reply)
        except OSError:
            self._lose_worker(link, "send failed")

    def _lease_target(self, link: _Link) -> int:
        """Points to lease this worker now: rate EWMA × two heartbeats.

        With ``max_lease_size == lease_size`` (the default) this is the
        fixed pre-elastic behaviour; otherwise a worker that proved it
        can chew N points/sec is handed roughly two heartbeats' worth,
        clamped into ``[lease_size, max_lease_size]``.
        """
        if self._max_lease_size <= self._lease_size or link.rate_ewma <= 0.0:
            return self._lease_size
        target = int(link.rate_ewma * 2.0 * self._heartbeat_s)
        return max(self._lease_size, min(self._max_lease_size, target))

    def _next_chunk(self, link: _Link) -> "_Lease | None":
        """Pop a fresh lease, or steal from a straggler (lock held)."""
        pairs: "list[tuple[int, Any]]" = []
        limit = self._lease_target(link)
        while self._pending and len(pairs) < limit:
            index, point = self._pending.popleft()
            if index not in self._results:
                pairs.append((index, point))
        stolen = False
        if not pairs:
            victim = self._steal_candidate(link)
            if victim is None:
                return None
            pairs = [
                (index, point)
                for index, point in victim.pairs
                if index not in self._results and self._covered.get(index, 0) < 2
            ]
            if not pairs:
                return None
            stolen = True
            _POINTS_STOLEN.inc(len(pairs))
            self._span.add_event(
                "steal",
                points=len(pairs),
                from_worker=victim.worker,
                to_worker=link.id,
            )
        self._lease_seq += 1
        lease = _Lease(
            id=self._lease_seq,
            worker=link.id,
            pairs=pairs,
            issued=time.monotonic(),
            stolen=stolen,
        )
        self._leases[lease.id] = lease
        for index, _ in pairs:
            self._covered[index] = self._covered.get(index, 0) + 1
        return lease

    def _steal_candidate(self, thief: _Link) -> "_Lease | None":
        """The oldest outstanding lease held by a *different* worker."""
        candidates = [
            lease
            for lease in self._leases.values()
            if lease.worker != thief.id
            and any(
                index not in self._results and self._covered.get(index, 0) < 2
                for index, _ in lease.pairs
            )
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda lease: lease.issued)

    def _accept_result(self, link: _Link, frame: "dict[str, Any]") -> None:
        """Record a lease's outcomes; duplicates (stolen races) are dropped."""
        outcomes: "list[PointResult]" = _unpack(frame["outcomes"])
        now = time.monotonic()
        with self._lock:
            lease = self._leases.pop(int(frame["id"]), None)
            if lease is not None:
                elapsed = max(now - lease.issued, 1e-9)
                _LEASE_LATENCY.observe(elapsed)
                self._latency_ewma_s = (
                    elapsed
                    if self._latency_ewma_s <= 0.0
                    else 0.8 * self._latency_ewma_s + 0.2 * elapsed
                )
                rate = len(lease.pairs) / elapsed
                link.rate_ewma = (
                    rate if link.rate_ewma <= 0.0 else 0.7 * link.rate_ewma + 0.3 * rate
                )
                for index, _ in lease.pairs:
                    self._covered[index] = max(0, self._covered.get(index, 0) - 1)
            health = self._health_by_link.get(link.id)
            if health is not None:
                # A delivered result proves the worker is wholesome again.
                health.consecutive_losses = 0
                health.probation = False
                health.rate_ewma = link.rate_ewma
                health.gap_ewma_s = link.gap_ewma_s
            for outcome in outcomes:
                self._settle(outcome)

    def _settle(self, outcome: PointResult) -> None:
        """First result for an index wins; journal it (lock held)."""
        if outcome.index in self._results:
            return
        self._results[outcome.index] = outcome
        if self._checkpoint is not None:
            self._checkpoint.record(outcome)
        if len(self._results) >= self._total:
            self._complete.set()

    # -- failure handling ------------------------------------------------

    def _lose_worker(self, link: _Link, reason: str) -> None:
        """Expire a worker: re-queue its points, update its health ledger."""
        now = time.monotonic()
        quarantined = ejected = False
        health: "_EndpointHealth | None" = None
        with self._lock:
            if link.lost:
                return
            link.lost = True
            orphaned = [
                lease for lease in self._leases.values() if lease.worker == link.id
            ]
            for lease in orphaned:
                del self._leases[lease.id]
            requeued = crashed = 0
            for lease in orphaned:
                for index, point in lease.pairs:
                    self._covered[index] = max(0, self._covered.get(index, 0) - 1)
                    if index in self._results or index in self._poisoned:
                        continue
                    self._crashes[index] = self._crashes.get(index, 0) + 1
                    crashed += 1
                    if self._crashes[index] > self._max_point_crashes:
                        self._poisoned.add(index)
                        self._poison.append((index, point))
                        _POINTS_RESPAWNED.inc()
                    elif self._covered.get(index, 0) == 0:
                        self._pending.appendleft((index, point))
                        requeued += 1
            if not self._complete.is_set():
                health = self._health_by_link.get(link.id)
                if health is not None:
                    health.link_id = None
                    health.losses += 1
                    health.consecutive_losses += 1
                    health.crash_spend += crashed
                    policy = self._policy
                    if health.addr is None or policy.rejoin_backoff_s <= 0.0:
                        health.state = "unreachable"
                    elif (
                        health.probation
                        or health.consecutive_losses >= policy.quarantine_losses
                    ):
                        health.quarantines += 1
                        health.probation = False
                        health.consecutive_losses = 0
                        if health.quarantines > policy.max_quarantines:
                            health.state = "ejected"
                            ejected = True
                        else:
                            health.state = "quarantined"
                            health.dial_failures = 0
                            health.next_attempt = now + policy.probation_delay_s(
                                health.ordinal, health.quarantines
                            )
                            quarantined = True
                    else:
                        health.state = "lost"
                        health.dial_failures = 0
                        health.next_attempt = now + policy.rejoin_delay_s(
                            health.ordinal, 1
                        )
        if self._complete.is_set():
            return  # orderly shutdown, not a failure
        _WORKERS_LOST.inc()
        if requeued:
            _POINTS_REQUEUED.inc(requeued)
        self._span.add_event(
            "worker_lost",
            worker=link.id,
            identity=link.label,
            reason=reason,
            requeued=requeued,
        )
        if quarantined and health is not None:
            _WORKERS_QUARANTINED.inc()
            self._span.add_event(
                "worker_quarantined",
                endpoint=health.endpoint,
                identity=health.label,
                quarantines=health.quarantines,
            )
        if ejected and health is not None:
            _WORKERS_EJECTED.inc()
            self._span.add_event(
                "worker_ejected",
                endpoint=health.endpoint,
                identity=health.label,
                losses=health.losses,
            )
        self._sever(link)

    def _expire_stale_links(self) -> None:
        """Drop workers whose heartbeats stopped (wedged or partitioned)."""
        now = time.monotonic()
        for link in list(self._links.values()):
            if link.lost or now - link.last_seen <= self._lease_ttl_s:
                continue
            with self._lock:
                expired = sum(
                    1 for lease in self._leases.values() if lease.worker == link.id
                )
            _LEASES_EXPIRED.inc(max(expired, 1))
            self._span.add_event(
                "lease_expired",
                worker=link.id,
                identity=link.label,
                silent_s=round(now - link.last_seen, 3),
                leases=expired,
            )
            self._sever(link)  # the reader thread observes EOF and re-queues

    def _finish_poison_points(self) -> None:
        """Run crash-budget-exhausted points through the last-resort path."""
        with self._lock:
            pairs, self._poison = self._poison, []
        if not pairs:
            return
        outcomes = _engine._sweep_last_resort(
            self._fn, sorted(pairs), self._spec, self._span, None
        )
        with self._lock:
            for outcome in outcomes:
                self._settle(outcome)

    def _finish_locally(self) -> None:
        """No worker can return: finish the remaining points in-process."""
        with self._lock:
            remaining = sorted(
                {
                    index: point
                    for index, point in self._pending
                    if index not in self._results
                }.items()
            )
            self._pending.clear()
        _LOCAL_FALLBACKS.inc()
        self._span.add_event("fallback_local", points=len(remaining))
        outcomes = _engine._sweep_serial(
            self._fn, remaining, spec=self._spec, checkpoint=None
        )
        with self._lock:
            for outcome in outcomes:
                self._settle(outcome)
            if len(self._results) >= self._total:
                self._complete.set()


# -- joining ---------------------------------------------------------------


def _dial(
    endpoint: "tuple[str, int]",
    link_id: int,
    *,
    fn_blob: str,
    spec_blob: str,
    heartbeat_s: float,
    lease_ttl_s: float,
    connect_timeout_s: float,
    give_up: threading.Event,
) -> "_Link | None":
    """Connect to one worker and complete the handshake (with retries)."""
    while not give_up.is_set():
        try:
            return _dial_once(
                endpoint,
                link_id,
                fn_blob=fn_blob,
                spec_blob=spec_blob,
                heartbeat_s=heartbeat_s,
                lease_ttl_s=lease_ttl_s,
                timeout_s=connect_timeout_s,
            )
        except (OSError, FabricError):
            if give_up.wait(0.05):
                return None
    return None


def _join(
    endpoints: "tuple[tuple[str, int], ...]",
    *,
    fn_blob: str,
    spec_blob: str,
    heartbeat_s: float,
    lease_ttl_s: float,
    join_deadline_s: float,
    connect_timeout_s: float,
    span: Any,
) -> "list[_Link]":
    """Dial every endpoint in parallel; return whoever joined in time.

    Endpoints are retried until the join deadline. Once at least one
    worker has joined, stragglers get a short grace period rather than
    the full deadline — a half-up fleet should start sweeping, not
    wait. (Under an elastic :class:`MembershipPolicy` the stragglers
    are not abandoned either way: the coordinator keeps re-dialing
    them once the sweep is in flight.)
    """
    give_up = threading.Event()
    joined: "list[_Link]" = []
    joined_lock = threading.Lock()

    def attempt(endpoint: "tuple[str, int]", link_id: int) -> None:
        """Dial one endpoint until it joins or the fleet gives up."""
        link = _dial(
            endpoint,
            link_id,
            fn_blob=fn_blob,
            spec_blob=spec_blob,
            heartbeat_s=heartbeat_s,
            lease_ttl_s=lease_ttl_s,
            connect_timeout_s=connect_timeout_s,
            give_up=give_up,
        )
        if link is not None:
            with joined_lock:
                joined.append(link)

    dialers = [
        threading.Thread(target=attempt, args=(endpoint, index), daemon=True)
        for index, endpoint in enumerate(endpoints)
    ]
    for dialer in dialers:
        dialer.start()
    deadline = time.monotonic() + join_deadline_s
    first_join: "float | None" = None
    grace_s = min(0.25, join_deadline_s / 4.0)
    while time.monotonic() < deadline:
        with joined_lock:
            count = len(joined)
        if count == len(endpoints):
            break
        if count and first_join is None:
            first_join = time.monotonic()
        if first_join is not None and time.monotonic() - first_join > grace_s:
            break
        time.sleep(0.02)
    give_up.set()
    for dialer in dialers:
        dialer.join(timeout=max(connect_timeout_s, 0.1) + 0.5)
    with joined_lock:
        links = sorted(joined, key=lambda link: link.id)
    _WORKERS_JOINED.inc(len(links))
    for link in links:
        span.add_event("worker_joined", worker=link.id, endpoint=link.endpoint, identity=link.label)
    return links


# -- the public sweep entry point ------------------------------------------


def fabric_sweep(
    fn: Callable[[Any], Any],
    points: "Iterable[Any]",
    *,
    workers: "str | Iterable[Any]",
    lease_size: int = DEFAULT_LEASE_SIZE,
    max_lease_size: "int | None" = None,
    on_error: str = "raise",
    retry: "RetryPolicy | None" = None,
    timeout_s: "float | None" = None,
    checkpoint: Any = None,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    lease_ttl_s: "float | None" = None,
    join_deadline_s: float = DEFAULT_JOIN_DEADLINE_S,
    connect_timeout_s: float = 1.0,
    max_point_crashes: int = DEFAULT_MAX_POINT_CRASHES,
    membership: "MembershipPolicy | None" = None,
    listen: "str | socket.socket | None" = None,
    fallback_executor: str = "process",
    fallback_jobs: "int | None" = None,
) -> SweepResult:
    """Evaluate ``fn`` over ``points`` on a fleet of TCP-connected workers.

    The distributed counterpart of :func:`repro.perf.sweep`, returning
    the same :class:`~repro.perf.engine.SweepResult` (``executor`` is
    ``"fabric"``, ``jobs`` is the number of workers that joined up
    front) with values in input order, byte-identical to a single-host
    run of the same sweep. ``on_error``/``retry``/``timeout_s`` are the
    engine's failure policies, enforced *on the workers*; under
    ``"raise"`` the coordinator raises
    :class:`~repro.core.errors.FabricError` for the lowest-indexed
    failing point once the sweep settles.

    Membership is elastic: lost endpoints are re-dialed under
    ``membership`` (a :class:`MembershipPolicy`; the default re-dials
    with 0.25 s seeded exponential backoff and quarantines flappers),
    and passing ``listen`` (a ``"host:port"`` string or a pre-bound
    listening socket, which the fabric takes ownership of and closes)
    lets new workers :meth:`FabricWorker.register` mid-sweep. Lease
    sizes autoscale per worker between ``lease_size`` and
    ``max_lease_size`` from observed throughput; the default
    (``max_lease_size=None``) keeps them fixed at ``lease_size``.

    ``checkpoint`` should be a
    :class:`~repro.perf.journal.ShardedCheckpoint` (any object with the
    checkpoint interface works): completed points are journalled as
    they arrive, and a resumed call restores them without recomputing.

    If no worker joins within ``join_deadline_s`` the sweep runs
    locally through :func:`repro.perf.sweep` with ``fallback_executor``
    / ``fallback_jobs`` — callers never need a fleet to make progress.
    """
    endpoints = parse_endpoints(workers)
    if lease_size < 1:
        raise ValueError(f"lease_size must be >= 1, got {lease_size}")
    max_lease = lease_size if max_lease_size is None else int(max_lease_size)
    if max_lease < lease_size:
        raise ValueError(
            f"max_lease_size ({max_lease}) must be >= lease_size ({lease_size})"
        )
    if on_error not in _engine.ON_ERROR_POLICIES:
        raise ValueError(
            f"unknown on_error {on_error!r}: expected one of "
            f"{', '.join(_engine.ON_ERROR_POLICIES)}"
        )
    if retry is not None and on_error != "retry":
        raise ValueError("a retry policy requires on_error='retry'")
    if timeout_s is not None and timeout_s <= 0.0:
        raise ValueError(f"timeout_s must be positive, got {timeout_s}")
    if heartbeat_s <= 0.0:
        raise ValueError(f"heartbeat_s must be positive, got {heartbeat_s}")
    if max_point_crashes < 0:
        raise ValueError(f"max_point_crashes must be >= 0, got {max_point_crashes}")
    ttl_s = (
        lease_ttl_s if lease_ttl_s is not None else heartbeat_s * DEFAULT_LEASE_TTL_BEATS
    )
    if ttl_s <= heartbeat_s:
        raise ValueError(
            f"lease_ttl_s ({ttl_s:g}) must exceed heartbeat_s ({heartbeat_s:g})"
        )
    policy = membership if membership is not None else MembershipPolicy()
    listener: "socket.socket | None" = None
    if listen is not None:
        if isinstance(listen, socket.socket):
            listener = listen
        else:
            bind_points = parse_endpoints(listen)
            if len(bind_points) != 1:
                raise ValueError(f"listen takes one HOST:PORT, got {listen!r}")
            listener = socket.create_server(bind_points[0], backlog=8)
    spec = _engine._EvalSpec(
        on_error=on_error,
        retry=(retry or RetryPolicy()) if on_error == "retry" else None,
        timeout_s=timeout_s,
    )
    fn_blob, spec_blob = _pack(fn), _pack(spec)
    indexed: "list[tuple[int, Any]]" = list(enumerate(points))
    _FABRIC_SWEEPS.inc()
    start = time.perf_counter()
    try:
        with _trace.span(
            "perf.fabric",
            endpoints=len(endpoints),
            points=len(indexed),
            lease_size=lease_size,
            on_error=on_error,
        ) as span:
            links = _join(
                endpoints,
                fn_blob=fn_blob,
                spec_blob=spec_blob,
                heartbeat_s=heartbeat_s,
                lease_ttl_s=ttl_s,
                join_deadline_s=join_deadline_s,
                connect_timeout_s=connect_timeout_s,
                span=span,
            )
            if not links:
                _LOCAL_FALLBACKS.inc()
                span.add_event("fallback_local", points=len(indexed), reason="no workers joined")
                return _engine.sweep(
                    fn,
                    [point for _, point in indexed],
                    executor=fallback_executor,
                    jobs=fallback_jobs,
                    on_error=on_error,
                    retry=retry,
                    timeout_s=timeout_s,
                    checkpoint=checkpoint,
                )
            restored, remaining = _engine._restore_from_checkpoint(checkpoint, indexed)
            if restored:
                span.add_event("resume", restored=len(restored), remaining=len(remaining))
            coordinator = _Coordinator(
                fn,
                remaining,
                links,
                endpoints=endpoints,
                fn_blob=fn_blob,
                spec_blob=spec_blob,
                spec=spec,
                checkpoint=checkpoint,
                lease_size=lease_size,
                max_lease_size=max_lease,
                heartbeat_s=heartbeat_s,
                lease_ttl_s=ttl_s,
                max_point_crashes=max_point_crashes,
                policy=policy,
                listener=listener,
                connect_timeout_s=connect_timeout_s,
                span=span,
            )
            listener = None  # the coordinator owns (and closes) it now
            fresh = coordinator.run()
            outcomes = sorted(restored + fresh, key=lambda r: r.index)
            if on_error == "raise":
                first_bad = next((o for o in outcomes if not o.ok), None)
                if first_bad is not None:
                    raise FabricError(
                        f"point {first_bad.index} {first_bad.status} on the fabric: "
                        f"{first_bad.error}"
                    )
            wall = time.perf_counter() - start
            result = SweepResult(
                values=tuple(r.value for r in outcomes),
                timings=tuple(r.elapsed_s for r in outcomes),
                executor="fabric",
                jobs=len(links),
                chunksize=lease_size,
                wall_s=wall,
                outcomes=tuple(outcomes),
                resumed=len(restored),
                respawns=0,
            )
            span.set_attributes(
                workers=len(links),
                wall_s=result.wall_s,
                point_s=result.point_s,
                resumed=result.resumed,
            )
    finally:
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
    _engine._SWEEP_RUNS.inc()
    _engine._SWEEP_POINTS.inc(len(result))
    _engine._SWEEP_WALL.observe(result.wall_s)
    _engine._SWEEP_COMPUTE.observe(result.point_s)
    _engine._observe_outcomes(fresh, restored, 0)
    return result


# -- the worker ------------------------------------------------------------


class FabricWorker:
    """One sweep worker: listen, handshake, evaluate leases, heartbeat.

    Sessions are sequential — one coordinator at a time; further
    coordinators queue in the listen backlog. Inside a session the
    worker asks for work (``ready``), evaluates each leased point under
    the sweep's shipped policy (retries, deadlines), ships results
    back, and heartbeats from a side thread the whole time — liveness
    is decoupled from point completion, so a slow-but-legal point never
    trips the coordinator's ``lease_ttl_s``. A vanished coordinator
    (dead socket mid-session) returns the worker to listening —
    workers outlive the sweeps they serve, and a coordinator under an
    elastic :class:`MembershipPolicy` re-dials them right back in.

    Workers can also take the first step themselves:
    :meth:`register` dials a coordinator's ``listen`` socket and runs
    one session over that connection — the late-join path for fleets
    that scale up mid-sweep.

    ``throttle_s`` sleeps before every point evaluation: an operational
    chaos aid for exercising work-stealing, failure detection and the
    chaos CI job against sweeps that would otherwise finish in
    milliseconds. ``heartbeat_override_s`` replaces the
    coordinator-commanded heartbeat interval — set it above the
    coordinator's lease TTL to rehearse the missed-heartbeat expiry
    path without freezing a process.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        throttle_s: float = 0.0,
        heartbeat_override_s: "float | None" = None,
        max_sessions: "int | None" = None,
    ):
        if throttle_s < 0.0:
            raise ValueError(f"throttle_s must be >= 0, got {throttle_s}")
        if max_sessions is not None and max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self._throttle_s = throttle_s
        self._heartbeat_override_s = heartbeat_override_s
        self._max_sessions = max_sessions
        self._closed = threading.Event()
        self._listener = socket.create_server((host, port), backlog=8)

    @property
    def address(self) -> "tuple[str, int]":
        """The actually-bound ``(host, port)`` (port 0 resolves here)."""
        host, port = self._listener.getsockname()[:2]
        return host, port

    def serve_forever(self) -> int:
        """Accept coordinator sessions until closed; returns sessions served."""
        sessions = 0
        while not self._closed.is_set() and (
            self._max_sessions is None or sessions < self._max_sessions
        ):
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed under us
            sessions += 1
            self._serve_session(conn)
        return sessions

    def register(
        self, host: str, port: int, *, connect_timeout_s: float = 1.0
    ) -> None:
        """Dial a coordinator's ``listen`` socket and serve one session.

        The wire sequence is identical to an accepted session — the
        worker speaks first (hello) on both paths — so registration is
        a connect plus the ordinary session loop. Returns when the
        coordinator says ``done`` or the connection dies.
        """
        conn = socket.create_connection((host, port), timeout=connect_timeout_s)
        conn.settimeout(None)
        self._serve_session(conn)

    def close(self) -> None:
        """Stop accepting sessions (unblocks :meth:`serve_forever`)."""
        self._closed.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    # -- one coordinator session -----------------------------------------

    def _serve_session(self, conn: socket.socket) -> None:
        """Run one coordinator's sweep until done (or the socket dies)."""
        rfile = conn.makefile("r", encoding="utf-8", newline="\n")
        wfile = conn.makefile("w", encoding="utf-8", newline="\n")
        wlock = threading.Lock()
        stop = threading.Event()
        beat: "threading.Thread | None" = None
        try:
            _send(
                wfile,
                wlock,
                {
                    "type": "hello",
                    "protocol": FABRIC_PROTOCOL,
                    "host": socket.gethostname(),
                    "pid": os.getpid(),
                },
            )
            job = _recv(rfile)
            if (
                job is None
                or job.get("type") != "job"
                or job.get("protocol") not in FABRIC_PROTOCOLS
            ):
                return
            fn = _unpack(job["fn"])
            spec = _unpack(job["spec"])
            interval = (
                self._heartbeat_override_s
                if self._heartbeat_override_s is not None
                else float(job["heartbeat_s"])
            )
            worker_spec = _engine._EvalSpec(
                # Workers never raise: under "raise" the coordinator owns
                # the deterministic lowest-index raise, so failures ship
                # back as structured outcomes instead.
                on_error="skip" if spec.on_error == "raise" else spec.on_error,
                retry=spec.retry,
                timeout_s=spec.timeout_s,
            )
            beat = threading.Thread(
                target=self._heartbeat_loop,
                args=(wfile, wlock, stop, interval),
                name="fabric-heartbeat",
                daemon=True,
            )
            beat.start()
            self._work_loop(rfile, wfile, wlock, fn, worker_spec)
        except (OSError, ValueError, EOFError, FabricError):
            pass  # the coordinator vanished; go back to listening
        finally:
            stop.set()
            if beat is not None:
                beat.join(timeout=1.0)
            for stream in (rfile, wfile):
                try:
                    stream.close()
                except OSError:
                    pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def _work_loop(
        self,
        rfile: Any,
        wfile: Any,
        wlock: threading.Lock,
        fn: Callable[[Any], Any],
        spec: Any,
    ) -> None:
        """ready → lease → evaluate → result, until the coordinator says done."""
        while True:
            _send(wfile, wlock, {"type": "ready"})
            frame = _recv(rfile)
            if frame is None or frame["type"] == "done":
                return
            if frame["type"] == "wait":
                time.sleep(float(frame["delay_s"]))
                continue
            if frame["type"] != "lease":
                raise FabricError(f"unexpected {frame['type']!r} frame from coordinator")
            pairs = _unpack(frame["points"])
            outcomes = []
            for index, point in pairs:
                if self._throttle_s:
                    time.sleep(self._throttle_s)
                outcomes.append(_engine._eval_point(fn, index, point, spec))
            _send(
                wfile,
                wlock,
                {"type": "result", "id": frame["id"], "outcomes": _pack(outcomes)},
            )

    @staticmethod
    def _heartbeat_loop(
        wfile: Any, wlock: threading.Lock, stop: threading.Event, interval: float
    ) -> None:
        """Prove liveness every ``interval`` seconds until the session ends."""
        while not stop.wait(interval):
            try:
                _send(wfile, wlock, {"type": "heartbeat"})
            except OSError:
                return
