"""Checkpoint journals: crash-safe sweep progress for ``--resume``.

A :class:`SweepCheckpoint` is an append-only JSONL file under
``artifacts/checkpoints/`` (overridable via the
``REPRO_CHECKPOINT_DIR`` environment variable), keyed by a SHA-256
content hash of the *sweep spec* — the sweep's name plus every
parameter that shapes its point grid. Two runs over the same spec share
a journal; changing any parameter changes the digest, the filename and
therefore the journal, so a resume can never mix incompatible runs.

File layout::

    {"format": "repro-sweep-journal/1", "name": ..., "spec_sha256": ...}
    {"index": 0, "status": "ok", "attempts": 1, "elapsed_s": ..., "value": "<b64 pickle>"}
    {"index": 3, "status": "failed", "attempts": 3, "error": "ValueError(...)", ...}

Durability contract:

* the header is written atomically (tmp + ``os.replace`` + fsync, via
  :mod:`repro.core.atomicio`), so a journal either exists whole or not
  at all;
* each record append is flushed and fsync'd before the engine moves on,
  so a completed point survives any later crash;
* a crash *mid-append* leaves at most one truncated trailing line,
  which the loader detects and drops — the journal is self-healing.

Only ``status == "ok"`` records count as done: failed, timed-out and
crashed points are journalled for post-mortems but re-run on resume.
Values round-trip through pickle (base64-wrapped inside the JSON), so
restored points are bit-identical to freshly computed ones — the
property the byte-identical ``--resume`` artifact tests pin down. Treat
journals like any local pickle: data you wrote, not data you downloaded.

Single-writer discipline: opening a journal takes an advisory
``flock`` on a ``.lock`` sidecar, so two concurrent ``--resume`` runs
over the same spec fail fast with :class:`~repro.core.errors.CheckpointError`
instead of interleaving appends. The lock dies with its holder (the
kernel releases ``flock`` on process exit), which is the stale-lock
story: a sidecar left behind by a crashed run does not block the next
one — it is detected, reported in the lock file, and reclaimed.
Reclaim is *same-host only*: the sidecar records ``host`` alongside
``pid``, and a sidecar written by a different machine is never treated
as stale — ``flock`` visibility does not span hosts on shared storage,
and a foreign pid existing (or not) on *this* host says nothing about
the real owner.

The distributed sweep fabric (:mod:`repro.perf.fabric`) journals
through a :class:`ShardedCheckpoint`: the index space is partitioned
across a fixed number of shard journals (each an ordinary
:class:`SweepCheckpoint`), and :func:`merge_journal_loads` folds them
back into one progress map deterministically — the property the merge
tests pin down is that any interleaving or reassignment of points over
shards loads back bit-identically to a single journal.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import socket
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl
except ImportError:  # pragma: no cover - Windows: advisory locking disabled
    fcntl = None  # type: ignore[assignment]

from repro.core.atomicio import atomic_write_text
from repro.core.errors import CheckpointError

__all__ = [
    "CHECKPOINT_DIR_ENV",
    "DEFAULT_CHECKPOINT_DIR",
    "DEFAULT_SHARDS",
    "JOURNAL_FORMAT",
    "JournalEntry",
    "JournalLock",
    "ShardedCheckpoint",
    "SweepCheckpoint",
    "checkpoint_directory",
    "merge_journal_loads",
    "spec_digest",
]

#: Schema tag written into (and required of) every journal header.
JOURNAL_FORMAT = "repro-sweep-journal/1"

#: Environment variable overriding where journals live.
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"

#: Where journals land when the environment does not say otherwise.
DEFAULT_CHECKPOINT_DIR = "artifacts/checkpoints"

#: How many shard journals a :class:`ShardedCheckpoint` opens by
#: default. Fixed (not derived from the worker count) so a resumed
#: fabric sweep finds its shards no matter how many workers rejoin.
DEFAULT_SHARDS = 8


def checkpoint_directory() -> Path:
    """The journal directory: ``$REPRO_CHECKPOINT_DIR`` or the default."""
    return Path(os.environ.get(CHECKPOINT_DIR_ENV) or DEFAULT_CHECKPOINT_DIR)


def spec_digest(name: str, spec: Any) -> str:
    """SHA-256 over the canonical JSON encoding of ``(name, spec)``."""
    canonical = json.dumps(
        {"name": name, "spec": spec}, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class JournalLock:
    """Advisory single-writer lock on a journal's ``.lock`` sidecar.

    ``flock(LOCK_EX | LOCK_NB)`` semantics: acquisition fails
    immediately when another *live* process holds the lock, and the
    kernel releases it automatically when the holder exits — so a
    crashed run can never wedge future resumes. The sidecar records the
    holder's host, pid and start time; on contention that metadata is
    quoted in the :class:`CheckpointError`, and on reclaim of a stale
    sidecar (file present, lock free — the previous holder died) the
    stale holder's pid is remembered on :attr:`reclaimed_from`.

    Reclaim is refused when the sidecar was written by a *different
    host*: ``flock`` state lives in one kernel, so on shared storage a
    foreign holder can look free locally while being very much alive —
    and pids collide across machines, making "that pid is gone here"
    meaningless. A cross-host sidecar therefore always raises
    :class:`CheckpointError` and must be removed by hand once the
    owning host is confirmed dead. Sidecars without a recorded host
    (written before the field existed) reclaim as before.
    """

    def __init__(self, journal_path: "str | os.PathLike"):
        self.path = Path(str(journal_path) + ".lock")
        self._handle: Any = None
        #: pid recorded in a stale sidecar this acquisition reclaimed.
        self.reclaimed_from: "int | None" = None

    @property
    def held(self) -> bool:
        """True while this process holds the lock."""
        return self._handle is not None

    def acquire(self) -> "JournalLock":
        """Take the lock or raise :class:`CheckpointError` naming the holder."""
        if fcntl is None:  # pragma: no cover - Windows: locking unavailable
            return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        stale = self._read_holder()
        handle = open(self.path, "a+", encoding="utf-8")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            holder = self._read_holder()
            detail = (
                f" (held by {self._describe_holder(holder)} since {holder['started']})"
                if holder
                else ""
            )
            raise CheckpointError(
                f"checkpoint journal {self.path.stem!r} is locked by another "
                f"--resume run{detail}; wait for it to finish or remove "
                f"{self.path} if that process is truly gone"
            ) from None
        if stale:
            owner_host = stale.get("host")
            if owner_host is not None and owner_host != socket.gethostname():
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                handle.close()
                raise CheckpointError(
                    f"checkpoint journal {self.path.stem!r} is locked by "
                    f"{self._describe_holder(stale)} on a different host; "
                    f"flock state does not span hosts, so this run cannot "
                    f"tell a dead owner from a live one — remove {self.path} "
                    f"only after confirming that host's run is gone"
                )
            self.reclaimed_from = stale.get("pid")
        handle.seek(0)
        handle.truncate()
        handle.write(
            json.dumps(
                {
                    "host": socket.gethostname(),
                    "pid": os.getpid(),
                    "started": time.strftime("%Y-%m-%dT%H:%M:%S"),
                },
                sort_keys=True,
            )
            + "\n"
        )
        handle.flush()
        self._handle = handle
        return self

    @staticmethod
    def _describe_holder(holder: "Mapping[str, Any] | None") -> str:
        """A ``host:pid`` label for lock diagnostics (tolerates old payloads)."""
        if not holder:
            return "an unknown process"
        host = holder.get("host")
        pid = holder.get("pid")
        return f"pid {pid}" if host is None else f"{host}:{pid}"

    def _read_holder(self) -> "dict[str, Any] | None":
        """The sidecar's recorded holder metadata, if parseable."""
        try:
            record = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def release(self) -> None:
        """Drop the lock, leaving an empty sidecar (safe to call twice).

        The sidecar is truncated rather than unlinked: removing the
        path while others may be opening it would let two new runs lock
        *different* inodes under the same name. An empty sidecar with a
        free lock is simply a journal nobody is writing.
        """
        if self._handle is None:
            return
        self._handle.seek(0)
        self._handle.truncate()
        self._handle.flush()
        if fcntl is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
        self._handle.close()
        self._handle = None


@dataclass(frozen=True, slots=True)
class JournalEntry:
    """One journalled point outcome, decoded."""

    index: int
    status: str
    attempts: int
    elapsed_s: float
    error: "str | None"
    value: Any


class SweepCheckpoint:
    """An open journal: load prior progress, append new outcomes.

    Use :meth:`open` (or the context-manager form) rather than the
    constructor; it derives the path from the spec digest, validates any
    existing file's header and leaves an append handle ready.
    """

    def __init__(self, path: "str | os.PathLike", name: str, spec: Any):
        self.path = Path(path)
        self.name = name
        self.digest = spec_digest(name, spec)
        self._entries: dict[int, JournalEntry] = {}
        self._handle: Any = None
        self._lock: "JournalLock | None" = None

    @classmethod
    def open(
        cls, name: str, spec: Any, *, directory: "str | os.PathLike | None" = None
    ) -> "SweepCheckpoint":
        """Open (or create) the journal for ``(name, spec)``.

        Takes the journal's advisory :class:`JournalLock` first, so a
        second concurrent run over the same spec fails fast with
        :class:`~repro.core.errors.CheckpointError` rather than
        interleaving appends into the same file.
        """
        base = Path(directory) if directory is not None else checkpoint_directory()
        digest = spec_digest(name, spec)
        checkpoint = cls(base / f"{name}-{digest[:16]}.jsonl", name, spec)
        lock = JournalLock(checkpoint.path).acquire()
        try:
            checkpoint._ensure_file()
            checkpoint._handle = open(checkpoint.path, "a", encoding="utf-8")
        except BaseException:
            lock.release()
            raise
        checkpoint._lock = lock
        return checkpoint

    def _ensure_file(self) -> None:
        """Validate an existing journal or atomically start a fresh one."""
        if self.path.exists():
            entries = self._read_entries()
            if entries is not None:
                self._entries = entries
                return
        header = json.dumps(
            {"format": JOURNAL_FORMAT, "name": self.name, "spec_sha256": self.digest},
            sort_keys=True,
        )
        atomic_write_text(self.path, header + "\n")
        self._entries = {}

    def _read_entries(self) -> "dict[int, JournalEntry] | None":
        """Parse the journal; ``None`` means the header is unusable."""
        lines = self.path.read_text(encoding="utf-8").splitlines()
        if not lines:
            return None
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return None
        if not isinstance(header, dict):
            return None
        if header.get("format") != JOURNAL_FORMAT or header.get("spec_sha256") != self.digest:
            return None
        entries: dict[int, JournalEntry] = {}
        for line in lines[1:]:
            entry = _decode_record(line)
            if entry is None:
                # A truncated tail (crash mid-append) or a corrupt
                # middle record (bit rot, caught by the per-record
                # CRC): drop just that record — its point re-runs —
                # and keep restoring everything after it.
                continue
            entries[entry.index] = entry
        return entries

    def load(self) -> dict[int, JournalEntry]:
        """Completed (``status == "ok"``) entries, keyed by point index."""
        return {
            index: entry
            for index, entry in self._entries.items()
            if entry.status == "ok"
        }

    @property
    def completed(self) -> int:
        """How many points this journal already holds values for."""
        return len(self.load())

    def record(self, outcome: Any) -> None:
        """Append one freshly computed outcome, flushed and fsync'd.

        Restored (``"skipped"``) outcomes are not re-journalled — they
        are already on disk from the run that computed them.
        """
        if self._handle is None:
            raise ValueError(f"checkpoint {self.path} is not open")
        if outcome.status == "skipped":
            return
        payload = None
        if outcome.status == "ok":
            payload = base64.b64encode(pickle.dumps(outcome.value)).decode("ascii")
        record = {
            "index": outcome.index,
            "status": outcome.status,
            "attempts": outcome.attempts,
            "elapsed_s": outcome.elapsed_s,
            "error": outcome.error,
            "value": payload,
        }
        record["crc"] = _record_crc(record)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._entries[outcome.index] = JournalEntry(
            index=outcome.index,
            status=outcome.status,
            attempts=outcome.attempts,
            elapsed_s=outcome.elapsed_s,
            error=outcome.error,
            value=outcome.value if outcome.status == "ok" else None,
        )

    def close(self) -> None:
        """Release the append handle and the advisory lock (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self._lock is not None:
            self._lock.release()
            self._lock = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def merge_journal_loads(
    loads: "Iterable[Mapping[int, JournalEntry]]",
) -> dict[int, JournalEntry]:
    """Fold per-shard journal loads into one progress map, deterministically.

    The merge is a pure function of the *sequence* of loads: shards are
    folded in the order given and, within a shard, indices in ascending
    order, with the first entry seen for an index winning. Because a
    sweep's point function is pure, duplicate entries for an index (a
    stolen lease completed twice, a point journalled by two shards
    under reassignment) carry equal values — the tie-break exists so
    the merged map is bit-identical across re-merges, not to pick a
    "better" result.

        >>> from repro.perf.journal import JournalEntry, merge_journal_loads
        >>> a = {0: JournalEntry(0, "ok", 1, 0.1, None, "zero")}
        >>> b = {1: JournalEntry(1, "ok", 1, 0.2, None, "one"),
        ...      0: JournalEntry(0, "ok", 2, 0.9, None, "zero")}
        >>> merged = merge_journal_loads([a, b])
        >>> sorted(merged) == [0, 1] and merged[0].attempts == 1
        True
    """
    merged: dict[int, JournalEntry] = {}
    for load in loads:
        for index in sorted(load):
            merged.setdefault(index, load[index])
    return merged


class ShardedCheckpoint:
    """A checkpoint journal partitioned across a fixed set of shard files.

    The distributed sweep fabric journals progress here: each shard is
    an ordinary :class:`SweepCheckpoint` (same header, locking,
    fsync-per-record and self-healing-tail contract) named
    ``<name>.s<k>of<n>``, and a point's outcome always lands in shard
    ``index % shards`` — a placement that is a pure function of the
    point, never of which worker computed it. :meth:`load` merges the
    shards through :func:`merge_journal_loads`, so a resumed sweep sees
    one progress map bit-identical to what a single journal would hold,
    no matter how points were leased, stolen or re-queued across
    workers in the interrupted run.

    ``shards`` must match across runs of the same sweep (the default is
    :data:`DEFAULT_SHARDS`); a changed count changes the shard names,
    and the old shards are simply ignored rather than mis-merged.
    """

    def __init__(self, checkpoints: "list[SweepCheckpoint]", name: str):
        self._shards = checkpoints
        self.name = name

    @classmethod
    def open(
        cls,
        name: str,
        spec: Any,
        *,
        shards: int = DEFAULT_SHARDS,
        directory: "str | os.PathLike | None" = None,
    ) -> "ShardedCheckpoint":
        """Open (or create) every shard journal for ``(name, spec)``.

        Each shard takes its own advisory lock; a partial failure
        releases the shards already opened before re-raising, so a lost
        race never leaves stragglers locked.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        opened: list[SweepCheckpoint] = []
        try:
            for shard in range(shards):
                opened.append(
                    SweepCheckpoint.open(
                        f"{name}.s{shard}of{shards}", spec, directory=directory
                    )
                )
        except BaseException:
            for checkpoint in opened:
                checkpoint.close()
            raise
        return cls(opened, name)

    @property
    def paths(self) -> tuple[Path, ...]:
        """Every shard journal's path, in shard order."""
        return tuple(shard.path for shard in self._shards)

    def load(self) -> dict[int, JournalEntry]:
        """Completed entries merged across all shards, keyed by index."""
        return merge_journal_loads(shard.load() for shard in self._shards)

    @property
    def completed(self) -> int:
        """How many points the shard set already holds values for."""
        return len(self.load())

    def record(self, outcome: Any) -> None:
        """Journal one outcome into its index's home shard."""
        self._shards[outcome.index % len(self._shards)].record(outcome)

    def close(self) -> None:
        """Close every shard (idempotent)."""
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedCheckpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _record_crc(body: "dict[str, Any]") -> int:
    """CRC32 of a record body's canonical JSON (sans the ``crc`` key)."""
    return zlib.crc32(json.dumps(body, sort_keys=True).encode("utf-8"))


def _decode_record(line: str) -> "JournalEntry | None":
    """One JSONL record back into a :class:`JournalEntry`; None if bad.

    Records written by this build carry a ``crc`` of their canonical
    body: a record that parses as JSON but fails its checksum (a
    flipped bit mid-file, not just a truncated tail) is rejected the
    same way, so the caller re-runs that point instead of trusting a
    silently corrupted value. Legacy records without a ``crc`` are
    accepted as before.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict) or not isinstance(record.get("index"), int):
        return None
    crc = record.pop("crc", None)
    if crc is not None and crc != _record_crc(record):
        return None
    status = record.get("status")
    if status not in ("ok", "failed", "timed_out", "crashed"):
        return None
    value = None
    if status == "ok":
        try:
            value = pickle.loads(base64.b64decode(record["value"]))
        except Exception:
            return None  # stale pickle (code drift) — recompute instead
    return JournalEntry(
        index=record["index"],
        status=status,
        attempts=int(record.get("attempts", 1)),
        elapsed_s=float(record.get("elapsed_s", 0.0)),
        error=record.get("error"),
        value=value,
    )
