"""Checkpoint journals: crash-safe sweep progress for ``--resume``.

A :class:`SweepCheckpoint` is an append-only JSONL file under
``artifacts/checkpoints/`` (overridable via the
``REPRO_CHECKPOINT_DIR`` environment variable), keyed by a SHA-256
content hash of the *sweep spec* — the sweep's name plus every
parameter that shapes its point grid. Two runs over the same spec share
a journal; changing any parameter changes the digest, the filename and
therefore the journal, so a resume can never mix incompatible runs.

File layout::

    {"format": "repro-sweep-journal/1", "name": ..., "spec_sha256": ...}
    {"index": 0, "status": "ok", "attempts": 1, "elapsed_s": ..., "value": "<b64 pickle>"}
    {"index": 3, "status": "failed", "attempts": 3, "error": "ValueError(...)", ...}

Durability contract:

* the header is written atomically (tmp + ``os.replace`` + fsync, via
  :mod:`repro.core.atomicio`), so a journal either exists whole or not
  at all;
* each record append is flushed and fsync'd before the engine moves on,
  so a completed point survives any later crash;
* a crash *mid-append* leaves at most one truncated trailing line,
  which the loader detects and drops — the journal is self-healing.

Only ``status == "ok"`` records count as done: failed, timed-out and
crashed points are journalled for post-mortems but re-run on resume.
Values round-trip through pickle (base64-wrapped inside the JSON), so
restored points are bit-identical to freshly computed ones — the
property the byte-identical ``--resume`` artifact tests pin down. Treat
journals like any local pickle: data you wrote, not data you downloaded.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.atomicio import atomic_write_text

__all__ = [
    "CHECKPOINT_DIR_ENV",
    "DEFAULT_CHECKPOINT_DIR",
    "JOURNAL_FORMAT",
    "JournalEntry",
    "SweepCheckpoint",
    "checkpoint_directory",
    "spec_digest",
]

#: Schema tag written into (and required of) every journal header.
JOURNAL_FORMAT = "repro-sweep-journal/1"

#: Environment variable overriding where journals live.
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"

#: Where journals land when the environment does not say otherwise.
DEFAULT_CHECKPOINT_DIR = "artifacts/checkpoints"


def checkpoint_directory() -> Path:
    """The journal directory: ``$REPRO_CHECKPOINT_DIR`` or the default."""
    return Path(os.environ.get(CHECKPOINT_DIR_ENV) or DEFAULT_CHECKPOINT_DIR)


def spec_digest(name: str, spec: Any) -> str:
    """SHA-256 over the canonical JSON encoding of ``(name, spec)``."""
    canonical = json.dumps(
        {"name": name, "spec": spec}, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True, slots=True)
class JournalEntry:
    """One journalled point outcome, decoded."""

    index: int
    status: str
    attempts: int
    elapsed_s: float
    error: "str | None"
    value: Any


class SweepCheckpoint:
    """An open journal: load prior progress, append new outcomes.

    Use :meth:`open` (or the context-manager form) rather than the
    constructor; it derives the path from the spec digest, validates any
    existing file's header and leaves an append handle ready.
    """

    def __init__(self, path: "str | os.PathLike", name: str, spec: Any):
        self.path = Path(path)
        self.name = name
        self.digest = spec_digest(name, spec)
        self._entries: dict[int, JournalEntry] = {}
        self._handle: Any = None

    @classmethod
    def open(
        cls, name: str, spec: Any, *, directory: "str | os.PathLike | None" = None
    ) -> "SweepCheckpoint":
        """Open (or create) the journal for ``(name, spec)``."""
        base = Path(directory) if directory is not None else checkpoint_directory()
        digest = spec_digest(name, spec)
        checkpoint = cls(base / f"{name}-{digest[:16]}.jsonl", name, spec)
        checkpoint._ensure_file()
        checkpoint._handle = open(checkpoint.path, "a", encoding="utf-8")
        return checkpoint

    def _ensure_file(self) -> None:
        """Validate an existing journal or atomically start a fresh one."""
        if self.path.exists():
            entries = self._read_entries()
            if entries is not None:
                self._entries = entries
                return
        header = json.dumps(
            {"format": JOURNAL_FORMAT, "name": self.name, "spec_sha256": self.digest},
            sort_keys=True,
        )
        atomic_write_text(self.path, header + "\n")
        self._entries = {}

    def _read_entries(self) -> "dict[int, JournalEntry] | None":
        """Parse the journal; ``None`` means the header is unusable."""
        lines = self.path.read_text(encoding="utf-8").splitlines()
        if not lines:
            return None
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return None
        if not isinstance(header, dict):
            return None
        if header.get("format") != JOURNAL_FORMAT or header.get("spec_sha256") != self.digest:
            return None
        entries: dict[int, JournalEntry] = {}
        for line in lines[1:]:
            entry = _decode_record(line)
            if entry is None:
                break  # a crash mid-append truncates at most the tail
            entries[entry.index] = entry
        return entries

    def load(self) -> dict[int, JournalEntry]:
        """Completed (``status == "ok"``) entries, keyed by point index."""
        return {
            index: entry
            for index, entry in self._entries.items()
            if entry.status == "ok"
        }

    @property
    def completed(self) -> int:
        """How many points this journal already holds values for."""
        return len(self.load())

    def record(self, outcome: Any) -> None:
        """Append one freshly computed outcome, flushed and fsync'd.

        Restored (``"skipped"``) outcomes are not re-journalled — they
        are already on disk from the run that computed them.
        """
        if self._handle is None:
            raise ValueError(f"checkpoint {self.path} is not open")
        if outcome.status == "skipped":
            return
        payload = None
        if outcome.status == "ok":
            payload = base64.b64encode(pickle.dumps(outcome.value)).decode("ascii")
        record = {
            "index": outcome.index,
            "status": outcome.status,
            "attempts": outcome.attempts,
            "elapsed_s": outcome.elapsed_s,
            "error": outcome.error,
            "value": payload,
        }
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._entries[outcome.index] = JournalEntry(
            index=outcome.index,
            status=outcome.status,
            attempts=outcome.attempts,
            elapsed_s=outcome.elapsed_s,
            error=outcome.error,
            value=outcome.value if outcome.status == "ok" else None,
        )

    def close(self) -> None:
        """Release the append handle (safe to call twice)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _decode_record(line: str) -> "JournalEntry | None":
    """One JSONL record back into a :class:`JournalEntry`; None if bad."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict) or not isinstance(record.get("index"), int):
        return None
    status = record.get("status")
    if status not in ("ok", "failed", "timed_out", "crashed"):
        return None
    value = None
    if status == "ok":
        try:
            value = pickle.loads(base64.b64decode(record["value"]))
        except Exception:
            return None  # stale pickle (code drift) — recompute instead
    return JournalEntry(
        index=record["index"],
        status=status,
        attempts=int(record.get("attempts", 1)),
        elapsed_s=float(record.get("elapsed_s", 0.0)),
        error=record.get("error"),
        value=value,
    )
