"""The parallel sweep engine.

A *sweep* evaluates one pure function over a grid of points. The engine
owns the concerns every sweep in this package shares:

* **executor choice** — ``serial`` (plain loop, zero overhead),
  ``thread`` (useful when the point function releases the GIL, e.g.
  NumPy kernels) or ``process`` (true parallelism for pure-Python point
  functions — the common case here);
* **deterministic ordering** — results come back in input order no
  matter which worker finished first, so parallel artifacts are
  byte-identical to serial ones;
* **per-point timing** — each point's evaluation time is captured in
  the worker itself (excluding scheduling and serialisation), so the
  benchmark suite can separate compute from orchestration overhead;
* **failure policy** — ``on_error`` decides what a failing point does
  to the sweep: ``"raise"`` (the default: propagate the lowest-indexed
  failing point's exception, exactly the historical behaviour),
  ``"skip"`` (record the failure in the point's
  :class:`PointResult` and keep sweeping) or ``"retry"`` (re-attempt
  the point on a deterministic seeded backoff schedule, then record the
  failure if the budget runs out);
* **deadlines** — ``timeout_s`` bounds each point attempt; an attempt
  over budget raises :class:`PointTimeout` (status ``"timed_out"``
  under ``skip``/``retry``);
* **worker-crash isolation** — a process worker killed mid-chunk
  (``BrokenProcessPool``) no longer aborts the sweep: the surviving
  points are requeued on a rebuilt pool, up to ``max_respawns`` times,
  after which the engine degrades to a serial last resort;
* **checkpoint/resume** — pass a
  :class:`repro.perf.journal.SweepCheckpoint` and every completed point
  is journalled as it finishes; a re-run over the same spec restores
  those points (status ``"skipped"``) without recomputing them.

Point functions used with the ``process`` executor must be picklable:
module-level functions, or :func:`functools.partial` over one.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from concurrent.futures import (
    FIRST_EXCEPTION,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = [
    "EXECUTORS",
    "ON_ERROR_POLICIES",
    "POINT_STATUSES",
    "PointResult",
    "PointTimeout",
    "RetryPolicy",
    "SweepResult",
    "resolve_jobs",
    "sweep",
]

#: Recognised executor names.
EXECUTORS: tuple[str, ...] = ("serial", "thread", "process")

#: Recognised ``on_error`` policies.
ON_ERROR_POLICIES: tuple[str, ...] = ("raise", "skip", "retry")

#: Every status a :class:`PointResult` can carry.
POINT_STATUSES: tuple[str, ...] = ("ok", "failed", "timed_out", "crashed", "skipped")

# Always-on aggregate metrics — incremented per sweep() call (never in
# the per-point hot loop), so the disabled-instrumentation overhead
# stays inside the bench_obs_overhead budget.
_SWEEP_RUNS = _metrics.REGISTRY.counter("sweep.runs", help="sweep() invocations")
_SWEEP_POINTS = _metrics.REGISTRY.counter("sweep.points", help="points evaluated across all sweeps")
_SWEEP_WALL = _metrics.REGISTRY.histogram("sweep.wall_s", help="whole-sweep wall time (s)")
_SWEEP_COMPUTE = _metrics.REGISTRY.histogram(
    "sweep.point_s", help="summed in-worker compute time per sweep (s)"
)
_QUEUE_WAIT = _metrics.REGISTRY.histogram(
    "sweep.queue_wait_s", help="submit-to-start executor queue wait per chunk (s)"
)
_SWEEP_RETRIES = _metrics.REGISTRY.counter(
    "sweep.retries", help="extra point attempts spent by the retry policy"
)
_SWEEP_FAILED = _metrics.REGISTRY.counter(
    "sweep.failed_points", help="points that exhausted their error policy (status=failed)"
)
_SWEEP_TIMEOUTS = _metrics.REGISTRY.counter(
    "sweep.timeouts", help="points whose final attempt exceeded the deadline"
)
_SWEEP_CRASHES = _metrics.REGISTRY.counter(
    "sweep.crashes", help="points lost to a worker crash even in isolation"
)
_SWEEP_RESPAWNS = _metrics.REGISTRY.counter(
    "sweep.pool_respawns", help="process pools rebuilt after a worker crash"
)
_SWEEP_RESUMED = _metrics.REGISTRY.counter(
    "sweep.resumed_points", help="points restored from a checkpoint journal"
)


class PointTimeout(TimeoutError):
    """A sweep point attempt exceeded its ``timeout_s`` deadline."""


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Deterministic seeded exponential backoff for ``on_error='retry'``.

    The delay before retry ``attempt`` (1-based) of point ``index`` is::

        backoff_s * factor**(attempt - 1) * (1 + jitter * u)

    where ``u`` is drawn from a PRNG seeded purely by ``(seed, index,
    attempt)`` — the schedule is a pure function of the policy, so two
    runs with the same seed back off identically (a tested property).

        >>> RetryPolicy(seed=7).schedule(3) == RetryPolicy(seed=7).schedule(3)
        True
    """

    max_retries: int = 2
    backoff_s: float = 0.05
    factor: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0.0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must lie in [0, 1], got {self.jitter}")

    def delay_s(self, index: int, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of point ``index``."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        mixed = (self.seed & 0xFFFFFFFF) * 0x9E3779B1 + index
        mixed = (mixed ^ (mixed >> 16)) * 0x85EBCA6B + attempt
        noise = random.Random(mixed).random()
        return self.backoff_s * self.factor ** (attempt - 1) * (1.0 + self.jitter * noise)

    def schedule(self, index: int) -> tuple[float, ...]:
        """The full backoff schedule for ``index``, one delay per retry."""
        return tuple(self.delay_s(index, attempt) for attempt in range(1, self.max_retries + 1))


@dataclass(frozen=True, slots=True)
class _EvalSpec:
    """The per-point evaluation policy shipped to workers with each chunk."""

    on_error: str = "raise"
    retry: "RetryPolicy | None" = None
    timeout_s: "float | None" = None


_DEFAULT_SPEC = _EvalSpec()


@dataclass(frozen=True, slots=True)
class PointResult:
    """One evaluated sweep point, including how its evaluation went.

    ``status`` is one of :data:`POINT_STATUSES`: ``"ok"`` (value is
    valid), ``"failed"`` / ``"timed_out"`` / ``"crashed"`` (value is
    ``None``, ``error`` holds the repr of the final failure) or
    ``"skipped"`` (restored from a checkpoint journal, not recomputed).
    """

    index: int
    point: Any
    value: Any
    elapsed_s: float
    status: str = "ok"
    attempts: int = 1
    error: "str | None" = None

    @property
    def ok(self) -> bool:
        """Whether this point carries a usable value."""
        return self.status in ("ok", "skipped")


@dataclass(frozen=True, slots=True)
class SweepResult:
    """A completed sweep: values in input order plus execution telemetry."""

    values: tuple[Any, ...]
    timings: tuple[float, ...]
    executor: str
    jobs: int
    chunksize: int
    wall_s: float
    outcomes: "tuple[PointResult, ...]" = ()
    resumed: int = 0
    respawns: int = 0

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    @property
    def point_s(self) -> float:
        """Total in-worker compute time across all points."""
        return sum(self.timings)

    @property
    def failures(self) -> "tuple[PointResult, ...]":
        """Every point that ended without a value, in input order."""
        return tuple(o for o in self.outcomes if not o.ok)

    def status_counts(self) -> dict[str, int]:
        """How many points landed in each status (zero counts omitted)."""
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    @property
    def parallel_efficiency(self) -> float:
        """Compute-to-wall ratio per worker: 1.0 means perfect scaling.

        Serial sweeps report the bare compute/wall ratio (< 1.0 measures
        engine overhead); parallel sweeps divide by the worker count.
        """
        if self.wall_s <= 0.0:
            return 0.0
        return self.point_s / (self.wall_s * max(self.jobs, 1))


def resolve_jobs(jobs: "int | None") -> int:
    """Normalise a ``--jobs`` value: ``None``/0 means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return jobs


# -- deadline enforcement --------------------------------------------------


def _call_with_deadline(fn: Callable[[Any], Any], point: Any, timeout_s: "float | None") -> Any:
    """Evaluate ``fn(point)``, raising :class:`PointTimeout` past the deadline.

    In a process worker (or any POSIX main thread with no interval
    timer already armed) the deadline truly preempts pure-Python code
    via ``SIGALRM``. Elsewhere — thread pools, nested timers — a
    watchdog thread enforces it cooperatively: the sweep moves on, but
    the abandoned attempt occupies its thread until it returns.
    """
    if timeout_s is None:
        return fn(point)
    if (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
        and signal.getitimer(signal.ITIMER_REAL)[0] == 0.0
    ):
        return _call_with_alarm(fn, point, timeout_s)
    return _call_with_watchdog(fn, point, timeout_s)


def _call_with_alarm(fn: Callable[[Any], Any], point: Any, timeout_s: float) -> Any:
    """SIGALRM-based deadline: preempts the attempt wherever it is."""

    def _expired(signum: int, frame: Any) -> None:
        raise PointTimeout(f"point exceeded its {timeout_s:g}s deadline")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn(point)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _call_with_watchdog(fn: Callable[[Any], Any], point: Any, timeout_s: float) -> Any:
    """Thread-based deadline for contexts where SIGALRM is unavailable."""
    outcome: list[Any] = []

    def _runner() -> None:
        try:
            outcome.append(("value", fn(point)))
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            outcome.append(("error", exc))

    worker = threading.Thread(target=_runner, daemon=True)
    worker.start()
    worker.join(timeout_s)
    if worker.is_alive():
        raise PointTimeout(f"point exceeded its {timeout_s:g}s deadline")
    kind, payload = outcome[0]
    if kind == "error":
        raise payload
    return payload


# -- point evaluation ------------------------------------------------------


def _eval_point(
    fn: Callable[[Any], Any], index: int, point: Any, spec: _EvalSpec = _DEFAULT_SPEC
) -> PointResult:
    """Evaluate one point under the sweep's error policy and deadline."""
    max_attempts = 1 + (spec.retry.max_retries if spec.retry is not None else 0)
    start = time.perf_counter()
    last_error: "BaseException | None" = None
    status = "failed"
    for attempt in range(1, max_attempts + 1):
        try:
            value = _call_with_deadline(fn, point, spec.timeout_s)
            return PointResult(
                index=index,
                point=point,
                value=value,
                elapsed_s=time.perf_counter() - start,
                attempts=attempt,
            )
        except PointTimeout as exc:
            last_error, status = exc, "timed_out"
        except Exception as exc:  # KeyboardInterrupt/SystemExit still propagate
            last_error, status = exc, "failed"
        if attempt < max_attempts:
            assert spec.retry is not None
            time.sleep(spec.retry.delay_s(index, attempt))
    assert last_error is not None
    if spec.on_error == "raise":
        raise last_error
    return PointResult(
        index=index,
        point=point,
        value=None,
        elapsed_s=time.perf_counter() - start,
        status=status,
        attempts=max_attempts,
        error=repr(last_error),
    )


def _run_chunk(
    fn: Callable[[Any], Any],
    chunk: "list[tuple[int, Any]]",
    spec: _EvalSpec = _DEFAULT_SPEC,
) -> list[PointResult]:
    """Worker entry point: evaluate one chunk of (index, point) pairs."""
    return [_eval_point(fn, index, point, spec) for index, point in chunk]


def _run_chunk_stamped(
    fn: Callable[[Any], Any],
    chunk: "list[tuple[int, Any]]",
    spec: _EvalSpec = _DEFAULT_SPEC,
) -> tuple[float, list[PointResult]]:
    """Pool worker entry point: chunk results plus the worker start time.

    The start stamp uses :func:`time.monotonic` (CLOCK_MONOTONIC — one
    system-wide epoch on the platforms we support), so the parent can
    subtract its submit stamp to get the executor queue wait.
    """
    return (time.monotonic(), _run_chunk(fn, chunk, spec))


def _chunked(
    items: "list[tuple[int, Any]]", chunksize: int
) -> "list[list[tuple[int, Any]]]":
    return [items[i : i + chunksize] for i in range(0, len(items), chunksize)]


def _record(checkpoint: Any, outcomes: "Iterable[PointResult]") -> None:
    """Journal freshly computed outcomes (no-op without a checkpoint)."""
    if checkpoint is None:
        return
    for outcome in outcomes:
        checkpoint.record(outcome)


def _restore_from_checkpoint(
    checkpoint: Any, indexed: "list[tuple[int, Any]]"
) -> "tuple[list[PointResult], list[tuple[int, Any]]]":
    """Split ``indexed`` into journalled points and points still to run.

    Journalled points come back as ``status='skipped'``
    :class:`PointResult` values restored bit-identically from the
    checkpoint; the remainder keeps its original (index, point) pairs.
    Shared by the local engine and the distributed fabric so resume
    semantics cannot drift between them.
    """
    if checkpoint is None or not indexed:
        return [], indexed
    done = checkpoint.load()
    if not done:
        return [], indexed
    restored = [
        PointResult(
            index=index,
            point=point,
            value=done[index].value,
            elapsed_s=done[index].elapsed_s,
            status="skipped",
            attempts=done[index].attempts,
        )
        for index, point in indexed
        if index in done
    ]
    remaining = [(index, point) for index, point in indexed if index not in done]
    return restored, remaining


# -- the public entry point ------------------------------------------------


def sweep(
    fn: Callable[[Any], Any],
    points: "Iterable[Any]",
    *,
    executor: str = "serial",
    jobs: "int | None" = None,
    chunksize: int = 1,
    on_error: str = "raise",
    retry: "RetryPolicy | None" = None,
    timeout_s: "float | None" = None,
    checkpoint: Any = None,
    max_respawns: int = 2,
) -> SweepResult:
    """Evaluate ``fn`` over ``points``; results come back in input order.

    ``executor='serial'`` (or a resolved worker count of 1) runs a plain
    loop in the calling process — no pools, no pickling, bitwise the
    behaviour the parallel paths must reproduce. ``chunksize`` batches
    points per task to amortise scheduling and serialisation overhead
    when points are cheap.

    ``on_error``, ``retry`` and ``timeout_s`` set the per-point failure
    policy (see the module docstring); ``checkpoint`` journals completed
    points for ``--resume``; ``max_respawns`` bounds how many times a
    crashed process pool is rebuilt before the engine degrades to its
    serial last resort.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}: expected one of {', '.join(EXECUTORS)}"
        )
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    if on_error not in ON_ERROR_POLICIES:
        raise ValueError(
            f"unknown on_error {on_error!r}: expected one of {', '.join(ON_ERROR_POLICIES)}"
        )
    if retry is not None and on_error != "retry":
        raise ValueError("a retry policy requires on_error='retry'")
    if timeout_s is not None and timeout_s <= 0.0:
        raise ValueError(f"timeout_s must be positive, got {timeout_s}")
    if max_respawns < 0:
        raise ValueError(f"max_respawns must be >= 0, got {max_respawns}")
    spec = _EvalSpec(
        on_error=on_error,
        retry=(retry or RetryPolicy()) if on_error == "retry" else None,
        timeout_s=timeout_s,
    )

    restored, indexed = _restore_from_checkpoint(checkpoint, list(enumerate(points)))
    n_jobs = 1 if executor == "serial" else min(resolve_jobs(jobs), max(len(indexed), 1))

    if not indexed and not restored:
        return SweepResult((), (), executor, n_jobs, chunksize, 0.0)
    respawns = 0
    start = time.perf_counter()
    with _trace.span(
        "perf.sweep",
        executor=executor,
        jobs=n_jobs,
        points=len(indexed) + len(restored),
        chunksize=chunksize,
        on_error=on_error,
    ) as sweep_span:
        if restored:
            sweep_span.add_event("resume", restored=len(restored), remaining=len(indexed))
        if not indexed:
            fresh: list[PointResult] = []
        elif executor == "serial" or n_jobs == 1:
            fresh = _sweep_serial(fn, indexed, spec=spec, checkpoint=checkpoint)
        else:
            fresh, respawns = _sweep_pooled(
                fn,
                indexed,
                executor=executor,
                n_jobs=n_jobs,
                chunksize=chunksize,
                sweep_span=sweep_span,
                spec=spec,
                checkpoint=checkpoint,
                max_respawns=max_respawns,
            )
        outcomes = sorted(restored + fresh, key=lambda r: r.index)
        wall = time.perf_counter() - start
        result = SweepResult(
            values=tuple(r.value for r in outcomes),
            timings=tuple(r.elapsed_s for r in outcomes),
            executor=executor,
            jobs=n_jobs,
            chunksize=chunksize,
            wall_s=wall,
            outcomes=tuple(outcomes),
            resumed=len(restored),
            respawns=respawns,
        )
        sweep_span.set_attributes(
            wall_s=result.wall_s,
            point_s=result.point_s,
            resumed=result.resumed,
            respawns=result.respawns,
        )
    _SWEEP_RUNS.inc()
    _SWEEP_POINTS.inc(len(result))
    _SWEEP_WALL.observe(result.wall_s)
    _SWEEP_COMPUTE.observe(result.point_s)
    _observe_outcomes(fresh, restored, respawns)
    return result


def _observe_outcomes(
    fresh: "list[PointResult]", restored: "list[PointResult]", respawns: int
) -> None:
    """Fold one sweep's resilience telemetry into the metrics registry."""
    if restored:
        _SWEEP_RESUMED.inc(len(restored))
    if respawns:
        _SWEEP_RESPAWNS.inc(respawns)
    retries = sum(o.attempts - 1 for o in fresh if o.attempts > 1)
    if retries:
        _SWEEP_RETRIES.inc(retries)
    for outcome in fresh:
        if outcome.status == "failed":
            _SWEEP_FAILED.inc()
        elif outcome.status == "timed_out":
            _SWEEP_TIMEOUTS.inc()
        elif outcome.status == "crashed":
            _SWEEP_CRASHES.inc()


def _sweep_serial(
    fn: Callable[[Any], Any],
    indexed: "list[tuple[int, Any]]",
    *,
    spec: _EvalSpec,
    checkpoint: Any,
) -> list[PointResult]:
    """The in-process path: a plain loop, per-point spans when traced."""
    traced = _trace.GLOBAL_TRACER.enabled
    results: list[PointResult] = []
    for index, point in indexed:
        if traced:
            with _trace.span("perf.point", index=index) as point_span:
                outcome = _eval_point(fn, index, point, spec)
                point_span.set_attributes(elapsed_s=outcome.elapsed_s, status=outcome.status)
        else:
            outcome = _eval_point(fn, index, point, spec)
        _record(checkpoint, (outcome,))
        results.append(outcome)
    return results


def _sweep_pooled(
    fn: Callable[[Any], Any],
    indexed: "list[tuple[int, Any]]",
    *,
    executor: str,
    n_jobs: int,
    chunksize: int,
    sweep_span: Any,
    spec: _EvalSpec,
    checkpoint: Any,
    max_respawns: int,
) -> "tuple[list[PointResult], int]":
    """The pool path: chunked dispatch with worker-crash isolation.

    Thread pools cannot break, so they run exactly one round. A process
    pool that loses a worker (``BrokenProcessPool``) keeps every chunk
    that already came back, rebuilds the pool and requeues the rest —
    up to ``max_respawns`` times, after which the surviving points run
    through :func:`_sweep_last_resort`.
    """
    pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
    pending = list(enumerate(_chunked(indexed, chunksize)))
    results: list[PointResult] = []
    respawns = 0
    while pending:
        completed, error, broken = _run_round(
            pool_cls, n_jobs, fn, pending, spec, sweep_span, checkpoint
        )
        for chunk_results in completed.values():
            results.extend(chunk_results)
        if error is not None:
            raise error
        if not broken:
            break
        pending = [(index, chunk) for index, chunk in pending if index not in completed]
        respawns += 1
        sweep_span.add_event("pool_respawn", respawn=respawns, chunks_left=len(pending))
        if respawns > max_respawns:
            leftover = [pair for _, chunk in pending for pair in chunk]
            results.extend(
                _sweep_last_resort(fn, leftover, spec, sweep_span, checkpoint)
            )
            break
        n_jobs = min(n_jobs, max(len(pending), 1))
    return results, respawns


def _run_round(
    pool_cls: type,
    n_jobs: int,
    fn: Callable[[Any], Any],
    tasks: "list[tuple[int, list[tuple[int, Any]]]]",
    spec: _EvalSpec,
    sweep_span: Any,
    checkpoint: Any,
) -> "tuple[dict[int, list[PointResult]], BaseException | None, bool]":
    """Submit every task to one pool; returns (completed, error, broken).

    Completed chunks are journalled and kept even when the pool breaks
    mid-round. Error scanning walks futures in submission order, so with
    ``on_error='raise'`` the lowest-indexed failing point's exception
    surfaces deterministically — exactly the historical contract.
    """
    completed: dict[int, list[PointResult]] = {}
    error: "BaseException | None" = None
    broken = False
    pool = pool_cls(max_workers=n_jobs)
    try:
        submitted: dict[int, float] = {}
        futures: dict[Any, int] = {}
        try:
            for chunk_index, chunk in tasks:
                submitted[chunk_index] = time.monotonic()
                futures[pool.submit(_run_chunk_stamped, fn, chunk, spec)] = chunk_index
            wait(list(futures), return_when=FIRST_EXCEPTION)
        except BrokenExecutor:
            broken = True
        for future, chunk_index in futures.items():
            if error is not None:
                future.cancel()
                continue
            if future.cancelled():
                continue
            exc = future.exception()
            if exc is None:
                started, chunk_results = future.result()
                queue_wait = max(0.0, started - submitted[chunk_index])
                _QUEUE_WAIT.observe(queue_wait)
                sweep_span.add_event(
                    "chunk",
                    index=chunk_index,
                    points=len(chunk_results),
                    queue_wait_s=queue_wait,
                )
                _record(checkpoint, chunk_results)
                completed[chunk_index] = chunk_results
            elif isinstance(exc, BrokenExecutor):
                broken = True
            else:
                error = exc
    except KeyboardInterrupt:
        # Orderly teardown on Ctrl-C: drop queued work, don't block on
        # running workers, let the caller report and exit 130.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=not broken, cancel_futures=True)
    return completed, error, broken


def _sweep_last_resort(
    fn: Callable[[Any], Any],
    pairs: "list[tuple[int, Any]]",
    spec: _EvalSpec,
    sweep_span: Any,
    checkpoint: Any,
) -> list[PointResult]:
    """Finish a sweep whose process pool kept dying.

    With ``on_error='raise'`` the surviving points run serially in the
    parent — the historical trust level. Otherwise each point gets its
    own single-worker pool, so a point that reliably kills its worker is
    *identified* (status ``"crashed"``) instead of taking the sweep (or
    the parent) down with it.
    """
    mode = "serial" if spec.on_error == "raise" else "isolate"
    sweep_span.add_event("last_resort", points=len(pairs), mode=mode)
    results: list[PointResult] = []
    for index, point in pairs:
        if mode == "serial":
            outcome = _eval_point(fn, index, point, spec)
        else:
            try:
                with ProcessPoolExecutor(max_workers=1) as solo:
                    _, chunk_results = solo.submit(
                        _run_chunk_stamped, fn, [(index, point)], spec
                    ).result()
                outcome = chunk_results[0]
            except BrokenExecutor as exc:
                outcome = PointResult(
                    index=index,
                    point=point,
                    value=None,
                    elapsed_s=0.0,
                    status="crashed",
                    attempts=1,
                    error=repr(exc),
                )
        _record(checkpoint, (outcome,))
        results.append(outcome)
    return results
