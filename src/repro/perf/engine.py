"""The parallel sweep engine.

A *sweep* evaluates one pure function over a grid of points. The engine
owns the three concerns every sweep in this package shares:

* **executor choice** — ``serial`` (plain loop, zero overhead),
  ``thread`` (useful when the point function releases the GIL, e.g.
  NumPy kernels) or ``process`` (true parallelism for pure-Python point
  functions — the common case here);
* **deterministic ordering** — results come back in input order no
  matter which worker finished first, so parallel artifacts are
  byte-identical to serial ones;
* **per-point timing** — each point's evaluation time is captured in
  the worker itself (excluding scheduling and serialisation), so the
  benchmark suite can separate compute from orchestration overhead.

Point functions used with the ``process`` executor must be picklable:
module-level functions, or :func:`functools.partial` over one.
Exceptions raised by a point function propagate to the caller — for the
``process`` executor they cross the pipe and re-raise in the parent,
always for the lowest-indexed failing point, so failures are as
deterministic as results.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = ["EXECUTORS", "PointResult", "SweepResult", "resolve_jobs", "sweep"]

#: Recognised executor names.
EXECUTORS: tuple[str, ...] = ("serial", "thread", "process")

# Always-on aggregate metrics — one increment/observation per sweep()
# call (never per point), so the disabled-instrumentation overhead stays
# inside the bench_obs_overhead budget.
_SWEEP_RUNS = _metrics.REGISTRY.counter("sweep.runs", help="sweep() invocations")
_SWEEP_POINTS = _metrics.REGISTRY.counter("sweep.points", help="points evaluated across all sweeps")
_SWEEP_WALL = _metrics.REGISTRY.histogram("sweep.wall_s", help="whole-sweep wall time (s)")
_SWEEP_COMPUTE = _metrics.REGISTRY.histogram(
    "sweep.point_s", help="summed in-worker compute time per sweep (s)"
)
_QUEUE_WAIT = _metrics.REGISTRY.histogram(
    "sweep.queue_wait_s", help="submit-to-start executor queue wait per chunk (s)"
)


@dataclass(frozen=True, slots=True)
class PointResult:
    """One evaluated sweep point."""

    index: int
    point: Any
    value: Any
    elapsed_s: float


@dataclass(frozen=True, slots=True)
class SweepResult:
    """A completed sweep: values in input order plus timing telemetry."""

    values: tuple[Any, ...]
    timings: tuple[float, ...]
    executor: str
    jobs: int
    chunksize: int
    wall_s: float

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    @property
    def point_s(self) -> float:
        """Total in-worker compute time across all points."""
        return sum(self.timings)

    @property
    def parallel_efficiency(self) -> float:
        """Compute-to-wall ratio per worker: 1.0 means perfect scaling.

        Serial sweeps report the bare compute/wall ratio (< 1.0 measures
        engine overhead); parallel sweeps divide by the worker count.
        """
        if self.wall_s <= 0.0:
            return 0.0
        return self.point_s / (self.wall_s * max(self.jobs, 1))


def resolve_jobs(jobs: "int | None") -> int:
    """Normalise a ``--jobs`` value: ``None``/0 means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return jobs


def _timed_point(fn: Callable[[Any], Any], index: int, point: Any) -> PointResult:
    start = time.perf_counter()
    value = fn(point)
    return PointResult(
        index=index, point=point, value=value, elapsed_s=time.perf_counter() - start
    )


def _run_chunk(
    fn: Callable[[Any], Any], chunk: "list[tuple[int, Any]]"
) -> list[PointResult]:
    """Worker entry point: evaluate one chunk of (index, point) pairs."""
    return [_timed_point(fn, index, point) for index, point in chunk]


def _run_chunk_stamped(
    fn: Callable[[Any], Any], chunk: "list[tuple[int, Any]]"
) -> tuple[float, list[PointResult]]:
    """Pool worker entry point: chunk results plus the worker start time.

    The start stamp uses :func:`time.monotonic` (CLOCK_MONOTONIC — one
    system-wide epoch on the platforms we support), so the parent can
    subtract its submit stamp to get the executor queue wait.
    """
    return (time.monotonic(), _run_chunk(fn, chunk))


def _chunked(
    items: "list[tuple[int, Any]]", chunksize: int
) -> "list[list[tuple[int, Any]]]":
    return [items[i : i + chunksize] for i in range(0, len(items), chunksize)]


def sweep(
    fn: Callable[[Any], Any],
    points: "Iterable[Any]",
    *,
    executor: str = "serial",
    jobs: "int | None" = None,
    chunksize: int = 1,
) -> SweepResult:
    """Evaluate ``fn`` over ``points``; results come back in input order.

    ``executor='serial'`` (or a resolved worker count of 1) runs a plain
    loop in the calling process — no pools, no pickling, bitwise the
    behaviour the parallel paths must reproduce. ``chunksize`` batches
    points per task to amortise scheduling and serialisation overhead
    when points are cheap.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}: expected one of {', '.join(EXECUTORS)}"
        )
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    indexed: list[tuple[int, Any]] = list(enumerate(points))
    n_jobs = 1 if executor == "serial" else min(resolve_jobs(jobs), max(len(indexed), 1))

    if not indexed:
        return SweepResult((), (), executor, n_jobs, chunksize, 0.0)
    with _trace.span(
        "perf.sweep", executor=executor, jobs=n_jobs, points=len(indexed), chunksize=chunksize
    ) as sweep_span:
        if executor == "serial" or n_jobs == 1:
            result = _sweep_serial(fn, indexed, executor=executor, chunksize=chunksize)
        else:
            result = _sweep_pooled(
                fn,
                indexed,
                executor=executor,
                n_jobs=n_jobs,
                chunksize=chunksize,
                sweep_span=sweep_span,
            )
        sweep_span.set_attributes(wall_s=result.wall_s, point_s=result.point_s)
    _SWEEP_RUNS.inc()
    _SWEEP_POINTS.inc(len(result))
    _SWEEP_WALL.observe(result.wall_s)
    _SWEEP_COMPUTE.observe(result.point_s)
    return result


def _sweep_serial(
    fn: Callable[[Any], Any],
    indexed: "list[tuple[int, Any]]",
    *,
    executor: str,
    chunksize: int,
) -> SweepResult:
    """The in-process path: a plain loop, per-point spans when traced."""
    start = time.perf_counter()
    if _trace.GLOBAL_TRACER.enabled:
        results = []
        for index, point in indexed:
            with _trace.span("perf.point", index=index) as point_span:
                outcome = _timed_point(fn, index, point)
                point_span.set_attribute("elapsed_s", outcome.elapsed_s)
            results.append(outcome)
    else:
        results = _run_chunk(fn, indexed)
    wall = time.perf_counter() - start
    return SweepResult(
        values=tuple(r.value for r in results),
        timings=tuple(r.elapsed_s for r in results),
        executor=executor,
        jobs=1,
        chunksize=chunksize,
        wall_s=wall,
    )


def _sweep_pooled(
    fn: Callable[[Any], Any],
    indexed: "list[tuple[int, Any]]",
    *,
    executor: str,
    n_jobs: int,
    chunksize: int,
    sweep_span: Any,
) -> SweepResult:
    """The pool path: chunked dispatch, queue-wait accounting per chunk."""
    start = time.perf_counter()
    pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
    chunks = _chunked(indexed, chunksize)
    results: list[PointResult] = []
    with pool_cls(max_workers=n_jobs) as pool:
        submitted: list[float] = []
        futures = []
        for chunk in chunks:
            submitted.append(time.monotonic())
            futures.append(pool.submit(_run_chunk_stamped, fn, chunk))
        wait(futures, return_when=FIRST_EXCEPTION)
        error: BaseException | None = None
        for chunk_index, future in enumerate(futures):
            if error is not None:
                future.cancel()
                continue
            exc = future.exception() if not future.cancelled() else None
            if exc is not None:
                error = exc
            elif not future.cancelled():
                started, chunk_results = future.result()
                queue_wait = max(0.0, started - submitted[chunk_index])
                _QUEUE_WAIT.observe(queue_wait)
                sweep_span.add_event(
                    "chunk",
                    index=chunk_index,
                    points=len(chunk_results),
                    queue_wait_s=queue_wait,
                )
                results.extend(chunk_results)
        if error is not None:
            raise error
    results.sort(key=lambda r: r.index)
    wall = time.perf_counter() - start
    return SweepResult(
        values=tuple(r.value for r in results),
        timings=tuple(r.elapsed_s for r in results),
        executor=executor,
        jobs=n_jobs,
        chunksize=chunksize,
        wall_s=wall,
    )
