"""A local worker supervisor: spawn, watch, respawn — within a budget.

:class:`WorkerSupervisor` manages a small fleet of ``sweep-worker``
subprocesses on the local host. Each worker announces its bound port
on stdout; the supervisor parses the announcement, watches the process
and — when it dies for any reason — respawns it *on the same port*, so
a coordinator re-dialing the endpoint under its
:class:`~repro.perf.fabric.MembershipPolicy` finds the replacement
exactly where the casualty was.

Respawning is rate-limited per worker slot: more than
``max_restarts`` restarts inside ``restart_window_s`` and the slot is
given up (a worker that dies that often is a crash loop, and feeding
it leases would just spend the fleet's crash budgets). The limiter is
the process-level sibling of the fabric's quarantine ledger — the
supervisor stops paying for a flapper's respawns just like the
coordinator stops paying for its leases.

The CLI's ``--supervise N`` flag wraps a sweep in one of these, which
is also the intended library idiom::

    with WorkerSupervisor(2, throttle_s=0.1) as fleet:
        result = fabric_sweep(fn, points, workers=",".join(fleet.endpoints))

Everything is stdlib: :mod:`subprocess` children, one monitor thread,
no process groups or signals beyond terminate/kill.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any

from repro.core.errors import FabricError
from repro.obs import metrics as _metrics

__all__ = ["WorkerSupervisor"]

#: What a booting worker prints once its listen socket is bound.
_ANNOUNCE_RE = re.compile(r"worker listening on (\S+):(\d+)")

_SUPERVISED = _metrics.REGISTRY.gauge(
    "fabric.supervised_workers", help="locally-supervised worker processes alive"
)
_RESPAWNS = _metrics.REGISTRY.counter(
    "fabric.worker_respawns", help="supervised workers respawned after dying"
)
_GIVEUPS = _metrics.REGISTRY.counter(
    "fabric.respawn_giveups", help="supervised worker slots abandoned to crash loops"
)


class _Slot:
    """One supervised worker position: a port, a process, a restart log."""

    def __init__(self, ordinal: int):
        self.ordinal = ordinal
        self.host = ""
        self.port = 0
        self.process: "subprocess.Popen[str] | None" = None
        self.restarts: "deque[float]" = deque()
        self.given_up = False


class WorkerSupervisor:
    """Keep ``count`` local ``sweep-worker`` processes alive.

    ``throttle_s`` is forwarded to the workers (chaos pacing);
    ``max_restarts`` / ``restart_window_s`` bound the respawn rate per
    worker slot before the supervisor gives the slot up; ``poll_s`` is
    how often the monitor thread checks for corpses. ``python``
    overrides the interpreter used to launch workers (defaults to
    :data:`sys.executable`).
    """

    def __init__(
        self,
        count: int,
        *,
        host: str = "127.0.0.1",
        throttle_s: float = 0.0,
        max_restarts: int = 5,
        restart_window_s: float = 30.0,
        poll_s: float = 0.1,
        python: "str | None" = None,
    ):
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if throttle_s < 0.0:
            raise ValueError(f"throttle_s must be >= 0, got {throttle_s}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        if restart_window_s <= 0.0:
            raise ValueError(
                f"restart_window_s must be positive, got {restart_window_s}"
            )
        if poll_s <= 0.0:
            raise ValueError(f"poll_s must be positive, got {poll_s}")
        self._host = host
        self._throttle_s = throttle_s
        self._max_restarts = max_restarts
        self._restart_window_s = restart_window_s
        self._poll_s = poll_s
        self._python = python or sys.executable
        self._slots = [_Slot(ordinal) for ordinal in range(count)]
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._monitor: "threading.Thread | None" = None
        self._started = False

    # -- lifecycle -------------------------------------------------------

    @property
    def endpoints(self) -> "tuple[str, ...]":
        """``host:port`` strings for every slot (valid after :meth:`start`)."""
        return tuple(f"{slot.host}:{slot.port}" for slot in self._slots)

    def start(self) -> "tuple[str, ...]":
        """Launch every worker; returns their endpoints once all announce."""
        if self._started:
            raise FabricError("the supervisor is already running")
        self._started = True
        try:
            for slot in self._slots:
                self._spawn(slot, port=0)
        except Exception:
            self.stop()
            raise
        self._monitor = threading.Thread(
            target=self._watch, name="fabric-supervisor", daemon=True
        )
        self._monitor.start()
        _SUPERVISED.set(self._alive_count())
        return self.endpoints

    def stop(self) -> None:
        """Terminate every worker and stop respawning (idempotent)."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=max(1.0, self._poll_s * 4))
            self._monitor = None
        with self._lock:
            processes = [
                slot.process for slot in self._slots if slot.process is not None
            ]
        for process in processes:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + 2.0
        for process in processes:
            budget = max(0.0, deadline - time.monotonic())
            try:
                process.wait(timeout=budget)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=1.0)
        _SUPERVISED.set(0)

    def __enter__(self) -> "WorkerSupervisor":
        """Context-manager entry: :meth:`start` the fleet."""
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: :meth:`stop` the fleet."""
        self.stop()

    # -- spawning --------------------------------------------------------

    def _command(self, port: int) -> "list[str]":
        """The ``sweep-worker`` argv for one worker bound to ``port``."""
        command = [
            self._python,
            "-m",
            "repro.cli",
            "sweep-worker",
            "--listen",
            f"{self._host}:{port}",
        ]
        if self._throttle_s:
            command += ["--throttle", str(self._throttle_s)]
        return command

    def _environment(self) -> "dict[str, str]":
        """The child environment, with this ``repro`` importable."""
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )
        return env

    def _spawn(self, slot: _Slot, *, port: int) -> None:
        """Start one worker and wait for its port announcement."""
        process = subprocess.Popen(
            self._command(port),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=self._environment(),
        )
        announced: "list[str]" = []

        def read_announcement() -> None:
            """Pull the first stdout line (the bind announcement)."""
            line = process.stdout.readline() if process.stdout else ""
            announced.append(line)

        reader = threading.Thread(target=read_announcement, daemon=True)
        reader.start()
        reader.join(timeout=10.0)
        match = _ANNOUNCE_RE.search(announced[0]) if announced else None
        if match is None:
            process.kill()
            process.wait(timeout=2.0)
            raise FabricError(
                f"supervised worker {slot.ordinal} never announced its port"
            )
        threading.Thread(
            target=self._drain, args=(process,), daemon=True
        ).start()
        with self._lock:
            slot.host = match.group(1)
            slot.port = int(match.group(2))
            slot.process = process

    @staticmethod
    def _drain(process: "subprocess.Popen[str]") -> None:
        """Discard a worker's remaining stdout so it never blocks on the pipe."""
        if process.stdout is None:
            return
        for _ in process.stdout:
            pass

    # -- monitoring ------------------------------------------------------

    def _alive_count(self) -> int:
        """Workers currently running."""
        with self._lock:
            return sum(
                1
                for slot in self._slots
                if slot.process is not None and slot.process.poll() is None
            )

    def _watch(self) -> None:
        """Respawn dead workers (same port) until stopped or given up."""
        while not self._stop.wait(self._poll_s):
            for slot in self._slots:
                with self._lock:
                    process = slot.process
                    given_up = slot.given_up
                if given_up or process is None or process.poll() is None:
                    continue
                if self._stop.is_set():
                    return
                self._respawn(slot)
            _SUPERVISED.set(self._alive_count())

    def _respawn(self, slot: _Slot) -> None:
        """One worker died: relaunch it on its port, within the rate budget."""
        now = time.monotonic()
        slot.restarts.append(now)
        while slot.restarts and now - slot.restarts[0] > self._restart_window_s:
            slot.restarts.popleft()
        if len(slot.restarts) > self._max_restarts:
            slot.given_up = True
            _GIVEUPS.inc()
            return
        try:
            self._spawn(slot, port=slot.port)
        except (FabricError, OSError):
            # The replacement never came up (port still draining, fork
            # pressure): leave the corpse for the next poll, which
            # retries under the same rate budget.
            return
        _RESPAWNS.inc()
