"""Performance substrate: parallel sweeps and model-evaluation caching.

Every analysis in this package is a *sweep* — the same pure function
evaluated over a grid of points (25 survey records, 47 taxonomy classes,
fault-rate ladders, design sizes). :mod:`repro.perf` gives those sweeps
a shared engine:

* :func:`sweep` — map a function over points with a serial, thread or
  process executor, deterministic result ordering and per-point timing;
* :class:`ModelCache` / :func:`evaluate_models` — an LRU-memoised cache
  over the Eq.-1 area, Eq.-2 configuration-bit, energy and
  reconfiguration models, keyed on ``(class_id, n, technology)``.

The analysis sweeps (:func:`repro.analysis.resilience.resilience_sweep`,
:func:`repro.analysis.survey_costs.evaluate_survey`,
:func:`repro.analysis.pareto.evaluate_classes`) and their CLI
subcommands (``--jobs N``) are built on this engine; see
``docs/performance.md``.
"""

from repro.perf.cache import (
    DEFAULT_CACHE,
    CacheStats,
    ModelCache,
    ModelEstimates,
    evaluate_models,
)
from repro.perf.engine import (
    EXECUTORS,
    PointResult,
    SweepResult,
    resolve_jobs,
    sweep,
)

__all__ = [
    "EXECUTORS",
    "PointResult",
    "SweepResult",
    "resolve_jobs",
    "sweep",
    "DEFAULT_CACHE",
    "CacheStats",
    "ModelCache",
    "ModelEstimates",
    "evaluate_models",
]
