"""Performance substrate: parallel sweeps, caching and resilient execution.

Every analysis in this package is a *sweep* — the same pure function
evaluated over a grid of points (25 survey records, 47 taxonomy classes,
fault-rate ladders, design sizes). :mod:`repro.perf` gives those sweeps
a shared engine:

* :func:`sweep` — map a function over points with a serial, thread or
  process executor, deterministic result ordering, per-point timing,
  failure policies (``on_error``/:class:`RetryPolicy`/``timeout_s``),
  worker-crash isolation and checkpoint/resume;
* :func:`fabric_sweep` / :class:`FabricWorker` — the distributed
  fabric: the same sweep sharded over TCP workers with lease-based
  failure detection, work-stealing, chaos-verified resume and
  self-healing elastic membership — lost endpoints are re-dialed,
  flappers quarantined (:class:`MembershipPolicy`), late joiners
  admitted mid-sweep, and :class:`WorkerSupervisor` keeps local
  worker processes respawned (the CLI's ``sweep-worker`` /
  ``--workers`` / ``--supervise`` flags);
* :class:`SweepCheckpoint` — the append-only journal behind the CLI's
  ``--resume`` flag, keyed by a content hash of the sweep spec — and
  :class:`ShardedCheckpoint`, its fabric-side sibling that fans the
  journal out over index-sharded files with a deterministic merge;
* :class:`ModelCache` / :func:`evaluate_models` — an LRU-memoised cache
  over the Eq.-1 area, Eq.-2 configuration-bit, energy and
  reconfiguration models, keyed on ``(class_id, n, technology)``.

The analysis sweeps (:func:`repro.analysis.resilience.resilience_sweep`,
:func:`repro.analysis.survey_costs.evaluate_survey`,
:func:`repro.analysis.pareto.evaluate_classes`) and their CLI
subcommands (``--jobs N``, ``--on-error``, ``--timeout``, ``--resume``)
are built on this engine; see ``docs/performance.md`` and
``docs/robustness.md``.
"""

from repro.perf.cache import (
    DEFAULT_CACHE,
    CacheStats,
    ModelCache,
    ModelEstimates,
    evaluate_models,
)
from repro.perf.engine import (
    EXECUTORS,
    ON_ERROR_POLICIES,
    POINT_STATUSES,
    PointResult,
    PointTimeout,
    RetryPolicy,
    SweepResult,
    resolve_jobs,
    sweep,
)
from repro.perf.fabric import (
    FABRIC_PROTOCOL,
    FABRIC_PROTOCOLS,
    WORKER_ENV,
    FabricWorker,
    MembershipPolicy,
    fabric_sweep,
    fleet_health,
    parse_endpoints,
)
from repro.perf.journal import (
    DEFAULT_SHARDS,
    JournalEntry,
    JournalLock,
    ShardedCheckpoint,
    SweepCheckpoint,
    checkpoint_directory,
    merge_journal_loads,
    spec_digest,
)
from repro.perf.supervisor import WorkerSupervisor

__all__ = [
    "EXECUTORS",
    "ON_ERROR_POLICIES",
    "POINT_STATUSES",
    "PointResult",
    "PointTimeout",
    "RetryPolicy",
    "SweepResult",
    "resolve_jobs",
    "sweep",
    "FABRIC_PROTOCOL",
    "FABRIC_PROTOCOLS",
    "WORKER_ENV",
    "FabricWorker",
    "MembershipPolicy",
    "WorkerSupervisor",
    "fabric_sweep",
    "fleet_health",
    "parse_endpoints",
    "DEFAULT_SHARDS",
    "JournalEntry",
    "JournalLock",
    "ShardedCheckpoint",
    "SweepCheckpoint",
    "checkpoint_directory",
    "merge_journal_loads",
    "spec_digest",
    "DEFAULT_CACHE",
    "CacheStats",
    "ModelCache",
    "ModelEstimates",
    "evaluate_models",
]
