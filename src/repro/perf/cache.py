"""LRU-memoised evaluation of the paper's cost models.

Every sweep in :mod:`repro.analysis` prices taxonomy classes with the
same four estimators — Eq.-1 area, Eq.-2 configuration bits, the energy
companion and the reconfiguration-latency conversion. The estimators
are pure functions of ``(signature, n)`` plus their parameter sets, so
re-evaluating them per sweep point is wasted work: the 25-architecture
survey maps onto far fewer distinct ``(class, size)`` pairs, and a DSE
run asks for the same 47 classes at the same ``n`` once per flexibility
floor.

:class:`ModelCache` memoises one bundle of model evaluations behind a
key of ``(class_id, n, technology)``:

* ``class_id`` — the canonical signature description (two classes share
  an entry exactly when they share a signature);
* ``n`` — the resolved design size;
* ``technology`` — the *parameters* of the technology node, not its
  name, so replacing a node with retuned numbers invalidates entries
  rather than silently serving stale areas.

The cache is per-process. Worker processes spawned by
:func:`repro.perf.sweep` each hold their own copy — hits there reduce
per-point compute; hits in the parent accumulate across repeated
analysis calls (the CLI ``report`` path, the benchmark suite).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from threading import Lock

from repro.core.signature import Signature
from repro.models.area import AreaModel
from repro.obs import metrics as _metrics
from repro.models.configbits import ConfigBitsModel
from repro.models.energy import EnergyModel
from repro.models.reconfiguration import ReconfigurationModel
from repro.models.technology import NODE_65NM, TechnologyNode

__all__ = [
    "CacheStats",
    "ModelEstimates",
    "ModelCache",
    "DEFAULT_CACHE",
    "evaluate_models",
]


@dataclass(frozen=True, slots=True)
class ModelEstimates:
    """One class-at-a-size, priced by all four models."""

    class_id: str
    n: int
    technology: str
    area_ge: float
    area_um2: float
    config_bits: int
    energy_per_op_pj: float
    reconfig_cycles: int


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Counters snapshot: effectiveness of the memoisation."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def lookups(self) -> int:
        """Total lookups (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 before any lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0


# Process-wide counters shared by every ModelCache instance; the CLI's
# ``repro-taxonomy metrics`` subcommand reads them back.
_CACHE_HITS = _metrics.REGISTRY.counter("model_cache.hits", help="ModelCache lookup hits")
_CACHE_MISSES = _metrics.REGISTRY.counter("model_cache.misses", help="ModelCache lookup misses")
_CACHE_EVICTIONS = _metrics.REGISTRY.counter(
    "model_cache.evictions", help="ModelCache LRU evictions"
)


def _technology_key(node: TechnologyNode) -> tuple:
    """Key a node by its parameters so retuned values invalidate entries."""
    return (node.name, node.feature_nm, node.ge_area_um2, node.sram_bit_um2)


class ModelCache:
    """LRU cache over :class:`ModelEstimates`, keyed ``(class_id, n, technology)``."""

    def __init__(
        self,
        *,
        maxsize: int = 4096,
        area_model: "AreaModel | None" = None,
        config_model: "ConfigBitsModel | None" = None,
        energy_model: "EnergyModel | None" = None,
        reconfig_model: "ReconfigurationModel | None" = None,
        technology: TechnologyNode = NODE_65NM,
    ):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.area_model = area_model if area_model is not None else AreaModel()
        self.config_model = (
            config_model if config_model is not None else ConfigBitsModel()
        )
        self.energy_model = (
            energy_model
            if energy_model is not None
            else EnergyModel(area_model=self.area_model)
        )
        self.reconfig_model = (
            reconfig_model
            if reconfig_model is not None
            else ReconfigurationModel(config_model=self.config_model)
        )
        self.technology = technology
        self._entries: "OrderedDict[tuple, ModelEstimates]" = OrderedDict()
        self._lock = Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- lookup ----------------------------------------------------------

    def evaluate(
        self,
        signature: Signature,
        *,
        n: int = 16,
        technology: "TechnologyNode | None" = None,
        class_id: "str | None" = None,
    ) -> ModelEstimates:
        """Price a signature at size ``n``, memoised.

        ``class_id`` defaults to the signature's canonical description;
        pass an explicit id only if it identifies the signature at least
        as precisely (two different signatures must never share one).
        """
        node = technology if technology is not None else self.technology
        key_id = class_id if class_id is not None else signature.describe()
        key = (key_id, n, _technology_key(node))
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._hits += 1
                _CACHE_HITS.inc()
                self._entries.move_to_end(key)
                return cached
            self._misses += 1
            _CACHE_MISSES.inc()
        estimates = ModelEstimates(
            class_id=key_id,
            n=n,
            technology=node.name,
            area_ge=self.area_model.total_ge(signature, n=n),
            area_um2=self.area_model.total_um2(signature, n=n, node=node),
            config_bits=self.config_model.total(signature, n=n),
            energy_per_op_pj=self.energy_model.energy_per_op(signature, n=n),
            reconfig_cycles=self.reconfig_model.cost(signature, n=n).cycles,
        )
        with self._lock:
            self._entries[key] = estimates
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
                _CACHE_EVICTIONS.inc()
        return estimates

    # -- maintenance -----------------------------------------------------

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        """A snapshot of the cache's hit/miss/eviction counters and size."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                maxsize=self.maxsize,
            )


#: Shared per-process cache used whenever a sweep runs with default models.
DEFAULT_CACHE = ModelCache()


def evaluate_models(
    signature: Signature,
    *,
    n: int = 16,
    technology: "TechnologyNode | None" = None,
    cache: "ModelCache | None" = None,
) -> ModelEstimates:
    """Module-level entry point: evaluate through a cache (default shared)."""
    chosen = cache if cache is not None else DEFAULT_CACHE
    return chosen.evaluate(signature, n=n, technology=technology)
