"""The naming hierarchy of computing machines (Fig. 2).

Fig. 2 arranges the taxonomy as a tree: machine types at the root's
children (Data / Instruction / Universal flow), processing types below
them (Uni / Array / Multi / Spatial), and the sub-processing numerals as
leaves. This module builds that tree from the enumerated classes so the
rendering in :mod:`repro.reporting.figures` is derived, not drawn by
hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.naming import MachineType, ProcessingType
from repro.core.taxonomy import TaxonomyClass, all_classes

__all__ = ["HierarchyNode", "build_hierarchy", "iter_paths"]


@dataclass
class HierarchyNode:
    """A node in the Fig.-2 tree."""

    label: str
    children: list["HierarchyNode"] = field(default_factory=list)
    classes: list[TaxonomyClass] = field(default_factory=list)

    def child(self, label: str) -> "HierarchyNode":
        """Find or create a child with the given label."""
        for node in self.children:
            if node.label == label:
                return node
        node = HierarchyNode(label)
        self.children.append(node)
        return node

    @property
    def leaf_count(self) -> int:
        """Number of leaf classes under this node."""
        if not self.children:
            return max(1, len(self.classes))
        return sum(child.leaf_count for child in self.children)

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "HierarchyNode"]]:
        """Depth-first traversal yielding (depth, node)."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


#: Display order for machine types (matches Fig. 2 left-to-right).
_MACHINE_ORDER = (
    MachineType.DATA_FLOW,
    MachineType.INSTRUCTION_FLOW,
    MachineType.UNIVERSAL_FLOW,
)

_PROCESSING_ORDER = (
    ProcessingType.UNI,
    ProcessingType.ARRAY,
    ProcessingType.MULTI,
    ProcessingType.SPATIAL,
)


def build_hierarchy(*, include_ni: bool = False) -> HierarchyNode:
    """Build the Fig.-2 tree from the enumerated taxonomy.

    NI rows have no place in the naming hierarchy and are skipped unless
    ``include_ni`` is set, in which case they appear under a dedicated
    "Not Implementable" branch of the instruction-flow subtree.
    """
    root = HierarchyNode("Computing Machines")
    for machine_type in _MACHINE_ORDER:
        root.child(machine_type.label)
    for cls in all_classes():
        if cls.name is None:
            if include_ni:
                branch = root.child(MachineType.INSTRUCTION_FLOW.label)
                ni_node = branch.child("Not Implementable")
                ni_node.classes.append(cls)
            continue
        mt_node = root.child(cls.name.machine_type.label)
        pt_node = mt_node.child(cls.name.processing_type.label)
        pt_node.classes.append(cls)
    # Order processing-type children canonically.
    for mt_node in root.children:
        mt_node.children.sort(
            key=lambda node: next(
                (
                    index
                    for index, pt in enumerate(_PROCESSING_ORDER)
                    if pt.label == node.label
                ),
                len(_PROCESSING_ORDER),
            )
        )
    return root


def iter_paths(root: HierarchyNode) -> Iterator[tuple[str, ...]]:
    """Yield every root-to-leaf label path (useful for tests)."""

    def _walk(node: HierarchyNode, prefix: tuple[str, ...]) -> Iterator[tuple[str, ...]]:
        path = prefix + (node.label,)
        if not node.children and not node.classes:
            yield path
            return
        for cls in node.classes:
            yield path + (cls.comment,)
        for child in node.children:
            yield from _walk(child, path)

    yield from _walk(root, ())
