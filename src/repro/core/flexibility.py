"""The flexibility scoring system (§III-B, Table II).

Flexibility in the paper's sense is *the ability of an architecture to
morph into a different computing machine* — to re-organise its components
to match an algorithm. The scoring rule is:

* 1 point for each processor population whose multiplicity is ``n`` or
  ``v`` (extra processors can be reorganised or switched off);
* 1 point for each connectivity site carrying an ``x`` (switched) link;
* 1 extra point for universal-flow machines, whose building blocks can
  exchange roles (the ``v`` multiplicity itself).

The numbers are *relative*: data-flow and instruction-flow scores are not
mutually comparable (those machines cannot substitute each other), but
each is comparable against a universal-flow machine. The
:class:`FlexibilityScore` breakdown preserves enough structure for
callers to respect that caveat.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.connectivity import LinkSite
from repro.core.naming import MachineType
from repro.core.signature import Signature

__all__ = ["FlexibilityScore", "score_signature", "flexibility", "comparable"]


@dataclass(frozen=True, slots=True)
class FlexibilityScore:
    """Itemised flexibility score for one signature."""

    multiplicity_points: int
    """Points from plural (n/v) IP and DP populations (0..2)."""

    switch_points: int
    """Points from switched connectivity sites (0..5)."""

    universal_bonus: int
    """1 for universal-flow machines, else 0."""

    switched_sites: tuple[LinkSite, ...]
    """Which sites earned switch points, in Table-I column order."""

    machine_type: MachineType
    """Needed to decide which scores are mutually comparable."""

    @property
    def total(self) -> int:
        """The summed flexibility score (the Table II number)."""
        return self.multiplicity_points + self.switch_points + self.universal_bonus

    def __int__(self) -> int:
        return self.total

    def explain(self) -> str:
        """Human-readable derivation of the score."""
        parts = [f"{self.multiplicity_points} for plural processor populations"]
        if self.switched_sites:
            sites = ", ".join(site.label for site in self.switched_sites)
            parts.append(f"{self.switch_points} for switched links ({sites})")
        else:
            parts.append("0 for switched links (none)")
        if self.universal_bonus:
            parts.append("1 universal-flow bonus (variable IP/DP roles)")
        return f"flexibility {self.total} = " + " + ".join(parts)


def _machine_type_of(signature: Signature) -> MachineType:
    if signature.is_universal_flow:
        return MachineType.UNIVERSAL_FLOW
    if signature.is_data_flow:
        return MachineType.DATA_FLOW
    return MachineType.INSTRUCTION_FLOW


def score_signature(signature: Signature) -> FlexibilityScore:
    """Apply the paper's scoring rule to a signature."""
    multiplicity_points = sum(
        1
        for count in (signature.ips, signature.dps)
        if count.multiplicity.is_plural
    )
    switched = signature.switched_sites()
    machine_type = _machine_type_of(signature)
    bonus = 1 if machine_type is MachineType.UNIVERSAL_FLOW else 0
    return FlexibilityScore(
        multiplicity_points=multiplicity_points,
        switch_points=len(switched),
        universal_bonus=bonus,
        switched_sites=switched,
        machine_type=machine_type,
    )


def flexibility(signature: Signature) -> int:
    """The scalar flexibility value (the number Table II tabulates)."""
    return score_signature(signature).total


def comparable(a: "FlexibilityScore | Signature", b: "FlexibilityScore | Signature") -> bool:
    """Whether two flexibility values may be meaningfully compared.

    Data-flow and instruction-flow scores are incommensurable; anything
    is comparable against a universal-flow machine (and against its own
    machine type).
    """
    score_a = a if isinstance(a, FlexibilityScore) else score_signature(a)
    score_b = b if isinstance(b, FlexibilityScore) else score_signature(b)
    if MachineType.UNIVERSAL_FLOW in (score_a.machine_type, score_b.machine_type):
        return True
    return score_a.machine_type is score_b.machine_type
