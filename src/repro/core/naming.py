"""The hierarchical naming scheme of the extended taxonomy (Fig. 2, §II-C).

A taxonomic name has three levels:

* **Machine Type (MT)** — Data flow / Instruction flow / Universal flow,
  determined by the presence (and variability) of instruction processors.
* **Processing Type (PT)** — Uni / Array / Multi / Spatial processor,
  determined by the IP and DP multiplicities and IP-IP connectivity.
* **Sub-Processing Type (SPT)** — a Roman numeral encoding which of the
  subtype-bearing link sites carry an ``x`` switch; it measures the
  flexibility of the organisation.

The short codes are the paper's: ``DUP``, ``DMP-I``..``DMP-IV``, ``IUP``,
``IAP-I``..``IAP-IV``, ``IMP-I``..``IMP-XVI``, ``ISP-I``..``ISP-XVI`` and
``USP``. Classes 11-14 (many IPs driving one DP) are "Not Implementable"
and render as ``NI``.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.core.errors import NamingError

__all__ = [
    "MachineType",
    "ProcessingType",
    "TaxonomicName",
    "roman",
    "unroman",
    "subtype_from_switch_bits",
    "switch_bits_from_subtype",
]


class MachineType(enum.Enum):
    """Primary branch of the naming hierarchy."""

    DATA_FLOW = ("D", "Data Flow")
    INSTRUCTION_FLOW = ("I", "Instruction Flow")
    UNIVERSAL_FLOW = ("U", "Universal Flow")

    def __init__(self, letter: str, label: str):
        self.letter = letter
        self.label = label

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


class ProcessingType(enum.Enum):
    """Second branch: degree of parallelism (and spatial composability)."""

    UNI = ("UP", "Uni Processor")
    ARRAY = ("AP", "Array Processor")
    MULTI = ("MP", "Multi Processor")
    SPATIAL = ("SP", "Spatial Processor")

    def __init__(self, code: str, label: str):
        self.code = code
        self.label = label

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


_ROMAN_VALUES = (
    (1000, "M"), (900, "CM"), (500, "D"), (400, "CD"), (100, "C"), (90, "XC"),
    (50, "L"), (40, "XL"), (10, "X"), (9, "IX"), (5, "V"), (4, "IV"), (1, "I"),
)

_ROMAN_RE = re.compile(r"^[MDCLXVI]+$")


def roman(value: int) -> str:
    """Integer to Roman numeral (1..3999)."""
    if not 1 <= value <= 3999:
        raise NamingError(f"cannot render {value} as a Roman numeral")
    out: list[str] = []
    remaining = value
    for magnitude, symbol in _ROMAN_VALUES:
        while remaining >= magnitude:
            out.append(symbol)
            remaining -= magnitude
    return "".join(out)


def unroman(text: str) -> int:
    """Roman numeral to integer, validating canonical form."""
    token = text.strip().upper()
    if not token or not _ROMAN_RE.match(token):
        raise NamingError(f"invalid Roman numeral: {text!r}")
    single = {"M": 1000, "D": 500, "C": 100, "L": 50, "X": 10, "V": 5, "I": 1}
    total = 0
    for index, char in enumerate(token):
        value = single[char]
        if index + 1 < len(token) and single[token[index + 1]] > value:
            total -= value
        else:
            total += value
    if roman(total) != token:
        raise NamingError(f"non-canonical Roman numeral: {text!r}")
    return total


def subtype_from_switch_bits(bits: tuple[bool, ...]) -> int:
    """Subtype ordinal (1-based) from subtype-bearing switch flags.

    ``bits`` lists, most-significant first, whether each subtype-bearing
    link site is switched. Table I orders subtypes lexicographically with
    direct (``-``/``none``) before switched (``x``), so the ordinal is the
    binary value of the flags plus one. For DMP/IAP the flags are
    ``(dp_dm, dp_dp)``; for IMP/ISP they are
    ``(ip_dp, ip_im, dp_dm, dp_dp)``.
    """
    ordinal = 0
    for bit in bits:
        ordinal = (ordinal << 1) | int(bit)
    return ordinal + 1


def switch_bits_from_subtype(ordinal: int, width: int) -> tuple[bool, ...]:
    """Inverse of :func:`subtype_from_switch_bits`."""
    if not 1 <= ordinal <= (1 << width):
        raise NamingError(
            f"subtype ordinal {ordinal} out of range for {width} switch sites"
        )
    value = ordinal - 1
    return tuple(bool((value >> shift) & 1) for shift in range(width - 1, -1, -1))


_NAME_RE = re.compile(
    r"^\s*(?P<code>[A-Z]{2,3})\s*(?:-\s*(?P<subtype>[MDCLXVI]+|\d+))?\s*$"
)

_CODE_TABLE: dict[str, tuple[MachineType, ProcessingType]] = {
    "DUP": (MachineType.DATA_FLOW, ProcessingType.UNI),
    "DMP": (MachineType.DATA_FLOW, ProcessingType.MULTI),
    "IUP": (MachineType.INSTRUCTION_FLOW, ProcessingType.UNI),
    "IAP": (MachineType.INSTRUCTION_FLOW, ProcessingType.ARRAY),
    "IMP": (MachineType.INSTRUCTION_FLOW, ProcessingType.MULTI),
    "ISP": (MachineType.INSTRUCTION_FLOW, ProcessingType.SPATIAL),
    "USP": (MachineType.UNIVERSAL_FLOW, ProcessingType.SPATIAL),
}

#: Number of subtype-bearing switch sites per short code (0 = no subtype).
SUBTYPE_WIDTH: dict[str, int] = {
    "DUP": 0,
    "DMP": 2,
    "IUP": 0,
    "IAP": 2,
    "IMP": 4,
    "ISP": 4,
    "USP": 0,
}


_MACHINE_SORT = {
    MachineType.DATA_FLOW: 0,
    MachineType.INSTRUCTION_FLOW: 1,
    MachineType.UNIVERSAL_FLOW: 2,
}

_PROCESSING_SORT = {
    ProcessingType.UNI: 0,
    ProcessingType.ARRAY: 1,
    ProcessingType.MULTI: 2,
    ProcessingType.SPATIAL: 3,
}


@dataclass(frozen=True, slots=True)
class TaxonomicName:
    """A fully-qualified name in the extended taxonomy.

    Comparable/sortable by (machine type, processing type, subtype) so
    that sorted collections follow Table-I order.
    """

    machine_type: MachineType
    processing_type: ProcessingType
    subtype: int | None = None

    def sort_key(self) -> tuple[int, int, int]:
        """Ordering key: machine type, then processing type, then sub-type."""
        return (
            _MACHINE_SORT[self.machine_type],
            _PROCESSING_SORT[self.processing_type],
            self.subtype or 0,
        )

    def __lt__(self, other: "TaxonomicName") -> bool:
        if not isinstance(other, TaxonomicName):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "TaxonomicName") -> bool:
        if not isinstance(other, TaxonomicName):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "TaxonomicName") -> bool:
        if not isinstance(other, TaxonomicName):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "TaxonomicName") -> bool:
        if not isinstance(other, TaxonomicName):
            return NotImplemented
        return self.sort_key() >= other.sort_key()

    def __post_init__(self) -> None:
        code = self._code_or_raise()
        width = SUBTYPE_WIDTH[code]
        if width == 0 and self.subtype is not None:
            raise NamingError(f"{code} does not take a subtype numeral")
        if width > 0:
            if self.subtype is None:
                raise NamingError(f"{code} requires a subtype numeral")
            if not 1 <= self.subtype <= (1 << width):
                raise NamingError(
                    f"{code} subtype must lie in I..{roman(1 << width)}, "
                    f"got {self.subtype}"
                )

    def _code_or_raise(self) -> str:
        for code, (mt, pt) in _CODE_TABLE.items():
            if mt is self.machine_type and pt is self.processing_type:
                return code
        raise NamingError(
            f"no taxonomy code for machine type {self.machine_type.label!r} "
            f"with processing type {self.processing_type.label!r}"
        )

    @property
    def code(self) -> str:
        """The three-letter family code (``DMP``, ``IMP`` …)."""
        return self._code_or_raise()

    @property
    def short(self) -> str:
        """The paper's short name, e.g. ``IMP-XIV`` or ``USP``."""
        if self.subtype is None:
            return self.code
        return f"{self.code}-{roman(self.subtype)}"

    @property
    def long(self) -> str:
        """Spelled-out name, e.g. ``Instruction Flow Multi Processor XIV``."""
        base = f"{self.machine_type.label} {self.processing_type.label}"
        if self.subtype is None:
            return base
        return f"{base} {roman(self.subtype)}"

    def __str__(self) -> str:
        return self.short

    @property
    def switch_bits(self) -> tuple[bool, ...]:
        """Which subtype-bearing sites are switched (empty for no subtype)."""
        width = SUBTYPE_WIDTH[self.code]
        if width == 0:
            return ()
        assert self.subtype is not None
        return switch_bits_from_subtype(self.subtype, width)

    @classmethod
    def parse(cls, text: str) -> "TaxonomicName":
        """Parse a short name such as ``"IMP-XIV"``, ``"imp-14"`` or ``"USP"``."""
        match = _NAME_RE.match(text.upper())
        if match is None:
            raise NamingError(f"unparseable taxonomic name: {text!r}")
        code = match.group("code")
        if code not in _CODE_TABLE:
            raise NamingError(f"unknown taxonomy code in {text!r}")
        subtype_token = match.group("subtype")
        subtype: int | None = None
        if subtype_token is not None:
            if subtype_token.isdigit():
                subtype = int(subtype_token)
            else:
                subtype = unroman(subtype_token)
        machine_type, processing_type = _CODE_TABLE[code]
        return cls(machine_type, processing_type, subtype)

    def same_family(self, other: "TaxonomicName") -> bool:
        """True when both names share MT and PT (e.g. any two IMPs)."""
        return (
            self.machine_type is other.machine_type
            and self.processing_type is other.processing_type
        )

    def same_subtype_pattern(self, other: "TaxonomicName") -> bool:
        """True when both names encode the same switch pattern.

        §III-A: an IAP-II and an IMP-II share the DP-side connectivity
        pattern their numeral encodes, even across families — the paper's
        example is that same-numeral classes "have the same IP-IP, IP-IM,
        DP-DM and DP-DP connectivity".
        """
        if self.subtype is None or other.subtype is None:
            return self.subtype == other.subtype
        a, b = self.switch_bits, other.switch_bits
        # Compare on the common trailing sites (DP-DM, DP-DP) when widths
        # differ; full pattern otherwise.
        width = min(len(a), len(b))
        return a[len(a) - width:] == b[len(b) - width:]
