"""Basic building blocks of Skillicorn's (extended) taxonomy.

The paper decomposes every computer architecture into four component
kinds — Instruction Processor (IP), Data Processor (DP), Instruction
Memory (IM) and Data Memory (DM) — and classifies machines by *how many*
IPs and DPs they contain and *how* the components are connected.

This module defines the component kinds and the multiplicity algebra.
The paper's multiplicity symbols are ``0``, ``1``, ``n`` (a fixed,
design-time constant greater than one) and the extension ``v`` (variable:
fine-grained fabrics whose cells can assume either the IP or the DP role,
so the count changes on reconfiguration, ``v >= 0``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import SignatureError

__all__ = [
    "ComponentKind",
    "Multiplicity",
    "Granularity",
    "ComponentCount",
    "multiplicity_of_count",
]


class ComponentKind(enum.Enum):
    """The four Skillicorn building blocks."""

    IP = "IP"  #: instruction processor — the state machine choosing the next instruction
    DP = "DP"  #: data processor — performs arithmetic/logic on data
    IM = "IM"  #: instruction memory
    DM = "DM"  #: data memory

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_processor(self) -> bool:
        """True for IP and DP (the kinds whose count drives classification)."""
        return self in (ComponentKind.IP, ComponentKind.DP)

    @property
    def is_memory(self) -> bool:
        """True for IM and DM."""
        return self in (ComponentKind.IM, ComponentKind.DM)


class Multiplicity(enum.Enum):
    """How many instances of a component a machine contains.

    The ordering ``ZERO < ONE < MANY < VARIABLE`` reflects increasing
    structural richness and is used by the flexibility scoring system:
    ``MANY`` and ``VARIABLE`` each contribute one flexibility point, and
    ``VARIABLE`` additionally marks the machine as universal-flow.
    """

    ZERO = "0"
    ONE = "1"
    MANY = "n"
    VARIABLE = "v"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def rank(self) -> int:
        """Total order used for comparisons (0 for ZERO .. 3 for VARIABLE)."""
        return _MULTIPLICITY_RANK[self]

    def __lt__(self, other: "Multiplicity") -> bool:
        if not isinstance(other, Multiplicity):
            return NotImplemented
        return self.rank < other.rank

    def __le__(self, other: "Multiplicity") -> bool:
        if not isinstance(other, Multiplicity):
            return NotImplemented
        return self.rank <= other.rank

    def __gt__(self, other: "Multiplicity") -> bool:
        if not isinstance(other, Multiplicity):
            return NotImplemented
        return self.rank > other.rank

    def __ge__(self, other: "Multiplicity") -> bool:
        if not isinstance(other, Multiplicity):
            return NotImplemented
        return self.rank >= other.rank

    @property
    def is_plural(self) -> bool:
        """True when the multiplicity earns a flexibility point (n or v)."""
        return self in (Multiplicity.MANY, Multiplicity.VARIABLE)

    @classmethod
    def parse(cls, text: str) -> "Multiplicity":
        """Parse a paper-style multiplicity symbol.

        Accepts ``"0"``, ``"1"``, ``"n"``, ``"v"`` (case-insensitive),
        template letters such as ``"m"`` (treated as ``n`` — Table III
        uses ``m`` for a second independent constant, e.g. RaPiD), compound
        constants such as ``"24xn"`` (GARP's 24·n data processors, still a
        design-time constant, hence ``n``), and plain integers.
        """
        token = text.strip().lower()
        if not token:
            raise SignatureError("empty multiplicity symbol")
        if token == "0":
            return cls.ZERO
        if token == "1":
            return cls.ONE
        if token == "v":
            return cls.VARIABLE
        if token in ("n", "m") or ("n" in token and any(c.isdigit() or c in "xn*" for c in token)):
            return cls.MANY
        try:
            value = int(token)
        except ValueError as exc:
            raise SignatureError(f"unrecognised multiplicity symbol: {text!r}") from exc
        return multiplicity_of_count(value)


_MULTIPLICITY_RANK = {
    Multiplicity.ZERO: 0,
    Multiplicity.ONE: 1,
    Multiplicity.MANY: 2,
    Multiplicity.VARIABLE: 3,
}


def multiplicity_of_count(count: int) -> Multiplicity:
    """Map a concrete instance count to the paper's multiplicity symbol.

    ``0 -> ZERO``, ``1 -> ONE``, and anything larger is the design-time
    constant ``n`` (the paper replaces ``n`` with actual values "where
    ever it is possible", but classification only cares about the symbol).
    """
    if count < 0:
        raise SignatureError(f"component count must be non-negative, got {count}")
    if count == 0:
        return Multiplicity.ZERO
    if count == 1:
        return Multiplicity.ONE
    return Multiplicity.MANY


class Granularity(enum.Enum):
    """Granularity of the basic building block.

    Coarse-grained machines are built from whole IPs/DPs; fine-grained
    (universal-flow) machines are built from LUT-level cells that can
    assume any role.
    """

    COARSE = "IP/DP"
    FINE = "LUTs"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class ComponentCount:
    """A concrete component population: the symbol plus an optional value.

    ``Multiplicity`` alone suffices for classification; area and
    configuration-bit estimation additionally need the numeric value,
    which this record carries when known (e.g. MorphoSys has 64 DPs).
    """

    multiplicity: Multiplicity
    value: int | None = None

    def __post_init__(self) -> None:
        if self.value is not None:
            if self.value < 0:
                raise SignatureError("component value must be non-negative")
            expected = multiplicity_of_count(self.value)
            if self.multiplicity is Multiplicity.VARIABLE:
                return  # a variable fabric may be instantiated at any size
            if expected is not self.multiplicity:
                raise SignatureError(
                    f"count {self.value} is inconsistent with multiplicity "
                    f"{self.multiplicity.value!r}"
                )

    @classmethod
    def of(cls, raw: "int | str | Multiplicity | ComponentCount") -> "ComponentCount":
        """Coerce ints, paper symbols or multiplicities into a count."""
        if isinstance(raw, ComponentCount):
            return raw
        if isinstance(raw, Multiplicity):
            return cls(raw)
        if isinstance(raw, int):
            return cls(multiplicity_of_count(raw), raw)
        if isinstance(raw, str):
            token = raw.strip()
            try:
                value = int(token)
            except ValueError:
                return cls(Multiplicity.parse(token))
            return cls(multiplicity_of_count(value), value)
        raise SignatureError(f"cannot interpret component count: {raw!r}")

    def resolve(self, default_n: int) -> int:
        """The numeric population, substituting ``default_n`` for ``n``/``v``."""
        if self.value is not None:
            return self.value
        if self.multiplicity is Multiplicity.ZERO:
            return 0
        if self.multiplicity is Multiplicity.ONE:
            return 1
        return default_n

    def __str__(self) -> str:
        if self.value is not None and self.multiplicity.is_plural:
            return str(self.value)
        return self.multiplicity.value
