"""Columnar batch classification: the taxonomy compiled to flat tables.

Every decision :func:`repro.core.classify.canonical_class` and
:func:`repro.core.flexibility.score_signature` make depends on exactly
seven small integers — the IP and DP multiplicity ranks (0..3) and the
five link-kind ranks (0..2) in Table-I column order. That makes the
whole 47-class decision logic a function over a **structural space** of
``4 x 4 x 3^5 = 3888`` combinations, most of which the signature
validator rejects. :func:`compile_taxonomy` enumerates that space once,
runs the *scalar* classifier over every constructible combination, and
stores the answers in flat NumPy tables; classifying a population is
then one gather per column instead of a Python branch tree per machine.

Populations travel as :class:`SignatureBatch` — structure-of-arrays
columns (multiplicity ranks, link kinds, optional concrete counts) —
and two vectorized passes cover the paper's pipeline:

* :func:`classify_batch` — Table-I serial, implementability and the
  full Table-II flexibility breakdown for every row;
* :func:`price_batch` — Eq.-1 area (gate equivalents) and Eq.-2
  configuration bits for every row at a per-row design size.

**Parity contract.** Both passes are bit-exact against the scalar path,
not merely close: classification and flexibility come out of tables
*built by the scalar classifier itself*, and the pricing pass groups
rows by structure and replays the scalar models' exact floating-point
association order per group (integer Eq.-2 terms are exact anyway).
``tests/core/test_batch.py`` enforces ``==`` — including float
equality — over the full survey and hypothesis-random signatures.

The kernel degrades loudly, not wrongly: without NumPy every entry
point raises :class:`KernelUnavailableError` (callers fall back to the
scalar path), and model configurations the kernel cannot reproduce
bit-exactly (per-site ``switch_models`` overrides) are refused via
:func:`kernel_supports` rather than approximated.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, Sequence

from repro.core.components import ComponentCount, Granularity, Multiplicity
from repro.core.connectivity import LINK_SITES, Link, LinkKind, LinkSite
from repro.core.errors import ClassificationError, ReproError, SignatureError
from repro.core.flexibility import FlexibilityScore
from repro.core.naming import MachineType
from repro.core.signature import Signature
from repro.core.taxonomy import TaxonomyClass, class_by_serial

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as _np
except ImportError:  # pragma: no cover - the base image bundles numpy
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "STRUCT_SPACE",
    "KernelUnavailableError",
    "CompiledTaxonomy",
    "compile_taxonomy",
    "SignatureBatch",
    "BatchClassification",
    "BatchEstimates",
    "classify_batch",
    "price_batch",
    "kernel_supports",
    "structural_signature",
    "valid_structures",
]

#: Whether the NumPy kernel is importable in this process.
HAVE_NUMPY: bool = _np is not None

#: Size of the structural space: 4 IP ranks x 4 DP ranks x 3^5 link kinds.
STRUCT_SPACE: int = 4 * 4 * 3**5

_MULTIPLICITIES: tuple[Multiplicity, ...] = (
    Multiplicity.ZERO,
    Multiplicity.ONE,
    Multiplicity.MANY,
    Multiplicity.VARIABLE,
)
_KINDS: tuple[LinkKind, ...] = (LinkKind.NONE, LinkKind.DIRECT, LinkKind.SWITCHED)

#: Machine-type codes used in the compiled tables (index = code).
_MACHINE_TYPES: tuple[MachineType, ...] = (
    MachineType.DATA_FLOW,
    MachineType.INSTRUCTION_FLOW,
    MachineType.UNIVERSAL_FLOW,
)
_MACHINE_CODE = {machine: code for code, machine in enumerate(_MACHINE_TYPES)}

#: Which population each link-site endpoint renders from (True = IPs).
_SITE_ENDPOINTS: dict[LinkSite, tuple[bool, bool]] = {
    LinkSite.IP_IP: (True, True),
    LinkSite.IP_DP: (True, False),
    LinkSite.IP_IM: (True, True),
    LinkSite.DP_DM: (False, False),
    LinkSite.DP_DP: (False, False),
}


class KernelUnavailableError(ReproError):
    """Raised when a batch entry point runs without NumPy present."""


def _require_numpy() -> None:
    if _np is None:  # pragma: no cover - the base image bundles numpy
        raise KernelUnavailableError(
            "the batch-classification kernel requires numpy; "
            "use the scalar repro.core.classify path instead"
        )


def struct_index(ips_rank: int, dps_rank: int, kinds: Sequence[int]) -> int:
    """Flatten (IP rank, DP rank, five link-kind ranks) into a table index."""
    index = ips_rank * 4 + dps_rank
    for kind in kinds:
        index = index * 3 + kind
    return index


def structural_signature(
    ips_rank: int, dps_rank: int, kinds: Sequence[int]
) -> Signature:
    """Build the canonical :class:`Signature` of one structural combination.

    Granularity is implied (the validator forces FINE exactly when a
    population is variable), endpoint symbols are the multiplicity
    letters, and no concrete counts are attached. Raises
    :class:`SignatureError` for combinations the validator rejects.
    """
    ips = _MULTIPLICITIES[ips_rank]
    dps = _MULTIPLICITIES[dps_rank]
    granularity = (
        Granularity.FINE
        if Multiplicity.VARIABLE in (ips, dps)
        else Granularity.COARSE
    )
    links: dict[str, Link] = {}
    for site, kind_rank in zip(LINK_SITES, kinds):
        kind = _KINDS[kind_rank]
        if kind is LinkKind.NONE:
            link = Link.none()
        else:
            left_is_ip, right_is_ip = _SITE_ENDPOINTS[site]
            link = Link(
                kind,
                (ips if left_is_ip else dps).value,
                (ips if right_is_ip else dps).value,
            )
        links[site.label.lower().replace("-", "_")] = link
    return Signature(
        granularity=granularity,
        ips=ComponentCount(ips),
        dps=ComponentCount(dps),
        **links,
    )


def _iter_structures() -> Iterator[tuple[int, int, int, tuple[int, ...]]]:
    """Yield ``(index, ips_rank, dps_rank, kinds)`` over the whole space."""
    for ips_rank in range(4):
        for dps_rank in range(4):
            for kinds in itertools.product(range(3), repeat=5):
                yield struct_index(ips_rank, dps_rank, kinds), ips_rank, dps_rank, kinds


@lru_cache(maxsize=1)
def valid_structures() -> tuple[tuple[int, int, tuple[int, ...]], ...]:
    """Every constructible ``(ips_rank, dps_rank, kinds)`` combination.

    Pure Python (no NumPy needed) — this is the sample space of the
    synthetic population generator as well as the row set of the
    compiled tables.
    """
    valid: list[tuple[int, int, tuple[int, ...]]] = []
    for _, ips_rank, dps_rank, kinds in _iter_structures():
        try:
            structural_signature(ips_rank, dps_rank, kinds)
        except SignatureError:
            continue
        valid.append((ips_rank, dps_rank, kinds))
    return tuple(valid)


@dataclass(frozen=True)
class CompiledTaxonomy:
    """The 47-class decision logic lowered to flat per-structure tables.

    Every array has :data:`STRUCT_SPACE` entries, indexed by
    :func:`struct_index`. Invalid structures carry ``valid=False`` and
    zeros elsewhere. The tables are *derived from the scalar
    classifier* at compile time, which is what makes table lookups
    bit-exact by construction.
    """

    valid: "object"
    serial: "object"
    implementable: "object"
    multiplicity_points: "object"
    switch_points: "object"
    universal_bonus: "object"
    machine_code: "object"
    switched_mask: "object"

    @property
    def flexibility(self) -> "object":
        """Total Table-II flexibility per structure (sum of the three terms)."""
        return (
            self.multiplicity_points.astype(_np.int16)
            + self.switch_points
            + self.universal_bonus
        )


@lru_cache(maxsize=1)
def compile_taxonomy() -> CompiledTaxonomy:
    """Enumerate the structural space once and freeze the scalar answers.

    For each of the 3888 combinations the scalar validator decides
    constructibility, then :func:`~repro.core.classify.canonical_class`
    and :func:`~repro.core.flexibility.score_signature` fill the row.
    The result is cached for the process lifetime.
    """
    _require_numpy()
    from repro.core.classify import canonical_class
    from repro.core.flexibility import score_signature

    valid = _np.zeros(STRUCT_SPACE, dtype=bool)
    serial = _np.zeros(STRUCT_SPACE, dtype=_np.int16)
    implementable = _np.zeros(STRUCT_SPACE, dtype=bool)
    mult_points = _np.zeros(STRUCT_SPACE, dtype=_np.uint8)
    switch_points = _np.zeros(STRUCT_SPACE, dtype=_np.uint8)
    universal = _np.zeros(STRUCT_SPACE, dtype=_np.uint8)
    machine = _np.zeros(STRUCT_SPACE, dtype=_np.uint8)
    switched_mask = _np.zeros(STRUCT_SPACE, dtype=_np.uint8)

    for index, ips_rank, dps_rank, kinds in _iter_structures():
        try:
            signature = structural_signature(ips_rank, dps_rank, kinds)
            taxonomy_class = canonical_class(signature)
        except (SignatureError, ClassificationError):
            continue
        score = score_signature(signature)
        valid[index] = True
        serial[index] = taxonomy_class.serial
        implementable[index] = taxonomy_class.implementable
        mult_points[index] = score.multiplicity_points
        switch_points[index] = score.switch_points
        universal[index] = score.universal_bonus
        machine[index] = _MACHINE_CODE[score.machine_type]
        mask = 0
        for bit, site in enumerate(LINK_SITES):
            if site in score.switched_sites:
                mask |= 1 << bit
        switched_mask[index] = mask

    return CompiledTaxonomy(
        valid=valid,
        serial=serial,
        implementable=implementable,
        multiplicity_points=mult_points,
        switch_points=switch_points,
        universal_bonus=universal,
        machine_code=machine,
        switched_mask=switched_mask,
    )


@dataclass(frozen=True)
class SignatureBatch:
    """A population of signatures as structure-of-arrays columns.

    Columns (all length N): ``ips_rank``/``dps_rank`` are multiplicity
    ranks (uint8, 0..3), ``kinds`` is an ``(N, 5)`` uint8 matrix of
    link-kind ranks in Table-I column order, and ``ips_value`` /
    ``dps_value`` hold concrete populations as int64 with ``-1``
    meaning "symbolic" (resolved against the design size ``n`` at
    pricing time, exactly like
    :meth:`repro.core.components.ComponentCount.resolve`).
    """

    ips_rank: "object"
    dps_rank: "object"
    kinds: "object"
    ips_value: "object"
    dps_value: "object"

    def __len__(self) -> int:
        return int(self.ips_rank.shape[0])

    @classmethod
    def from_signatures(cls, signatures: Iterable[Signature]) -> "SignatureBatch":
        """Columnize scalar :class:`Signature` objects (always valid rows)."""
        _require_numpy()
        rows = list(signatures)
        count = len(rows)
        ips_rank = _np.empty(count, dtype=_np.uint8)
        dps_rank = _np.empty(count, dtype=_np.uint8)
        kinds = _np.empty((count, 5), dtype=_np.uint8)
        ips_value = _np.empty(count, dtype=_np.int64)
        dps_value = _np.empty(count, dtype=_np.int64)
        for row, signature in enumerate(rows):
            ips_rank[row] = signature.ips.multiplicity.rank
            dps_rank[row] = signature.dps.multiplicity.rank
            for column, site in enumerate(LINK_SITES):
                kinds[row, column] = signature.link(site).kind.rank
            ips_value[row] = -1 if signature.ips.value is None else signature.ips.value
            dps_value[row] = -1 if signature.dps.value is None else signature.dps.value
        return cls(
            ips_rank=ips_rank,
            dps_rank=dps_rank,
            kinds=kinds,
            ips_value=ips_value,
            dps_value=dps_value,
        )

    @classmethod
    def from_columns(
        cls,
        ips_rank: "object",
        dps_rank: "object",
        kinds: "object",
        ips_value: "object | None" = None,
        dps_value: "object | None" = None,
    ) -> "SignatureBatch":
        """Build a batch from raw columns, validating every row.

        Rank bounds, kind bounds, structural validity (against the
        compiled tables) and value/multiplicity consistency are all
        checked; a bad row raises :class:`SignatureError` naming its
        index, mirroring what the scalar constructor would have raised.
        """
        _require_numpy()
        ips = _np.ascontiguousarray(ips_rank, dtype=_np.int64)
        dps = _np.ascontiguousarray(dps_rank, dtype=_np.int64)
        kind_matrix = _np.ascontiguousarray(kinds, dtype=_np.int64)
        count = ips.shape[0]
        if dps.shape != (count,) or kind_matrix.shape != (count, 5):
            raise SignatureError(
                "column shapes disagree: expected ips_rank (N,), dps_rank (N,), kinds (N, 5)"
            )
        iv = (
            _np.full(count, -1, dtype=_np.int64)
            if ips_value is None
            else _np.ascontiguousarray(ips_value, dtype=_np.int64)
        )
        dv = (
            _np.full(count, -1, dtype=_np.int64)
            if dps_value is None
            else _np.ascontiguousarray(dps_value, dtype=_np.int64)
        )
        if iv.shape != (count,) or dv.shape != (count,):
            raise SignatureError("value columns must have shape (N,)")
        if count and (
            ips.min() < 0 or ips.max() > 3 or dps.min() < 0 or dps.max() > 3
        ):
            raise SignatureError("multiplicity ranks must lie in 0..3")
        if count and (kind_matrix.min() < 0 or kind_matrix.max() > 2):
            raise SignatureError("link-kind ranks must lie in 0..2")
        batch = cls(
            ips_rank=ips.astype(_np.uint8),
            dps_rank=dps.astype(_np.uint8),
            kinds=kind_matrix.astype(_np.uint8),
            ips_value=iv,
            dps_value=dv,
        )
        tables = compile_taxonomy()
        bad = _np.nonzero(~tables.valid[batch.struct_index()])[0]
        if bad.size:
            row = int(bad[0])
            raise SignatureError(
                f"row {row} encodes an unconstructible structure "
                f"(ips rank {int(ips[row])}, dps rank {int(dps[row])}, "
                f"kinds {kind_matrix[row].tolist()})"
            )
        for label, ranks, values in (("ips", ips, iv), ("dps", dps, dv)):
            concrete = values >= 0
            expected = _np.minimum(values, 2)  # 0->0, 1->1, >=2 -> MANY rank
            mismatched = concrete & (ranks != 3) & (ranks != expected)
            if mismatched.any():
                row = int(_np.nonzero(mismatched)[0][0])
                raise SignatureError(
                    f"row {row}: {label} count {int(values[row])} is inconsistent "
                    f"with multiplicity rank {int(ranks[row])}"
                )
        return batch

    def struct_index(self) -> "object":
        """Per-row :func:`struct_index` into the compiled tables (int64)."""
        index = self.ips_rank.astype(_np.int64) * 4 + self.dps_rank
        for column in range(5):
            index = index * 3 + self.kinds[:, column]
        return index

    def resolve_populations(self, n: "object") -> "tuple[object, object]":
        """Resolved (n_ip, n_dp) per row: concrete value, else 0/1/``n``.

        ``n`` may be a scalar or a per-row array, matching
        :meth:`~repro.core.components.ComponentCount.resolve` row-wise.
        """
        default = _np.broadcast_to(
            _np.asarray(n, dtype=_np.int64), (len(self),)
        )
        resolved = []
        for ranks, values in (
            (self.ips_rank, self.ips_value),
            (self.dps_rank, self.dps_value),
        ):
            symbolic = _np.where(ranks == 0, 0, _np.where(ranks == 1, 1, default))
            resolved.append(_np.where(values >= 0, values, symbolic))
        return resolved[0], resolved[1]

    def signature(self, row: int) -> Signature:
        """Reconstruct the scalar :class:`Signature` of one row."""
        ips = _MULTIPLICITIES[int(self.ips_rank[row])]
        dps = _MULTIPLICITIES[int(self.dps_rank[row])]
        base = structural_signature(
            int(self.ips_rank[row]),
            int(self.dps_rank[row]),
            [int(k) for k in self.kinds[row]],
        )
        iv = int(self.ips_value[row])
        dv = int(self.dps_value[row])
        if iv < 0 and dv < 0:
            return base
        from dataclasses import replace

        return replace(
            base,
            ips=ComponentCount(ips, None if iv < 0 else iv),
            dps=ComponentCount(dps, None if dv < 0 else dv),
        )

    def signatures(self) -> Iterator[Signature]:
        """Iterate the batch back out as scalar signatures (row order)."""
        for row in range(len(self)):
            yield self.signature(row)


@dataclass(frozen=True)
class BatchClassification:
    """Vectorized classification results for one :class:`SignatureBatch`.

    Arrays are row-aligned with the batch. The scalar accessors
    (:meth:`score`, :meth:`taxonomy_class`, :meth:`classification`)
    rebuild the exact objects the scalar path would have produced —
    same cached :class:`~repro.core.taxonomy.TaxonomyClass` instances,
    field-identical :class:`~repro.core.flexibility.FlexibilityScore`.
    """

    serial: "object"
    implementable: "object"
    multiplicity_points: "object"
    switch_points: "object"
    universal_bonus: "object"
    machine_code: "object"
    switched_mask: "object"

    def __len__(self) -> int:
        return int(self.serial.shape[0])

    @property
    def flexibility(self) -> "object":
        """Total Table-II flexibility per row (int16)."""
        return (
            self.multiplicity_points.astype(_np.int16)
            + self.switch_points
            + self.universal_bonus
        )

    def machine_type(self, row: int) -> MachineType:
        """The row's machine type as the enum the scalar path uses."""
        return _MACHINE_TYPES[int(self.machine_code[row])]

    def switched_sites(self, row: int) -> tuple[LinkSite, ...]:
        """The row's switched sites in Table-I column order."""
        mask = int(self.switched_mask[row])
        return tuple(site for bit, site in enumerate(LINK_SITES) if mask & (1 << bit))

    def score(self, row: int) -> FlexibilityScore:
        """The row's :class:`FlexibilityScore`, field-identical to scalar."""
        return FlexibilityScore(
            multiplicity_points=int(self.multiplicity_points[row]),
            switch_points=int(self.switch_points[row]),
            universal_bonus=int(self.universal_bonus[row]),
            switched_sites=self.switched_sites(row),
            machine_type=self.machine_type(row),
        )

    def taxonomy_class(self, row: int) -> TaxonomyClass:
        """The row's Table-I class (the shared cached instance)."""
        return class_by_serial(int(self.serial[row]))

    def classification(self, row: int, signature: Signature) -> "object":
        """A scalar :class:`~repro.core.classify.Classification` for one row."""
        from repro.core.classify import Classification

        return Classification(
            signature=signature,
            taxonomy_class=self.taxonomy_class(row),
            score=self.score(row),
        )


def classify_batch(batch: SignatureBatch) -> BatchClassification:
    """Classify and flexibility-score a whole batch via table gathers."""
    _require_numpy()
    tables = compile_taxonomy()
    index = batch.struct_index()
    invalid = _np.nonzero(~tables.valid[index])[0]
    if invalid.size:
        raise SignatureError(
            f"batch row {int(invalid[0])} encodes an unconstructible structure"
        )
    return BatchClassification(
        serial=tables.serial[index],
        implementable=tables.implementable[index],
        multiplicity_points=tables.multiplicity_points[index],
        switch_points=tables.switch_points[index],
        universal_bonus=tables.universal_bonus[index],
        machine_code=tables.machine_code[index],
        switched_mask=tables.switched_mask[index],
    )


@dataclass(frozen=True)
class BatchEstimates:
    """Vectorized Eq.-1 / Eq.-2 results, row-aligned with the batch."""

    area_ge: "object"
    config_bits: "object"

    def __len__(self) -> int:
        return int(self.area_ge.shape[0])


def kernel_supports(area_model=None, config_model=None) -> bool:
    """Whether the kernel can price these model configurations bit-exactly.

    Per-site ``switch_models`` overrides are refused (their cost
    functions are arbitrary Python); custom
    :class:`~repro.models.area.ComponentAreas` /
    :class:`~repro.models.configbits.ComponentConfigWords`, datapath
    widths and the ``reconfigurable_components`` flag are all supported.
    """
    if not HAVE_NUMPY:
        return False
    for model in (area_model, config_model):
        if model is not None and getattr(model, "switch_models", None):
            return False
    return True


def _ceil_log2_array(values: "object") -> "object":
    """Vectorized ``ceil(log2(v))`` with values <= 1 costing 0 bits.

    For ``v > 1`` this is ``bit_length(v - 1)``, recovered exactly from
    the float64 exponent (``frexp``) — identical to the scalar
    :func:`repro.models.switches._ceil_log2` over the kernel's domain.
    """
    shifted = _np.maximum(values - 1, 1).astype(_np.float64)
    exponents = _np.frexp(shifted)[1].astype(_np.int64)
    return _np.where(values <= 1, 0, exponents)


def _site_ports(
    site_column: int, n_ip: "object", n_dp: "object"
) -> "tuple[object, object]":
    """Per-row (inputs, outputs) for one link site (memories pair 1:1)."""
    site = LINK_SITES[site_column]
    ports = {
        LinkSite.IP_IP: (n_ip, n_ip),
        LinkSite.IP_DP: (n_ip, n_dp),
        LinkSite.IP_IM: (n_ip, n_ip),
        LinkSite.DP_DM: (n_dp, n_dp),
        LinkSite.DP_DP: (n_dp, n_dp),
    }
    return ports[site]


def _area_group(
    ips_rank: int,
    kinds: Sequence[int],
    n_ip: "object",
    n_dp: "object",
    is_universal: bool,
    areas,
    width_bits: int,
) -> "object":
    """Eq.-1 logic area for one structure group, scalar op order replayed."""
    if is_universal:
        from repro.models.area import _CELLS_PER_SOFT_DP, _CELLS_PER_SOFT_IP

        ip_logic = n_ip * areas.lut_cell_ge * _CELLS_PER_SOFT_IP
        dp_logic = n_dp * areas.lut_cell_ge * _CELLS_PER_SOFT_DP
    else:
        ip_logic = n_ip * areas.ip_ge
        dp_logic = n_dp * areas.dp_ge
    if ips_rank == 0:  # data-flow: Eq. 1 ignores the IP terms
        ip_logic = _np.zeros_like(n_ip, dtype=_np.float64)
    switch_sum = _np.zeros_like(n_ip, dtype=_np.float64)
    for column, kind in enumerate(kinds):
        if kind == 0:
            continue
        inputs, outputs = _site_ports(column, n_ip, n_dp)
        if kind == 1:  # direct wiring: DirectLinkModel.area_ge
            term = _np.maximum(inputs, outputs) * width_bits * 0.5
        else:  # full crossbar: FullCrossbarModel.area_ge
            mux_cells = _np.maximum(inputs - 1, 1)
            term = _np.where(
                (inputs == 0) | (outputs == 0),
                0.0,
                outputs * mux_cells * width_bits * 3.0,
            )
        switch_sum = switch_sum + term
    return (ip_logic + dp_logic) + switch_sum


def _config_group(
    ips_rank: int,
    kinds: Sequence[int],
    n_ip: "object",
    n_dp: "object",
    is_universal: bool,
    words,
    width_bits: int,
    reconfigurable: bool,
) -> "object":
    """Eq.-2 configuration bits for one structure group (exact ints)."""
    if is_universal:
        from repro.models.area import _CELLS_PER_SOFT_DP, _CELLS_PER_SOFT_IP

        cell_cw = words.lut_cell_cw
        ip_bits = n_ip * _CELLS_PER_SOFT_IP * cell_cw
        dp_bits = n_dp * _CELLS_PER_SOFT_DP * cell_cw
        im_bits = n_ip * words.im_cw
        dm_bits = n_dp * words.dm_cw
    elif reconfigurable:
        ip_bits = n_ip * words.ip_cw
        dp_bits = n_dp * words.dp_cw
        im_bits = n_ip * words.im_cw
        dm_bits = n_dp * words.dm_cw
    else:
        zero = _np.zeros_like(n_ip)
        ip_bits = dp_bits = im_bits = dm_bits = zero
    if ips_rank == 0:  # data-flow: no IP, no IM
        zero = _np.zeros_like(n_ip)
        ip_bits = zero
        im_bits = zero
    total = ip_bits + dp_bits + im_bits + dm_bits
    for column, kind in enumerate(kinds):
        if kind != 2:  # direct wiring has nothing to configure
            continue
        inputs, outputs = _site_ports(column, n_ip, n_dp)
        bits = outputs * _ceil_log2_array(inputs + 1)
        total = total + _np.where((inputs == 0) | (outputs == 0), 0, bits)
    return total


def price_batch(
    batch: SignatureBatch,
    *,
    n: "int | object" = 16,
    area_model=None,
    config_model=None,
) -> BatchEstimates:
    """Eq.-1 area and Eq.-2 config bits for every row, bit-exact.

    ``n`` substitutes for symbolic populations and may be a scalar or a
    per-row array (the survey prices each record at its own size). Rows
    are grouped by structure; within a group the scalar models' exact
    operation order is replayed over the resolved population arrays, so
    every float matches :meth:`repro.models.area.AreaModel.total_ge`
    and every int matches
    :meth:`repro.models.configbits.ConfigBitsModel.total` to the bit.
    Raises :class:`KernelUnavailableError` for unsupported model
    configurations (see :func:`kernel_supports`).
    """
    _require_numpy()
    from repro.models.area import AreaModel
    from repro.models.configbits import ConfigBitsModel

    area = area_model if area_model is not None else AreaModel()
    config = config_model if config_model is not None else ConfigBitsModel()
    if area.switch_models or config.switch_models:
        raise KernelUnavailableError(
            "per-site switch_models overrides are not supported by the batch "
            "kernel; use the scalar models"
        )
    count = len(batch)
    sizes = _np.broadcast_to(_np.asarray(n, dtype=_np.int64), (count,))
    if count and sizes.min() <= 0:
        raise ValueError("n must be positive")
    n_ip, n_dp = batch.resolve_populations(sizes)
    index = batch.struct_index()
    area_out = _np.empty(count, dtype=_np.float64)
    bits_out = _np.empty(count, dtype=_np.int64)
    unique, inverse = _np.unique(index, return_inverse=True)
    for group, structure in enumerate(unique):
        rows = _np.nonzero(inverse == group)[0]
        structure = int(structure)
        kinds = []
        remaining = structure
        for _ in range(5):
            kinds.append(remaining % 3)
            remaining //= 3
        kinds.reverse()
        dps_rank = remaining % 4
        ips_rank = remaining // 4
        is_universal = 3 in (ips_rank, dps_rank)
        g_ip = n_ip[rows]
        g_dp = n_dp[rows]
        area_out[rows] = _area_group(
            ips_rank, kinds, g_ip, g_dp, is_universal, area.areas, area.width_bits
        )
        bits_out[rows] = _config_group(
            ips_rank,
            kinds,
            g_ip,
            g_dp,
            is_universal,
            config.words,
            config.width_bits,
            config.reconfigurable_components,
        )
    return BatchEstimates(area_ge=area_out, config_bits=bits_out)
