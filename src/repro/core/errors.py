"""Exception hierarchy for the taxonomy library.

All errors raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SignatureError(ReproError):
    """An architecture signature is structurally invalid.

    Raised when component multiplicities and link kinds cannot describe
    any machine — e.g. a data-flow machine (zero instruction processors)
    that nevertheless declares an IP-DP connection.
    """


class ClassificationError(ReproError):
    """A signature cannot be mapped onto any taxonomy class."""


class NotImplementableError(ClassificationError):
    """The signature maps onto one of the paper's NI classes (11-14).

    The paper marks configurations with ``n`` instruction processors
    driving a single data processor as "practically not implementable";
    the classifier can either surface them (``allow_ni=True``) or raise
    this error.
    """


class NamingError(ReproError):
    """A taxonomic name cannot be parsed or formatted."""


class CapabilityError(ReproError):
    """A machine was asked to perform an operation its class forbids.

    This is the operational face of the paper's flexibility argument: an
    IAP-I cannot shuffle data between its data processors because it has
    no DP-DP switch, an IUP cannot execute a data-parallel kernel wider
    than its single data processor, and so on.
    """


class ConfigurationError(ReproError):
    """A reconfigurable fabric received an invalid configuration."""


class RoutingError(ReproError):
    """An interconnect cannot realise a requested route."""


class FaultError(ReproError):
    """A hardware fault could not be tolerated by the machine's structure.

    The taxonomy's flexibility argument (§III-B) has an operational
    consequence under failure: a switched (``x``) site can route *around*
    a dead processing element, port or wire by selecting a different
    path, while a direct (``-``) link is a single hard wire — when it
    (or either of its endpoints) dies, nothing can be reselected and the
    connection is simply gone. Machines therefore raise this error when
    a fault lands on a resource that their class has no structural means
    of replacing: direct-linked lanes under a ``remap`` policy, severed
    point-to-point wiring, a partitioned mesh, or a ``fail-fast`` policy
    observing any fault at all.
    """


class ProgramError(ReproError):
    """A machine program is malformed (bad opcode, operand, or graph)."""


class RegistryError(ReproError):
    """A registry lookup failed (unknown architecture name)."""


class CheckpointError(ReproError):
    """A sweep checkpoint journal cannot be used safely.

    Raised when two ``--resume`` runs race for the same journal: the
    advisory file lock a :class:`~repro.perf.journal.SweepCheckpoint`
    takes on open is already held by a live process, so appending would
    interleave two writers' records. The holder's identity (pid, start
    time) is reported so the operator can find the competing run.
    """


class FabricError(ReproError):
    """A distributed sweep could not produce a usable result.

    Raised by :func:`repro.perf.fabric.fabric_sweep` when a point fails
    under ``on_error='raise'`` (the failure is reported with the lowest
    failing index, mirroring the single-host engine's deterministic
    raise contract) or when the coordinator/worker wire protocol is
    violated (bad handshake, protocol-version mismatch, malformed
    frame). Worker loss is *not* a :class:`FabricError` — lost workers
    are re-queued work, never a failed sweep.
    """
