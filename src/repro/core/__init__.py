"""Core of the extended Skillicorn taxonomy.

Public surface of the paper's primary contribution: component and
connectivity vocabulary, architecture signatures, the 47-class
enumeration (Table I), the naming scheme (Fig. 2), the flexibility
scoring system (Table II) and the classifier used to place real machines
(Table III).
"""

from repro.core.baselines import (
    FlynnClass,
    SkillicornVerdict,
    baseline_resolution,
    extension_report,
    flynn_class,
    skillicorn_verdict,
)
from repro.core.batch import (
    HAVE_NUMPY,
    BatchClassification,
    BatchEstimates,
    CompiledTaxonomy,
    KernelUnavailableError,
    SignatureBatch,
    classify_batch,
    compile_taxonomy,
    kernel_supports,
    price_batch,
)
from repro.core.classify import Classification, canonical_class, classify
from repro.core.compare import NameComparison, compare_classes, compare_names, similarity
from repro.core.components import (
    ComponentCount,
    ComponentKind,
    Granularity,
    Multiplicity,
    multiplicity_of_count,
)
from repro.core.connectivity import LINK_SITES, Link, LinkKind, LinkSite
from repro.core.errors import (
    CapabilityError,
    ClassificationError,
    ConfigurationError,
    FaultError,
    NamingError,
    NotImplementableError,
    ProgramError,
    RegistryError,
    ReproError,
    RoutingError,
    SignatureError,
)
from repro.core.flexibility import (
    FlexibilityScore,
    comparable,
    flexibility,
    score_signature,
)
from repro.core.hierarchy import HierarchyNode, build_hierarchy, iter_paths
from repro.core.naming import (
    MachineType,
    ProcessingType,
    TaxonomicName,
    roman,
    unroman,
)
from repro.core.signature import Signature, make_signature
from repro.core.taxonomy import (
    SECTION_HEADINGS,
    TaxonomyClass,
    all_classes,
    class_by_name,
    class_by_serial,
    enumerate_classes,
    implementable_classes,
)

__all__ = [
    # baselines
    "FlynnClass",
    "SkillicornVerdict",
    "baseline_resolution",
    "extension_report",
    "flynn_class",
    "skillicorn_verdict",
    # batch kernel
    "HAVE_NUMPY",
    "BatchClassification",
    "BatchEstimates",
    "CompiledTaxonomy",
    "KernelUnavailableError",
    "SignatureBatch",
    "classify_batch",
    "compile_taxonomy",
    "kernel_supports",
    "price_batch",
    # components / connectivity
    "ComponentCount",
    "ComponentKind",
    "Granularity",
    "Multiplicity",
    "multiplicity_of_count",
    "LINK_SITES",
    "Link",
    "LinkKind",
    "LinkSite",
    # signatures
    "Signature",
    "make_signature",
    # taxonomy
    "SECTION_HEADINGS",
    "TaxonomyClass",
    "all_classes",
    "class_by_name",
    "class_by_serial",
    "enumerate_classes",
    "implementable_classes",
    # naming
    "MachineType",
    "ProcessingType",
    "TaxonomicName",
    "roman",
    "unroman",
    # flexibility
    "FlexibilityScore",
    "comparable",
    "flexibility",
    "score_signature",
    # classification
    "Classification",
    "canonical_class",
    "classify",
    # comparison
    "NameComparison",
    "compare_classes",
    "compare_names",
    "similarity",
    # hierarchy
    "HierarchyNode",
    "build_hierarchy",
    "iter_paths",
    # errors
    "ReproError",
    "SignatureError",
    "ClassificationError",
    "NotImplementableError",
    "NamingError",
    "CapabilityError",
    "ConfigurationError",
    "FaultError",
    "RoutingError",
    "ProgramError",
    "RegistryError",
]
