"""Classification of concrete architectures into taxonomy classes.

Given a :class:`~repro.core.signature.Signature` describing a real
machine (counts may be concrete integers, template constants ``n``/``m``
or the variable symbol ``v``; links may carry concrete endpoint values
such as ``64x64``), the classifier determines the machine's Table-I class
and therefore its taxonomic name and flexibility.

Classification is purely structural: it depends only on the multiplicity
symbols and the link *kinds*, exactly as the paper applies the taxonomy
to the 25 surveyed architectures in Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.components import Multiplicity
from repro.core.connectivity import LinkKind, LinkSite
from repro.core.errors import ClassificationError, NotImplementableError
from repro.core.flexibility import FlexibilityScore, score_signature
from repro.core.naming import (
    MachineType,
    ProcessingType,
    TaxonomicName,
    subtype_from_switch_bits,
)
from repro.core.signature import Signature
from repro.core.taxonomy import TaxonomyClass, all_classes, class_by_name

__all__ = ["Classification", "classify", "canonical_class"]


@dataclass(frozen=True, slots=True)
class Classification:
    """The result of classifying one concrete architecture."""

    signature: Signature
    taxonomy_class: TaxonomyClass
    score: FlexibilityScore

    @property
    def name(self) -> TaxonomicName | None:
        """Full taxonomic name of the matched class."""
        return self.taxonomy_class.name

    @property
    def short_name(self) -> str:
        """Short serial form of the matched class (e.g. ``'IAP-IV'``)."""
        return self.taxonomy_class.comment

    @property
    def flexibility(self) -> int:
        """Table II flexibility score of the matched class."""
        return self.score.total

    @property
    def implementable(self) -> bool:
        """Whether the matched class is implementable in hardware."""
        return self.taxonomy_class.implementable

    def explain(self) -> str:
        """Narrative of how the class was reached."""
        lines = [
            f"structure: {self.signature.describe()}",
            f"class: {self.short_name} "
            f"(Table-I serial {self.taxonomy_class.serial})",
            self.score.explain(),
        ]
        if not self.implementable:
            lines.append(
                "note: the paper marks this configuration as practically "
                "not implementable (multiple IPs driving a single DP)"
            )
        return "\n".join(lines)


def _ni_serial(signature: Signature) -> int:
    """Serial number of the matching NI row (11-14)."""
    ip_ip = signature.link(LinkSite.IP_IP).kind is LinkKind.SWITCHED
    ip_im = signature.link(LinkSite.IP_IM).kind is LinkKind.SWITCHED
    return 11 + 2 * int(ip_ip) + int(ip_im)


def canonical_class(signature: Signature) -> TaxonomyClass:
    """Map a signature to its Table-I class.

    Raises :class:`ClassificationError` when the structure matches no row
    (which the signature validator should already preclude).
    """
    ips = signature.ips.multiplicity
    dps = signature.dps.multiplicity

    if signature.is_universal_flow:
        return class_by_name("USP")

    if ips is Multiplicity.ZERO:
        if dps is Multiplicity.ONE:
            return class_by_name("DUP")
        bits = (
            signature.link(LinkSite.DP_DM).kind is LinkKind.SWITCHED,
            signature.link(LinkSite.DP_DP).kind is LinkKind.SWITCHED,
        )
        return class_by_name(
            TaxonomicName(
                MachineType.DATA_FLOW,
                ProcessingType.MULTI,
                subtype_from_switch_bits(bits),
            )
        )

    if ips is Multiplicity.ONE:
        if dps is Multiplicity.ONE:
            return class_by_name("IUP")
        bits = (
            signature.link(LinkSite.DP_DM).kind is LinkKind.SWITCHED,
            signature.link(LinkSite.DP_DP).kind is LinkKind.SWITCHED,
        )
        return class_by_name(
            TaxonomicName(
                MachineType.INSTRUCTION_FLOW,
                ProcessingType.ARRAY,
                subtype_from_switch_bits(bits),
            )
        )

    # ips is MANY from here on.
    if dps is Multiplicity.ONE:
        serial = _ni_serial(signature)
        found = all_classes()[serial - 1]
        assert found.serial == serial and not found.implementable
        return found

    # Spatial computing requires the IP-IP *switch* (Table I only lists
    # none/nxn here); a hypothetical fixed IP-IP pairing earns no
    # flexibility and classifies as plain multi-processing, keeping the
    # invariant flexibility(machine) == flexibility(its class).
    spatial = signature.link(LinkSite.IP_IP).kind is LinkKind.SWITCHED
    bits = (
        signature.link(LinkSite.IP_DP).kind is LinkKind.SWITCHED,
        signature.link(LinkSite.IP_IM).kind is LinkKind.SWITCHED,
        signature.link(LinkSite.DP_DM).kind is LinkKind.SWITCHED,
        signature.link(LinkSite.DP_DP).kind is LinkKind.SWITCHED,
    )
    return class_by_name(
        TaxonomicName(
            MachineType.INSTRUCTION_FLOW,
            ProcessingType.SPATIAL if spatial else ProcessingType.MULTI,
            subtype_from_switch_bits(bits),
        )
    )


def classify(signature: Signature, *, allow_ni: bool = True) -> Classification:
    """Classify a concrete architecture signature.

    Parameters
    ----------
    signature:
        The machine's structural description.
    allow_ni:
        When ``False``, classifying into one of the paper's Not
        Implementable rows raises :class:`NotImplementableError` instead
        of returning the NI classification.
    """
    taxonomy_class = canonical_class(signature)
    if not taxonomy_class.implementable and not allow_ni:
        raise NotImplementableError(
            f"signature maps to NI row {taxonomy_class.serial}: "
            f"{signature.describe()}"
        )
    return Classification(
        signature=signature,
        taxonomy_class=taxonomy_class,
        score=score_signature(signature),
    )
