"""Enumeration of the 47 extended-taxonomy classes (Table I).

The classes are *derived*, not transcribed: this module walks the
taxonomy's generative rules — machine type, processor multiplicities and
the lexicographic expansion of the subtype-bearing switch sites — and
produces the rows of Table I in the paper's exact order, including the
four "Not Implementable" configurations (rows 11-14, many IPs sharing a
single DP).

Golden tests in ``tests/golden`` check the derived table cell-by-cell
against the published one.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from repro.core.components import ComponentCount, Granularity, Multiplicity
from repro.core.connectivity import Link, LinkKind
from repro.core.errors import ClassificationError
from repro.core.naming import (
    MachineType,
    ProcessingType,
    TaxonomicName,
    subtype_from_switch_bits,
)
from repro.core.signature import Signature

__all__ = [
    "TaxonomyClass",
    "enumerate_classes",
    "all_classes",
    "class_by_serial",
    "class_by_name",
    "implementable_classes",
    "SECTION_HEADINGS",
]

#: Table-I section headings keyed by the serial number of their first row.
SECTION_HEADINGS: dict[int, str] = {
    1: "Data Flow Machines --> Single Processor",
    2: "Data Flow Machines --> Multi Processors",
    6: "Instruction Flow --> Single Processor",
    7: "Instruction Flow --> Array Processor",
    15: "Instruction Flow --> Multi Processor",
    47: "Universal Flow Machine --> Spatial Computing",
}


@dataclass(frozen=True, slots=True)
class TaxonomyClass:
    """One row of the extended Table I.

    ``name`` is ``None`` for the Not Implementable rows, whose ``comment``
    is the paper's ``NI`` marker.
    """

    serial: int
    signature: Signature
    name: TaxonomicName | None

    @property
    def implementable(self) -> bool:
        """Whether this class is implementable in hardware."""
        return self.name is not None

    @property
    def comment(self) -> str:
        """The Table-I "Comments" cell (the short name, or ``NI``)."""
        return self.name.short if self.name is not None else "NI"

    @property
    def section(self) -> str:
        """The Table-I section heading this row falls under."""
        heading = ""
        for first_serial in sorted(SECTION_HEADINGS):
            if self.serial >= first_serial:
                heading = SECTION_HEADINGS[first_serial]
        return heading

    def row_cells(self) -> tuple[str, ...]:
        """The rendered Table-I row: S.N, granularity, IPs, DPs, links, comment."""
        return (
            f"{self.serial}.",
            self.signature.granularity.value,
            *self.signature.iter_cells(),
            self.comment,
        )

    def __str__(self) -> str:
        return f"{self.serial}. {self.comment}: {self.signature.describe()}"


def _link(kind: LinkKind, left: str, right: str) -> Link:
    if kind is LinkKind.NONE:
        return Link.none()
    return Link(kind, left, right)


def _binary_kinds(switched: bool) -> LinkKind:
    return LinkKind.SWITCHED if switched else LinkKind.DIRECT


def _dataflow_classes() -> Iterator[TaxonomyClass]:
    """Rows 1-5: data-flow single- and multi-processors."""
    # Row 1: DUP — one DP directly tied to its DM.
    yield TaxonomyClass(
        serial=1,
        signature=Signature(
            granularity=Granularity.COARSE,
            ips=ComponentCount(Multiplicity.ZERO),
            dps=ComponentCount(Multiplicity.ONE),
            ip_ip=Link.none(),
            ip_dp=Link.none(),
            ip_im=Link.none(),
            dp_dm=Link.direct("1", "1"),
            dp_dp=Link.none(),
        ),
        name=TaxonomicName(MachineType.DATA_FLOW, ProcessingType.UNI),
    )
    # Rows 2-5: DMP-I..IV, expanding (dp_dm switched?, dp_dp present?).
    serial = 2
    for dp_dm_switched in (False, True):
        for dp_dp_present in (False, True):
            bits = (dp_dm_switched, dp_dp_present)
            yield TaxonomyClass(
                serial=serial,
                signature=Signature(
                    granularity=Granularity.COARSE,
                    ips=ComponentCount(Multiplicity.ZERO),
                    dps=ComponentCount(Multiplicity.MANY),
                    ip_ip=Link.none(),
                    ip_dp=Link.none(),
                    ip_im=Link.none(),
                    dp_dm=_link(_binary_kinds(dp_dm_switched), "n", "n"),
                    dp_dp=_link(LinkKind.SWITCHED, "n", "n") if dp_dp_present else Link.none(),
                ),
                name=TaxonomicName(
                    MachineType.DATA_FLOW,
                    ProcessingType.MULTI,
                    subtype_from_switch_bits(bits),
                ),
            )
            serial += 1


def _uniprocessor_class() -> TaxonomyClass:
    """Row 6: IUP — the Von Neumann machine."""
    return TaxonomyClass(
        serial=6,
        signature=Signature(
            granularity=Granularity.COARSE,
            ips=ComponentCount(Multiplicity.ONE),
            dps=ComponentCount(Multiplicity.ONE),
            ip_ip=Link.none(),
            ip_dp=Link.direct("1", "1"),
            ip_im=Link.direct("1", "1"),
            dp_dm=Link.direct("1", "1"),
            dp_dp=Link.none(),
        ),
        name=TaxonomicName(MachineType.INSTRUCTION_FLOW, ProcessingType.UNI),
    )


def _array_classes() -> Iterator[TaxonomyClass]:
    """Rows 7-10: IAP-I..IV (one IP broadcasting to n DPs)."""
    serial = 7
    for dp_dm_switched in (False, True):
        for dp_dp_present in (False, True):
            bits = (dp_dm_switched, dp_dp_present)
            yield TaxonomyClass(
                serial=serial,
                signature=Signature(
                    granularity=Granularity.COARSE,
                    ips=ComponentCount(Multiplicity.ONE),
                    dps=ComponentCount(Multiplicity.MANY),
                    ip_ip=Link.none(),
                    ip_dp=Link.direct("1", "n"),
                    ip_im=Link.direct("1", "1"),
                    dp_dm=_link(_binary_kinds(dp_dm_switched), "n", "n"),
                    dp_dp=_link(LinkKind.SWITCHED, "n", "n") if dp_dp_present else Link.none(),
                ),
                name=TaxonomicName(
                    MachineType.INSTRUCTION_FLOW,
                    ProcessingType.ARRAY,
                    subtype_from_switch_bits(bits),
                ),
            )
            serial += 1


def _not_implementable_classes() -> Iterator[TaxonomyClass]:
    """Rows 11-14: n IPs driving one DP — marked NI by the paper."""
    serial = 11
    for ip_ip_present in (False, True):
        for ip_im_switched in (False, True):
            yield TaxonomyClass(
                serial=serial,
                signature=Signature(
                    granularity=Granularity.COARSE,
                    ips=ComponentCount(Multiplicity.MANY),
                    dps=ComponentCount(Multiplicity.ONE),
                    ip_ip=_link(LinkKind.SWITCHED, "n", "n") if ip_ip_present else Link.none(),
                    ip_dp=Link.direct("n", "1"),
                    ip_im=_link(_binary_kinds(ip_im_switched), "n", "n"),
                    dp_dm=Link.direct("1", "1"),
                    dp_dp=Link.none(),
                ),
                name=None,
            )
            serial += 1


def _multi_and_spatial_classes() -> Iterator[TaxonomyClass]:
    """Rows 15-46: IMP-I..XVI then ISP-I..XVI.

    Both families expand the four subtype-bearing sites (IP-DP, IP-IM,
    DP-DM, DP-DP) lexicographically; ISP additionally carries the IP-IP
    switch that defines spatial computing.
    """
    serial = 15
    for spatial in (False, True):
        processing = ProcessingType.SPATIAL if spatial else ProcessingType.MULTI
        for ip_dp_switched in (False, True):
            for ip_im_switched in (False, True):
                for dp_dm_switched in (False, True):
                    for dp_dp_present in (False, True):
                        bits = (
                            ip_dp_switched,
                            ip_im_switched,
                            dp_dm_switched,
                            dp_dp_present,
                        )
                        yield TaxonomyClass(
                            serial=serial,
                            signature=Signature(
                                granularity=Granularity.COARSE,
                                ips=ComponentCount(Multiplicity.MANY),
                                dps=ComponentCount(Multiplicity.MANY),
                                ip_ip=(
                                    _link(LinkKind.SWITCHED, "n", "n")
                                    if spatial
                                    else Link.none()
                                ),
                                ip_dp=_link(_binary_kinds(ip_dp_switched), "n", "n"),
                                ip_im=_link(_binary_kinds(ip_im_switched), "n", "n"),
                                dp_dm=_link(_binary_kinds(dp_dm_switched), "n", "n"),
                                dp_dp=(
                                    _link(LinkKind.SWITCHED, "n", "n")
                                    if dp_dp_present
                                    else Link.none()
                                ),
                            ),
                            name=TaxonomicName(
                                MachineType.INSTRUCTION_FLOW,
                                processing,
                                subtype_from_switch_bits(bits),
                            ),
                        )
                        serial += 1


def _universal_class() -> TaxonomyClass:
    """Row 47: USP — the fine-grained universal-flow spatial machine."""
    return TaxonomyClass(
        serial=47,
        signature=Signature(
            granularity=Granularity.FINE,
            ips=ComponentCount(Multiplicity.VARIABLE),
            dps=ComponentCount(Multiplicity.VARIABLE),
            ip_ip=Link(LinkKind.SWITCHED, "v", "v"),
            ip_dp=Link(LinkKind.SWITCHED, "v", "v"),
            ip_im=Link(LinkKind.SWITCHED, "v", "v"),
            dp_dm=Link(LinkKind.SWITCHED, "v", "v"),
            dp_dp=Link(LinkKind.SWITCHED, "v", "v"),
        ),
        name=TaxonomicName(MachineType.UNIVERSAL_FLOW, ProcessingType.SPATIAL),
    )


def enumerate_classes() -> Iterator[TaxonomyClass]:
    """Yield all 47 classes in Table-I order."""
    yield from _dataflow_classes()
    yield _uniprocessor_class()
    yield from _array_classes()
    yield from _not_implementable_classes()
    yield from _multi_and_spatial_classes()
    yield _universal_class()


@lru_cache(maxsize=1)
def all_classes() -> tuple[TaxonomyClass, ...]:
    """The 47 classes as an immutable, cached tuple."""
    classes = tuple(enumerate_classes())
    assert len(classes) == 47, "taxonomy enumeration must produce 47 classes"
    return classes


def implementable_classes() -> tuple[TaxonomyClass, ...]:
    """The 43 named (non-NI) classes."""
    return tuple(cls for cls in all_classes() if cls.implementable)


def class_by_serial(serial: int) -> TaxonomyClass:
    """Look up a class by its Table-I serial number (1..47)."""
    classes = all_classes()
    if not 1 <= serial <= len(classes):
        raise ClassificationError(f"serial number out of range: {serial}")
    found = classes[serial - 1]
    assert found.serial == serial
    return found


@lru_cache(maxsize=1)
def _name_index() -> dict[str, TaxonomyClass]:
    return {cls.name.short: cls for cls in all_classes() if cls.name is not None}


def class_by_name(name: "str | TaxonomicName") -> TaxonomyClass:
    """Look up a class by short name (``"IMP-XIV"``) or parsed name."""
    short = name.short if isinstance(name, TaxonomicName) else TaxonomicName.parse(name).short
    try:
        return _name_index()[short]
    except KeyError as exc:
        raise ClassificationError(f"no taxonomy class named {short!r}") from exc
