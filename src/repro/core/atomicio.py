"""Crash-safe artifact writes: tmp file + ``os.replace`` + fsync.

Every file this package leaves on disk for a human (CSV/TXT/JSON
artifacts, checkpoint journal headers) goes through these helpers so a
crash — or a SIGKILL mid-write — can never leave a truncated artifact
behind. The recipe is the standard one:

1. write the full content to a temporary file *in the destination
   directory* (so the rename below cannot cross filesystems);
2. flush and ``fsync`` the temporary file;
3. ``os.replace`` it over the destination — atomic on POSIX;
4. ``fsync`` the directory so the rename itself is durable.

Readers therefore observe either the old content or the new content,
never a partial write.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text"]


def atomic_write_bytes(path: "str | os.PathLike", data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically; returns the final path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as tmp:
            tmp.write(data)
            tmp.flush()
            os.fsync(tmp.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_directory(target.parent)
    return target


def atomic_write_text(
    path: "str | os.PathLike", text: str, *, encoding: str = "utf-8"
) -> Path:
    """Write ``text`` to ``path`` atomically; returns the final path."""
    return atomic_write_bytes(path, text.encode(encoding))


def _fsync_directory(directory: Path) -> None:
    """Make a completed rename durable; best-effort off POSIX."""
    try:
        handle = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX or exotic filesystem
        return
    try:
        os.fsync(handle)
    except OSError:  # pragma: no cover - directories not fsyncable here
        pass
    finally:
        os.close(handle)
