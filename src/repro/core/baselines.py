"""Baseline taxonomies the paper extends: Flynn (1966) and Skillicorn (1988).

The paper positions its contribution against both: Flynn's four-way
split is "perhaps the oldest, simplest and the most widely known" but
too broad; Skillicorn refined it but (a) fixed the granularity of the
building blocks, so variable-role fabrics (``v``) cannot be expressed,
and (b) omitted IP-IP connectivity, so spatial composition of
instruction processors cannot be expressed.

This module implements both baselines as classifiers over the same
:class:`~repro.core.signature.Signature` type, plus the mapping that
quantifies the extension: which extended classes each baseline can and
cannot represent, and how many extended classes collapse into each
baseline category (the resolution gain).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache

from repro.core.components import Multiplicity
from repro.core.connectivity import LinkSite
from repro.core.signature import Signature
from repro.core.taxonomy import all_classes

__all__ = [
    "FlynnClass",
    "flynn_class",
    "SkillicornVerdict",
    "skillicorn_verdict",
    "baseline_resolution",
    "extension_report",
]


class FlynnClass(enum.Enum):
    """Flynn's four categories (instruction streams x data streams)."""

    SISD = "SISD"  #: single instruction, single data
    SIMD = "SIMD"  #: single instruction, multiple data
    MISD = "MISD"  #: multiple instruction, single data
    MIMD = "MIMD"  #: multiple instruction, multiple data

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def flynn_class(signature: Signature) -> FlynnClass | None:
    """Map a signature onto Flynn's taxonomy.

    Instruction streams follow the IP count, data streams the DP count.
    Pure data-flow machines have **no instruction stream at all** — a
    machine organisation Flynn's 1966 scheme predates; they map to
    ``None``, which is itself part of the paper's argument for richer
    taxonomies. Variable (``v``) machines take whatever shape they are
    configured into, so they also return ``None`` (no fixed category).
    """
    ips = signature.ips.multiplicity
    dps = signature.dps.multiplicity
    if ips in (Multiplicity.ZERO, Multiplicity.VARIABLE) or dps is Multiplicity.VARIABLE:
        return None
    single_instruction = ips is Multiplicity.ONE
    single_data = dps is Multiplicity.ONE
    if single_instruction and single_data:
        return FlynnClass.SISD
    if single_instruction:
        return FlynnClass.SIMD
    if single_data:
        return FlynnClass.MISD
    return FlynnClass.MIMD


@dataclass(frozen=True, slots=True)
class SkillicornVerdict:
    """Whether (and how) the original 1988 taxonomy covers a signature.

    ``representable`` is False exactly when the signature uses one of
    the two extensions this paper introduces; ``reasons`` names them.
    """

    representable: bool
    reasons: tuple[str, ...] = ()

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.representable


def skillicorn_verdict(signature: Signature) -> SkillicornVerdict:
    """Check a signature against the original taxonomy's expressive limits.

    Skillicorn's building blocks are whole IPs/DPs/IMs/DMs whose number
    is fixed at design time (no ``v``), and his taxonomy table carries
    no IP-IP column (he modelled the IP on the Von Neumann state machine
    that "does not accept any input from neighboring state machines").
    """
    reasons: list[str] = []
    if signature.has_variable_components:
        reasons.append(
            "variable (v) IP/DP multiplicity: the 1988 taxonomy fixes "
            "component counts at design time"
        )
    if signature.link(LinkSite.IP_IP).exists:
        reasons.append(
            "IP-IP connectivity: the 1988 taxonomy has no IP-IP column"
        )
    return SkillicornVerdict(representable=not reasons, reasons=tuple(reasons))


@dataclass(frozen=True, slots=True)
class ResolutionRow:
    """How one baseline category fans out in the extended taxonomy."""

    category: str
    extended_classes: tuple[str, ...]

    @property
    def resolution_gain(self) -> int:
        """Number of extended classes one baseline label lumps together."""
        return len(self.extended_classes)


@lru_cache(maxsize=1)
def baseline_resolution() -> dict[str, ResolutionRow]:
    """The Flynn-category -> extended-classes fan-out over Table I.

    Quantifies "the broadness of Flynn's taxonomy" that both Skillicorn
    and this paper cite: e.g. every IMP and ISP subtype collapses into
    the single label MIMD.
    """
    fanout: dict[str, list[str]] = {}
    for cls in all_classes():
        category = flynn_class(cls.signature)
        label = category.value if category is not None else "(unmappable)"
        fanout.setdefault(label, []).append(cls.comment)
    return {
        label: ResolutionRow(label, tuple(members))
        for label, members in fanout.items()
    }


@dataclass(frozen=True, slots=True)
class ExtensionReport:
    """Summary of what the extended taxonomy adds over the baselines."""

    total_classes: int
    flynn_unmappable: tuple[str, ...]
    skillicorn_new: tuple[str, ...]
    mimd_fanout: int

    def summary(self) -> str:
        """Human-readable comparison against the baseline taxonomies."""
        return (
            f"{self.total_classes} extended classes; "
            f"{len(self.flynn_unmappable)} have no Flynn category; "
            f"{len(self.skillicorn_new)} are new versus Skillicorn 1988 "
            f"(IP-IP and/or v); one MIMD label covers {self.mimd_fanout} "
            "extended classes"
        )


def extension_report() -> ExtensionReport:
    """Quantify the extension over both baselines across all 47 classes."""
    flynn_unmappable: list[str] = []
    skillicorn_new: list[str] = []
    seen = set()
    for cls in all_classes():
        label = cls.comment
        key = (label, cls.serial)
        if key in seen:  # pragma: no cover - defensive
            continue
        seen.add(key)
        if flynn_class(cls.signature) is None:
            flynn_unmappable.append(f"{cls.serial}.{label}")
        if not skillicorn_verdict(cls.signature).representable:
            skillicorn_new.append(f"{cls.serial}.{label}")
    mimd = baseline_resolution().get("MIMD")
    return ExtensionReport(
        total_classes=len(all_classes()),
        flynn_unmappable=tuple(flynn_unmappable),
        skillicorn_new=tuple(skillicorn_new),
        mimd_fanout=mimd.resolution_gain if mimd else 0,
    )
