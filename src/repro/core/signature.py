"""Architecture signatures — the classification key of the taxonomy.

A :class:`Signature` captures exactly the information the extended
taxonomy uses to place a machine in a class: the granularity of its
building blocks, the multiplicity of its instruction and data processors,
and the kind of each of the five connectivity sites. Everything in
:mod:`repro.core` (enumeration, naming, flexibility, classification)
operates on signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Mapping

from repro.core.components import ComponentCount, Granularity, Multiplicity
from repro.core.connectivity import LINK_SITES, Link, LinkKind, LinkSite
from repro.core.errors import SignatureError

__all__ = ["Signature", "make_signature"]


@dataclass(frozen=True, slots=True)
class Signature:
    """The taxonomy-visible structure of a machine.

    Instances are immutable and hashable so they can key caches and sets.
    Use :func:`make_signature` for the permissive constructor that accepts
    paper-style strings.
    """

    granularity: Granularity
    ips: ComponentCount
    dps: ComponentCount
    ip_ip: Link
    ip_dp: Link
    ip_im: Link
    dp_dm: Link
    dp_dp: Link

    def __post_init__(self) -> None:
        self._validate()

    # -- validation ----------------------------------------------------

    def _validate(self) -> None:
        ips = self.ips.multiplicity
        dps = self.dps.multiplicity
        if dps is Multiplicity.ZERO:
            raise SignatureError("a machine must contain at least one data processor")
        if ips is Multiplicity.ZERO:
            # Data-flow machine: no instruction processor, hence no IP-side links.
            for site in (LinkSite.IP_IP, LinkSite.IP_DP, LinkSite.IP_IM):
                if self.link(site).exists:
                    raise SignatureError(
                        f"data-flow machine (0 IPs) cannot have a {site.label} connection"
                    )
        else:
            if not self.link(LinkSite.IP_DP).exists:
                raise SignatureError(
                    "an instruction-flow machine requires an IP-DP connection"
                )
            if not self.link(LinkSite.IP_IM).exists:
                raise SignatureError(
                    "an instruction-flow machine requires an IP-IM connection"
                )
        if not self.link(LinkSite.DP_DM).exists:
            raise SignatureError("every machine requires a DP-DM connection")
        if ips is Multiplicity.ONE and self.link(LinkSite.IP_IP).exists:
            raise SignatureError("a single IP cannot have an IP-IP connection")
        if dps is Multiplicity.ONE and self.link(LinkSite.DP_DP).exists:
            raise SignatureError("a single DP cannot have a DP-DP connection")
        variable = Multiplicity.VARIABLE in (ips, dps)
        if self.granularity is Granularity.FINE and not variable:
            raise SignatureError(
                "fine-grained (LUT) machines must declare variable IPs or DPs"
            )
        if variable and self.granularity is not Granularity.FINE:
            raise SignatureError(
                "variable IP/DP multiplicity requires fine (LUT) granularity"
            )

    # -- link access ---------------------------------------------------

    def link(self, site: LinkSite) -> Link:
        """The connectivity cell at a given site."""
        return _SITE_FIELD[site].__get__(self)  # type: ignore[no-any-return]

    @property
    def links(self) -> Mapping[LinkSite, Link]:
        """All five link cells, keyed by site in Table-I column order."""
        return {site: self.link(site) for site in LINK_SITES}

    def link_kinds(self) -> tuple[LinkKind, ...]:
        """The five link kinds in Table-I column order."""
        return tuple(self.link(site).kind for site in LINK_SITES)

    def switched_sites(self) -> tuple[LinkSite, ...]:
        """The sites carrying an ``x`` switch — the flexibility earners."""
        return tuple(site for site in LINK_SITES if self.link(site).is_switched)

    def iter_cells(self) -> Iterator[str]:
        """Rendered Table-I cells (IPs, DPs, then the five links)."""
        yield str(self.ips)
        yield str(self.dps)
        for site in LINK_SITES:
            yield self.link(site).render()

    # -- derived structure --------------------------------------------

    @property
    def is_data_flow(self) -> bool:
        """True when the signature describes a data-flow (DF) machine."""
        return self.ips.multiplicity is Multiplicity.ZERO

    @property
    def is_instruction_flow(self) -> bool:
        """True when the signature describes an instruction-flow (IF) machine."""
        return self.ips.multiplicity in (Multiplicity.ONE, Multiplicity.MANY)

    @property
    def is_universal_flow(self) -> bool:
        """True when the signature describes a universal-flow (UF) machine."""
        return Multiplicity.VARIABLE in (self.ips.multiplicity, self.dps.multiplicity)

    @property
    def has_variable_components(self) -> bool:
        """Whether any population is symbolic (``n``/``m``) rather than fixed."""
        return self.is_universal_flow

    # -- transformation ------------------------------------------------

    def with_link(self, site: LinkSite, link: "Link | str | LinkKind") -> "Signature":
        """A copy with one connectivity site replaced (re-validated)."""
        parsed = Link.parse(link) if not isinstance(link, Link) else link
        return replace(self, **{_SITE_NAME[site]: parsed})

    def upgraded(self, site: LinkSite) -> "Signature":
        """A copy with the given site promoted one flexibility rank.

        ``NONE -> DIRECT -> SWITCHED``; upgrading a SWITCHED site is a
        no-op. Endpoint symbols are preserved where present, otherwise
        derived from the site's component multiplicities.
        """
        current = self.link(site)
        if current.kind is LinkKind.SWITCHED:
            return self
        if current.kind is LinkKind.DIRECT:
            return self.with_link(site, Link(LinkKind.SWITCHED, current.left, current.right))
        left = str(self._endpoint_multiplicity(site, left_side=True))
        right = str(self._endpoint_multiplicity(site, left_side=False))
        return self.with_link(site, Link(LinkKind.DIRECT, left, right))

    def _endpoint_multiplicity(self, site: LinkSite, left_side: bool) -> Multiplicity:
        kind = site.left if left_side else site.right
        if kind.name in ("IP", "IM"):
            return self.ips.multiplicity
        return self.dps.multiplicity

    # -- presentation ----------------------------------------------------

    def describe(self) -> str:
        """One-line human-readable structure description."""
        cells = list(self.iter_cells())
        sites = ", ".join(
            f"{site.label}={cell}" for site, cell in zip(LINK_SITES, cells[2:])
        )
        return (
            f"granularity={self.granularity.value}, IPs={cells[0]}, "
            f"DPs={cells[1]}, {sites}"
        )


_SITE_NAME = {
    LinkSite.IP_IP: "ip_ip",
    LinkSite.IP_DP: "ip_dp",
    LinkSite.IP_IM: "ip_im",
    LinkSite.DP_DM: "dp_dm",
    LinkSite.DP_DP: "dp_dp",
}

_SITE_FIELD = {site: getattr(Signature, name) for site, name in _SITE_NAME.items()}


def make_signature(
    ips: "int | str | Multiplicity | ComponentCount",
    dps: "int | str | Multiplicity | ComponentCount",
    *,
    ip_ip: "str | Link | LinkKind | None" = None,
    ip_dp: "str | Link | LinkKind | None" = None,
    ip_im: "str | Link | LinkKind | None" = None,
    dp_dm: "str | Link | LinkKind | None" = None,
    dp_dp: "str | Link | LinkKind | None" = None,
    granularity: "Granularity | str | None" = None,
) -> Signature:
    """Permissive signature constructor accepting paper-style notation.

    Examples
    --------
    >>> sig = make_signature(1, 64, ip_dp="1-64", ip_im="1-1",
    ...                      dp_dm="64-1", dp_dp="64x64")
    >>> sig.dps.multiplicity.value
    'n'
    """
    ip_count = ComponentCount.of(ips)
    dp_count = ComponentCount.of(dps)
    if granularity is None:
        variable = Multiplicity.VARIABLE in (ip_count.multiplicity, dp_count.multiplicity)
        gran = Granularity.FINE if variable else Granularity.COARSE
    elif isinstance(granularity, Granularity):
        gran = granularity
    else:
        token = granularity.strip().lower()
        if token in ("luts", "lut", "fine", "gates"):
            gran = Granularity.FINE
        elif token in ("ip/dp", "coarse"):
            gran = Granularity.COARSE
        else:
            raise SignatureError(f"unknown granularity: {granularity!r}")
    return Signature(
        granularity=gran,
        ips=ip_count,
        dps=dp_count,
        ip_ip=Link.parse(ip_ip),
        ip_dp=Link.parse(ip_dp),
        ip_im=Link.parse(ip_im),
        dp_dm=Link.parse(dp_dm),
        dp_dp=Link.parse(dp_dp),
    )
