"""Connectivity relations between taxonomy components.

The extended taxonomy characterises a machine by five link *sites*:
IP-IP (the paper's new column), IP-DP, IP-IM, DP-DM and DP-DP. Each site
either has no connection, a direct (fixed, ``'-'``) connection, or a
switched (``'x'``, crossbar-style) connection whose endpoints can be
re-associated at run time. Switched links are what the flexibility
scoring system counts, and they are the expensive term in the area and
configuration-bit models.

Table I renders a link as ``<left><sep><right>`` where the separator is
``-`` for direct and ``x`` for switched, and the sides are the endpoint
multiplicities (``1-1``, ``1-n``, ``n-n``, ``nxn``, ``vxv`` …). This
module provides the codec between those cell strings and the structured
:class:`Link` representation.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.core.components import ComponentKind, Multiplicity
from repro.core.errors import SignatureError

__all__ = ["LinkKind", "LinkSite", "Link", "LINK_SITES"]


class LinkKind(enum.Enum):
    """How two component populations are connected.

    The ordering ``NONE < DIRECT < SWITCHED`` is the flexibility order:
    upgrading a link never removes capability. Only ``SWITCHED`` earns a
    flexibility point.
    """

    NONE = "none"
    DIRECT = "-"
    SWITCHED = "x"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def rank(self) -> int:
        """Ordering key: absent < direct < switched."""
        return _LINK_RANK[self]

    def __lt__(self, other: "LinkKind") -> bool:
        if not isinstance(other, LinkKind):
            return NotImplemented
        return self.rank < other.rank

    def __le__(self, other: "LinkKind") -> bool:
        if not isinstance(other, LinkKind):
            return NotImplemented
        return self.rank <= other.rank

    def __gt__(self, other: "LinkKind") -> bool:
        if not isinstance(other, LinkKind):
            return NotImplemented
        return self.rank > other.rank

    def __ge__(self, other: "LinkKind") -> bool:
        if not isinstance(other, LinkKind):
            return NotImplemented
        return self.rank >= other.rank

    @property
    def is_switched(self) -> bool:
        """True for the switched ``x`` kind."""
        return self is LinkKind.SWITCHED

    @property
    def exists(self) -> bool:
        """True for any present (non-absent) kind."""
        return self is not LinkKind.NONE


_LINK_RANK = {LinkKind.NONE: 0, LinkKind.DIRECT: 1, LinkKind.SWITCHED: 2}


class LinkSite(enum.Enum):
    """The five connectivity columns of the extended Table I."""

    IP_IP = ("IP-IP", ComponentKind.IP, ComponentKind.IP)
    IP_DP = ("IP-DP", ComponentKind.IP, ComponentKind.DP)
    IP_IM = ("IP-IM", ComponentKind.IP, ComponentKind.IM)
    DP_DM = ("DP-DM", ComponentKind.DP, ComponentKind.DM)
    DP_DP = ("DP-DP", ComponentKind.DP, ComponentKind.DP)

    def __init__(self, label: str, left: ComponentKind, right: ComponentKind):
        self.label = label
        self.left = left
        self.right = right

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label

    @property
    def involves_ip(self) -> bool:
        """Whether this link site involves the instruction processors."""
        return ComponentKind.IP in (self.left, self.right) or ComponentKind.IM in (
            self.left,
            self.right,
        )

    @property
    def is_self_link(self) -> bool:
        """True for the IP-IP and DP-DP peer-to-peer sites."""
        return self.left == self.right


#: Table-I column order for the five link sites.
LINK_SITES: tuple[LinkSite, ...] = (
    LinkSite.IP_IP,
    LinkSite.IP_DP,
    LinkSite.IP_IM,
    LinkSite.DP_DM,
    LinkSite.DP_DP,
)


# Endpoint tokens are digits and the paper's multiplicity letters (n, m,
# v, possibly compounded like "24n"); 'x' is reserved as the switched
# separator so cells like "nxnxn" are rejected as malformed.
_CELL_RE = re.compile(
    r"^\s*(?P<left>[0-9nmv]+)\s*(?P<sep>[x\-])\s*(?P<right>[0-9nmv]+)\s*$",
    re.IGNORECASE,
)


@dataclass(frozen=True, slots=True)
class Link:
    """One connectivity cell: the link kind plus the rendered endpoints.

    ``left``/``right`` carry the multiplicity symbols used when the link
    is rendered back to a Table-I style string; they are presentation
    data — classification depends only on :attr:`kind`.
    """

    kind: LinkKind
    left: str = ""
    right: str = ""

    @classmethod
    def none(cls) -> "Link":
        """The absent link."""
        return cls(LinkKind.NONE)

    @classmethod
    def direct(cls, left: "str | Multiplicity" = "1", right: "str | Multiplicity" = "1") -> "Link":
        """A direct ``-`` link with the given end multiplicities."""
        return cls(LinkKind.DIRECT, str(left), str(right))

    @classmethod
    def switched(cls, left: "str | Multiplicity" = "n", right: "str | Multiplicity" = "n") -> "Link":
        """A switched ``x`` link with the given end multiplicities."""
        return cls(LinkKind.SWITCHED, str(left), str(right))

    @classmethod
    def parse(cls, cell: "str | Link | LinkKind | None") -> "Link":
        """Parse a Table-I/Table-III connectivity cell.

        Accepts ``"none"`` (or ``None``/empty), direct cells such as
        ``"1-1"``, ``"1-n"``, ``"64-1"``, ``"48-48"``, and switched cells
        such as ``"nxn"``, ``"64x64"``, ``"5x10"``, ``"nx14"``, ``"vxv"``.
        The separator decides the kind: ``-`` is direct, ``x`` is
        switched. Endpoint tokens are preserved verbatim for re-rendering.
        """
        if cell is None:
            return cls.none()
        if isinstance(cell, Link):
            return cell
        if isinstance(cell, LinkKind):
            if cell is LinkKind.NONE:
                return cls.none()
            return cls(cell, "n", "n")
        token = cell.strip()
        if not token or token.lower() in ("none", "no", "-", "--"):
            return cls.none()
        match = _CELL_RE.match(token)
        if match is None:
            raise SignatureError(f"unparseable connectivity cell: {cell!r}")
        sep = match.group("sep").lower()
        kind = LinkKind.SWITCHED if sep == "x" else LinkKind.DIRECT
        return cls(kind, match.group("left"), match.group("right"))

    def render(self) -> str:
        """Format as a Table-I cell string."""
        if self.kind is LinkKind.NONE:
            return "none"
        sep = "x" if self.kind is LinkKind.SWITCHED else "-"
        return f"{self.left}{sep}{self.right}"

    def __str__(self) -> str:
        return self.render()

    def with_endpoints(self, left: "str | Multiplicity", right: "str | Multiplicity") -> "Link":
        """Same kind, new rendered endpoints."""
        if self.kind is LinkKind.NONE:
            return self
        return Link(self.kind, str(left), str(right))

    @property
    def is_switched(self) -> bool:
        """True when this link is switched."""
        return self.kind.is_switched

    @property
    def exists(self) -> bool:
        """True when this link is present."""
        return self.kind.exists
