"""Name-based architecture comparison (§III-A).

The paper argues that the naming scheme alone predicts similarity: the
first letter gives the flow paradigm, the second group the degree of
parallelism, and the numeral the interconnection pattern. Two classes
with the same numeral share their switch pattern even across families
(the paper's example: IAP-I and IMP-I have the same IP-IM, DP-DM and
DP-DP connectivity).

:func:`compare_names` quantifies this into a structured report plus a
similarity value in [0, 1]; :func:`similarity` is the scalar shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.connectivity import LINK_SITES, LinkSite
from repro.core.naming import TaxonomicName
from repro.core.taxonomy import TaxonomyClass, class_by_name

__all__ = ["NameComparison", "compare_names", "compare_classes", "similarity"]

#: Weights of the three naming levels in the scalar similarity.
_WEIGHT_MACHINE_TYPE = 0.4
_WEIGHT_PROCESSING_TYPE = 0.3
_WEIGHT_LINKS = 0.3


@dataclass(frozen=True, slots=True)
class NameComparison:
    """Structured similarity report between two taxonomy classes."""

    left: TaxonomicName
    right: TaxonomicName
    same_machine_type: bool
    same_processing_type: bool
    shared_link_sites: tuple[LinkSite, ...]
    differing_link_sites: tuple[LinkSite, ...]

    @property
    def link_agreement(self) -> float:
        """Fraction of the compared link sites on which both names agree."""
        total = len(self.shared_link_sites) + len(self.differing_link_sites)
        if total == 0:
            return 1.0
        return len(self.shared_link_sites) / total

    @property
    def similarity(self) -> float:
        """Weighted similarity in [0, 1]; 1 means identical class."""
        return (
            _WEIGHT_MACHINE_TYPE * float(self.same_machine_type)
            + _WEIGHT_PROCESSING_TYPE * float(self.same_processing_type)
            + _WEIGHT_LINKS * self.link_agreement
        )

    def explain(self) -> str:
        """Human-readable breakdown, one line per contributing term."""
        lines = [f"{self.left.short} vs {self.right.short}:"]
        lines.append(
            f"  machine type: {'same' if self.same_machine_type else 'different'} "
            f"({self.left.machine_type.label} / {self.right.machine_type.label})"
        )
        lines.append(
            f"  processing type: "
            f"{'same' if self.same_processing_type else 'different'} "
            f"({self.left.processing_type.label} / {self.right.processing_type.label})"
        )
        if self.shared_link_sites:
            lines.append(
                "  shared connectivity: "
                + ", ".join(site.label for site in self.shared_link_sites)
            )
        if self.differing_link_sites:
            lines.append(
                "  differing connectivity: "
                + ", ".join(site.label for site in self.differing_link_sites)
            )
        lines.append(f"  similarity: {self.similarity:.2f}")
        return "\n".join(lines)


def _signatures(
    left: "TaxonomicName | TaxonomyClass | str",
    right: "TaxonomicName | TaxonomyClass | str",
) -> tuple[TaxonomyClass, TaxonomyClass]:
    def resolve(item: "TaxonomicName | TaxonomyClass | str") -> TaxonomyClass:
        if isinstance(item, TaxonomyClass):
            return item
        return class_by_name(item)

    return resolve(left), resolve(right)


def compare_classes(cls_a: TaxonomyClass, cls_b: TaxonomyClass) -> NameComparison:
    """Compare two taxonomy classes' canonical signatures site by site."""
    if cls_a.name is None or cls_b.name is None:
        raise ValueError("cannot compare Not Implementable classes by name")
    shared: list[LinkSite] = []
    differing: list[LinkSite] = []
    for site in LINK_SITES:
        if cls_a.signature.link(site).kind is cls_b.signature.link(site).kind:
            shared.append(site)
        else:
            differing.append(site)
    return NameComparison(
        left=cls_a.name,
        right=cls_b.name,
        same_machine_type=cls_a.name.machine_type is cls_b.name.machine_type,
        same_processing_type=cls_a.name.processing_type is cls_b.name.processing_type,
        shared_link_sites=tuple(shared),
        differing_link_sites=tuple(differing),
    )


def compare_names(
    left: "TaxonomicName | TaxonomyClass | str",
    right: "TaxonomicName | TaxonomyClass | str",
) -> NameComparison:
    """Compare two classes given names (``"IAP-II"``), parsed names or classes."""
    cls_a, cls_b = _signatures(left, right)
    return compare_classes(cls_a, cls_b)


def similarity(
    left: "TaxonomicName | TaxonomyClass | str",
    right: "TaxonomicName | TaxonomyClass | str",
) -> float:
    """Scalar similarity in [0, 1] between two classes."""
    return compare_names(left, right).similarity
