#!/usr/bin/env python
"""Closed-loop load generator for the ``repro.serve`` HTTP service.

Spawns N worker threads, each issuing requests back-to-back (closed
loop: a worker sends its next request only after the previous response
lands) until the shared request budget is spent. Reports the status
mix, latency percentiles (p50/p90/p95/p99, overall and per status
code) and error taxonomy as both a human-readable table and an
optional JSON artifact — the file the CI serve-smoke step uploads and
asserts its p99 bound against.

Transport failures are bucketed, not lumped: a connection *refused*
(nothing listening — the server is down or not yet up) and a
connection *reset* (the server died mid-exchange — a crash or an
unclean drain) are different diagnoses, so they get their own
status buckets (``refused``/``reset``) alongside the generic
``transport`` catch-all. All three count toward ``transport_errors``
and trip ``--fail-on-5xx``.

Two connection modes, reported side by side in the summary:

* the default opens a fresh TCP connection per request (``urllib``) —
  the HTTP/1.0-era worst case and the regression baseline;
* ``--keep-alive`` gives every worker thread one persistent
  ``http.client`` connection reused across requests, with
  per-connection accounting (connections opened, requests per
  connection) so reuse is measurable, not assumed.

A second mode exercises the durable async job subsystem instead of the
synchronous endpoints: ``--jobs N`` submits N jobs (the server must be
running with ``--jobs-dir``), immediately *resubmits each one with the
same idempotency key* — asserting the retry is deduplicated onto the
original job id — then polls every job to a terminal state and fetches
its result, reporting submit-to-completion latency percentiles
alongside the dedupe tally.

Usage::

    python scripts/loadgen.py http://127.0.0.1:8080 --requests 200
    python scripts/loadgen.py $URL --keep-alive --threads 8
    python scripts/loadgen.py $URL --fail-on-5xx   # exit 1 on any 5xx
    python scripts/loadgen.py $URL --jobs 10       # async job round-trips

Stdlib only (``urllib``, ``http.client``, ``threading``) — the same
zero-dependency stance as the server it exercises.
"""

from __future__ import annotations

import argparse
import http.client
import itertools
import json
import sys
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path

#: The request mix: mostly cheap classify lookups, some cost queries, a
#: survey read — roughly the shape of a taxonomy-browsing client.
DEFAULT_PATHS = (
    "/v1/classify?ips=1&dps=n&ip-dp=1-n&ip-im=1-1&dp-dm=nxn&dp-dp=nxn",
    "/v1/classify?ips=n&dps=n&ip-ip=nxn&ip-dp=n-n&ip-im=nxn&dp-dm=n-n",
    "/v1/costs?class=IAP-IV&n=16",
    "/v1/costs?serial=21&n=64&technology=28nm",
    "/v1/survey?name=MorphoSys",
)


def percentile(samples: "list[float]", q: float) -> float:
    """The q-th percentile (0..100) of ``samples`` by nearest-rank.

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.0
    >>> percentile([5.0], 99)
    5.0
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def latency_summary(samples: "list[float]") -> dict:
    """p50/p90/p95/p99/max of ``samples`` (seconds), reported in ms.

    >>> latency_summary([0.001] * 4)["p99"]
    1.0
    >>> latency_summary([])["max"]
    0.0
    """
    return {
        "p50": round(percentile(samples, 50) * 1000, 3),
        "p90": round(percentile(samples, 90) * 1000, 3),
        "p95": round(percentile(samples, 95) * 1000, 3),
        "p99": round(percentile(samples, 99) * 1000, 3),
        "max": round(max(samples, default=0.0) * 1000, 3),
    }


#: Sentinel status codes for requests that never produced an HTTP
#: response. Negative so they can never collide with a real status.
STATUS_TRANSPORT = 0  #: generic transport failure (timeout, DNS, ...)
STATUS_REFUSED = -1  #: connection refused — nothing listening
STATUS_RESET = -2  #: connection reset / broken pipe — peer died mid-exchange


def transport_code(error: BaseException) -> int:
    """Classify a transport-layer failure into its status bucket.

    ``urllib`` wraps socket errors in :class:`urllib.error.URLError`,
    so unwrap ``reason`` first; ``http.client`` raises the ``OSError``
    subclasses directly.

    >>> transport_code(ConnectionRefusedError())
    -1
    >>> transport_code(urllib.error.URLError(ConnectionResetError()))
    -2
    >>> transport_code(TimeoutError())
    0
    """
    if isinstance(error, urllib.error.URLError):
        reason = error.reason
        if isinstance(reason, BaseException):
            error = reason
    if isinstance(error, ConnectionRefusedError):
        return STATUS_REFUSED
    if isinstance(error, (ConnectionResetError, BrokenPipeError)):
        return STATUS_RESET
    return STATUS_TRANSPORT


def _status_label(code: int) -> str:
    """The bucket name a (possibly sentinel) status code reports under."""
    return {
        STATUS_TRANSPORT: "transport",
        STATUS_REFUSED: "refused",
        STATUS_RESET: "reset",
    }.get(code, str(code))


def one_request(base_url: str, path: str, timeout_s: float) -> "tuple[int, float]":
    """Issue one GET; returns (status, elapsed seconds). <= 0 = transport error."""
    started = time.monotonic()
    try:
        with urllib.request.urlopen(base_url + path, timeout=timeout_s) as response:
            response.read()
            status = response.status
    except urllib.error.HTTPError as error:
        error.read()
        status = error.code
    except (urllib.error.URLError, OSError, TimeoutError) as error:
        status = transport_code(error)
    return status, time.monotonic() - started


class KeepAliveClient:
    """One worker thread's persistent connection, with reuse accounting.

    The server may close the connection at any time (request budget
    spent, idle timeout, drain), so every request gets exactly one
    reconnect-and-retry before it counts as a transport error — that
    retry is what makes budget-exhaustion invisible to throughput while
    still showing up in ``connections_opened``.
    """

    def __init__(self, base_url: str, timeout_s: float):
        split = urllib.parse.urlsplit(base_url)
        self.host = split.hostname
        self.port = split.port
        self.timeout_s = timeout_s
        self.connections_opened = 0
        self.requests_sent = 0
        self._conn: "http.client.HTTPConnection | None" = None

    def _connect(self) -> http.client.HTTPConnection:
        self._conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        self.connections_opened += 1
        return self._conn

    def _once(self, path: str) -> int:
        conn = self._conn if self._conn is not None else self._connect()
        conn.request("GET", path)
        response = conn.getresponse()
        response.read()
        if response.getheader("Connection", "").lower() == "close":
            self.close()
        return response.status

    def request(self, path: str) -> "tuple[int, float]":
        """One GET over the persistent connection; (status, seconds)."""
        started = time.monotonic()
        try:
            status = self._once(path)
        except (http.client.HTTPException, OSError):
            self.close()  # stale keep-alive socket: reconnect and retry once
            try:
                status = self._once(path)
            except (http.client.HTTPException, OSError) as error:
                self.close()
                status = transport_code(error)
        if status > 0:
            self.requests_sent += 1
        return status, time.monotonic() - started

    def close(self) -> None:
        """Drop the current connection (the next request reconnects)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None


def run_load(
    base_url: str,
    *,
    requests: int,
    threads: int,
    timeout_s: float,
    paths: "tuple[str, ...]" = DEFAULT_PATHS,
    keep_alive: bool = False,
) -> dict:
    """Drive the closed loop and return the summary dict."""
    budget = itertools.count()
    lock = threading.Lock()
    latencies: "list[float]" = []
    by_status: "dict[int, list[float]]" = {}
    clients: "list[KeepAliveClient]" = []

    def worker() -> None:
        client = KeepAliveClient(base_url, timeout_s) if keep_alive else None
        if client is not None:
            with lock:
                clients.append(client)
        try:
            while True:
                ordinal = next(budget)
                if ordinal >= requests:
                    return
                path = paths[ordinal % len(paths)]
                if client is not None:
                    status, elapsed = client.request(path)
                else:
                    status, elapsed = one_request(base_url, path, timeout_s)
                with lock:
                    latencies.append(elapsed)
                    by_status.setdefault(status, []).append(elapsed)
        finally:
            if client is not None:
                client.close()

    started = time.monotonic()
    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.monotonic() - started

    total = sum(len(samples) for samples in by_status.values())
    server_errors = sum(
        len(samples) for code, samples in by_status.items() if code >= 500
    )
    transport_errors = sum(
        len(samples) for code, samples in by_status.items() if code <= 0
    )
    summary = {
        "base_url": base_url,
        "requests": total,
        "threads": threads,
        "keep_alive": keep_alive,
        "elapsed_s": round(elapsed, 4),
        "throughput_rps": round(total / elapsed, 2) if elapsed > 0 else 0.0,
        "status_mix": {
            _status_label(code): len(by_status[code]) for code in sorted(by_status)
        },
        "server_errors": server_errors,
        "transport_errors": transport_errors,
        "transport": {
            "refused": len(by_status.get(STATUS_REFUSED, [])),
            "reset": len(by_status.get(STATUS_RESET, [])),
            "other": len(by_status.get(STATUS_TRANSPORT, [])),
        },
        "latency_ms": latency_summary(latencies),
        "by_status": {
            _status_label(code): {
                "count": len(by_status[code]),
                "latency_ms": latency_summary(by_status[code]),
            }
            for code in sorted(by_status)
        },
    }
    if keep_alive:
        connections = sum(client.connections_opened for client in clients)
        sent = sum(client.requests_sent for client in clients)
        summary["connections"] = {
            "opened": connections,
            "requests_per_connection": (
                round(sent / connections, 2) if connections else 0.0
            ),
        }
    return summary


#: Terminal job states — polling stops when one is reached.
TERMINAL_JOB_STATES = ("succeeded", "failed", "cancelled", "expired")


def _json_request(
    url: str, *, method: str = "GET", payload: "dict | None" = None,
    timeout_s: float = 30.0,
) -> "tuple[int, dict]":
    """One JSON round-trip; returns (status, decoded body)."""
    body = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, method=method,
        headers={"Content-Type": "application/json"} if body else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def run_jobs_load(
    base_url: str,
    *,
    jobs: int,
    threads: int,
    timeout_s: float,
    poll_s: float = 0.1,
    kind: str = "population",
    params: "dict[str, object] | None" = None,
) -> dict:
    """Submit/poll/result round-trips against the async jobs API.

    Every job is submitted with a unique idempotency key and then
    *immediately resubmitted with the same key* — modelling a client
    retrying a submission whose response it lost. The retry must come
    back deduplicated onto the original job id; a fresh job id counts
    as a dedupe failure. Jobs are then polled to a terminal state and
    (on success) their result is fetched, giving the full
    submit→complete→result client experience.
    """
    work = params if params is not None else {"size": 200, "chunk": 50}
    nonce = time.time_ns()
    budget = itertools.count()
    lock = threading.Lock()
    completion_s: "list[float]" = []
    outcomes: "dict[str, int]" = {}
    dedupe_ok = 0
    dedupe_failed = 0
    submit_errors = 0
    result_errors = 0
    polls = 0

    def worker() -> None:
        nonlocal dedupe_ok, dedupe_failed, submit_errors, result_errors, polls
        while True:
            ordinal = next(budget)
            if ordinal >= jobs:
                return
            key = f"loadgen-{nonce}-{ordinal}"
            payload = {"kind": kind, "idempotency-key": key, **work}
            started = time.monotonic()
            status, submitted = _json_request(
                f"{base_url}/v1/jobs", method="POST", payload=payload,
                timeout_s=timeout_s,
            )
            if status not in (200, 202):
                with lock:
                    submit_errors += 1
                continue
            job_id = submitted["job"]["id"]
            retry_status, retried = _json_request(
                f"{base_url}/v1/jobs", method="POST", payload=payload,
                timeout_s=timeout_s,
            )
            deduped = (
                retry_status == 200
                and retried.get("deduplicated") is True
                and retried.get("job", {}).get("id") == job_id
            )
            state = submitted["job"]["state"]
            deadline = time.monotonic() + timeout_s
            while state not in TERMINAL_JOB_STATES and time.monotonic() < deadline:
                time.sleep(poll_s)
                status, polled = _json_request(
                    f"{base_url}/v1/jobs/{job_id}", timeout_s=timeout_s
                )
                with lock:
                    polls += 1
                if status != 200:
                    break
                state = polled["job"]["state"]
            elapsed = time.monotonic() - started
            fetched_ok = True
            if state == "succeeded":
                result_status, _ = _json_request(
                    f"{base_url}/v1/jobs/{job_id}/result", timeout_s=timeout_s
                )
                fetched_ok = result_status == 200
            with lock:
                outcomes[state] = outcomes.get(state, 0) + 1
                if state in TERMINAL_JOB_STATES:
                    completion_s.append(elapsed)
                if deduped:
                    dedupe_ok += 1
                else:
                    dedupe_failed += 1
                if not fetched_ok:
                    result_errors += 1

    started = time.monotonic()
    pool = [threading.Thread(target=worker) for _ in range(max(1, threads))]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.monotonic() - started
    return {
        "base_url": base_url,
        "mode": "jobs",
        "kind": kind,
        "jobs": jobs,
        "threads": threads,
        "elapsed_s": round(elapsed, 4),
        "outcomes": {state: outcomes[state] for state in sorted(outcomes)},
        "succeeded": outcomes.get("succeeded", 0),
        "submit_errors": submit_errors,
        "result_errors": result_errors,
        "poll_requests": polls,
        "idempotency": {"deduplicated": dedupe_ok, "failed": dedupe_failed},
        "completion_ms": latency_summary(completion_s),
    }


def render_jobs(summary: dict) -> str:
    """The human-readable report for a ``--jobs`` run."""
    lines = [
        f"{summary['jobs']} jobs ({summary['kind']}) via {summary['threads']} "
        f"threads in {summary['elapsed_s']}s",
        "outcomes: "
        + (
            ", ".join(f"{k}={v}" for k, v in summary["outcomes"].items())
            or "none"
        ),
        f"idempotency retries deduplicated: "
        f"{summary['idempotency']['deduplicated']}/{summary['jobs']}",
        "completion ms: "
        + ", ".join(f"{k}={v}" for k, v in summary["completion_ms"].items()),
        f"poll requests: {summary['poll_requests']}",
    ]
    if summary["submit_errors"]:
        lines.append(f"!! {summary['submit_errors']} submissions rejected")
    if summary["result_errors"]:
        lines.append(f"!! {summary['result_errors']} result fetches failed")
    if summary["idempotency"]["failed"]:
        lines.append(
            f"!! {summary['idempotency']['failed']} idempotency retries were "
            "NOT deduplicated"
        )
    return "\n".join(lines)


def render(summary: dict) -> str:
    """The human-readable report printed after a run."""
    mode = "keep-alive" if summary.get("keep_alive") else "connection-per-request"
    lines = [
        f"{summary['requests']} requests via {summary['threads']} threads "
        f"({mode}) in {summary['elapsed_s']}s ({summary['throughput_rps']} req/s)",
        "status mix: "
        + ", ".join(
            f"{code}={count}" for code, count in summary["status_mix"].items()
        ),
        "latency ms: "
        + ", ".join(
            f"{name}={value}" for name, value in summary["latency_ms"].items()
        ),
    ]
    if "connections" in summary:
        lines.append(
            f"connections: {summary['connections']['opened']} opened, "
            f"{summary['connections']['requests_per_connection']} requests/connection"
        )
    for code, stats in summary["by_status"].items():
        lines.append(
            f"  {code}: {stats['count']} requests, "
            f"p50={stats['latency_ms']['p50']}ms p99={stats['latency_ms']['p99']}ms"
        )
    if summary["server_errors"]:
        lines.append(f"!! {summary['server_errors']} server (5xx) errors")
    if summary["transport_errors"]:
        taxonomy = summary.get("transport", {})
        detail = ", ".join(
            f"{bucket}={count}" for bucket, count in taxonomy.items() if count
        )
        lines.append(
            f"!! {summary['transport_errors']} transport errors"
            + (f" ({detail})" if detail else "")
        )
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    """Parse arguments, run the load, print and optionally persist it."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("url", help="base URL, e.g. http://127.0.0.1:8080")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--timeout", type=float, default=10.0, metavar="S")
    parser.add_argument(
        "--keep-alive", action="store_true",
        help="reuse one persistent connection per worker thread "
        "(reports connections opened and requests per connection)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE", help="write the JSON summary here"
    )
    parser.add_argument(
        "--fail-on-5xx", action="store_true",
        help="exit 1 when any request returned a 5xx or transport error",
    )
    parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="instead of the synchronous mix, run N async job round-trips "
        "(submit + idempotent retry + poll + result; server needs --jobs-dir)",
    )
    parser.add_argument(
        "--job-kind", default="population", metavar="KIND",
        help="job kind for --jobs mode (default: population)",
    )
    args = parser.parse_args(argv)
    if args.jobs > 0:
        summary = run_jobs_load(
            args.url.rstrip("/"),
            jobs=args.jobs,
            threads=args.threads,
            timeout_s=args.timeout,
            kind=args.job_kind,
        )
        print(render_jobs(summary))
        failed = (
            summary["submit_errors"]
            or summary["result_errors"]
            or summary["idempotency"]["failed"]
            or summary["succeeded"] != summary["jobs"]
        )
    else:
        summary = run_load(
            args.url.rstrip("/"),
            requests=args.requests,
            threads=args.threads,
            timeout_s=args.timeout,
            keep_alive=args.keep_alive,
        )
        print(render(summary))
        failed = bool(summary["server_errors"] or summary["transport_errors"])
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    if args.fail_on_5xx and failed:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
