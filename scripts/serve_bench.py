#!/usr/bin/env python
"""Serve data-plane benchmark: the old wire protocol vs the current one.

Boots two real servers and drives both with the closed-loop generator:

* **baseline** — the pre-keep-alive data plane, recreated via config
  (``--keepalive-requests 0 --cache-size 0``, one process): every
  request pays a TCP handshake, every response is computed;
* **current** — the shipping data plane: HTTP/1.1 keep-alive reuse,
  pre-fork workers sharing the port, the response cache over the pure
  endpoints, plus a batch-endpoint measurement (one POST carrying N
  signatures).

The headline number is the throughput **speedup** (current keep-alive
req/s over baseline req/s); ``--min-speedup`` turns it into a gate.
Each run is appended to the committed ``benchmarks/BENCH_serve.json``
trajectory, and ``--gate-out`` writes the current medians in
pytest-benchmark format so ``benchmarks/compare_benchmarks.py`` can
fail CI on a >25% regression against ``benchmarks/baseline_serve.json``.

Usage (what the CI ``serve-bench`` job runs)::

    python scripts/serve_bench.py --min-speedup 3 \
        --gate-out bench-serve-current.json \
        --out artifacts/serve-bench.json
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import signal
import subprocess
import sys
import time
import urllib.parse
import urllib.request
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(Path(__file__).resolve().parent))

from loadgen import DEFAULT_PATHS, percentile, run_load  # noqa: E402

#: The benchmark mix: the pure, deterministic endpoints the data plane
#: optimises (classify + costs). The sweep-backed survey is excluded —
#: its cost is the sweep engine's, not the wire's, and it drowns the
#: transport signal in compute noise (it stays covered by serve-smoke).
BENCH_PATHS = tuple(path for path in DEFAULT_PATHS if "/v1/survey" not in path)

#: One batch request's payload: distinct cost queries so the first
#: batch populates the cache and later batches measure the hit path.
BATCH_ITEMS = [{"class": "IAP-IV", "n": n} for n in range(1, 33)]


def server_env() -> dict:
    """A subprocess environment with ``src/`` importable."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


def boot_server(*flags: str) -> "tuple[subprocess.Popen, str]":
    """Start ``python -m repro.serve`` and wait for its URL line."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0", *flags],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        cwd=REPO_ROOT,
        env=server_env(),
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("listening on "):
        proc.kill()
        raise RuntimeError(f"server failed to boot: {line!r}")
    return proc, line.removeprefix("listening on ")


def stop_server(proc: subprocess.Popen) -> None:
    """SIGTERM the server and wait for its drain."""
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=30.0)
    except subprocess.TimeoutExpired:  # pragma: no cover - last resort
        proc.kill()
        proc.wait()


def measure_batches(url: str, *, batches: int) -> dict:
    """Per-item latency of the batch endpoint over one keep-alive conn."""
    split = urllib.parse.urlsplit(url)
    conn = http.client.HTTPConnection(split.hostname, split.port, timeout=30.0)
    body = json.dumps({"items": BATCH_ITEMS}).encode()
    per_item: list[float] = []
    try:
        for _ in range(batches):
            started = time.monotonic()
            conn.request(
                "POST", "/v1/costs", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            elapsed = time.monotonic() - started
            assert response.status == 200, payload
            assert payload["errors"] == 0, payload
            per_item.append(elapsed / len(BATCH_ITEMS))
    finally:
        conn.close()
    return {
        "batches": batches,
        "items_per_batch": len(BATCH_ITEMS),
        "item_s_median": percentile(per_item, 50),
        "item_s_p99": percentile(per_item, 99),
    }


def scrape_cache_counters(url: str) -> dict:
    """Fleet-wide cache hit/miss counters from ``/v1/metrics``."""
    with urllib.request.urlopen(url + "/v1/metrics", timeout=10.0) as response:
        text = response.read().decode()
    counters = {"hits": 0.0, "misses": 0.0}
    for line in text.splitlines():
        if line.startswith("repro_serve_cache_hits_total "):
            counters["hits"] = float(line.split()[1])
        elif line.startswith("repro_serve_cache_misses_total "):
            counters["misses"] = float(line.split()[1])
    lookups = counters["hits"] + counters["misses"]
    counters["hit_rate"] = round(counters["hits"] / lookups, 4) if lookups else 0.0
    return counters


def gate_entry(fullname: str, median_s: float) -> dict:
    """One pytest-benchmark-shaped entry for compare_benchmarks.py."""
    return {"fullname": fullname, "stats": {"median": median_s}}


def main(argv: "list[str] | None" = None) -> int:
    """Run baseline and current planes, gate, and record the trajectory."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=600)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--batches", type=int, default=10)
    parser.add_argument("--processes", type=int, default=2)
    parser.add_argument(
        "--min-speedup", type=float, default=0.0, metavar="X",
        help="fail unless current req/s >= X * baseline req/s (0 = report only)",
    )
    parser.add_argument(
        "--gate-out", default=None, metavar="FILE",
        help="write current medians here in pytest-benchmark format",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE", help="write the full JSON report here"
    )
    parser.add_argument(
        "--bench-file", default=str(REPO_ROOT / "benchmarks" / "BENCH_serve.json"),
        help="trajectory file to append this run to ('' skips the append)",
    )
    args = parser.parse_args(argv)

    def best_of(url: str, *, keep_alive: bool, rounds: int = 2) -> dict:
        """The best-throughput round — damping scheduler noise."""
        best = None
        for _ in range(rounds):
            summary = run_load(
                url, requests=args.requests, threads=args.threads,
                timeout_s=30.0, paths=BENCH_PATHS, keep_alive=keep_alive,
            )
            if best is None or summary["throughput_rps"] > best["throughput_rps"]:
                best = summary
        return best

    print("== baseline: HTTP/1.0-style, single process, no cache ==")
    proc, url = boot_server(
        "--processes", "1", "--keepalive-requests", "0", "--cache-size", "0",
        "--workers", "4",
    )
    try:
        baseline = best_of(url, keep_alive=False)
    finally:
        stop_server(proc)
    print(f"   {baseline['throughput_rps']} req/s, "
          f"p99 {baseline['latency_ms']['p99']}ms")

    print(f"== current: keep-alive, {args.processes} processes, cache, batch ==")
    proc, url = boot_server("--processes", str(args.processes), "--workers", "4")
    try:
        current = best_of(url, keep_alive=True)
        batch = measure_batches(url, batches=args.batches)
        cache = scrape_cache_counters(url)
    finally:
        stop_server(proc)
    print(f"   {current['throughput_rps']} req/s, "
          f"p99 {current['latency_ms']['p99']}ms, "
          f"cache hit rate {cache['hit_rate']}, "
          f"batch item median {batch['item_s_median'] * 1e6:.1f}us")

    baseline_rps = baseline["throughput_rps"]
    keepalive_speedup = (
        round(current["throughput_rps"] / baseline_rps, 2) if baseline_rps else 0.0
    )
    batch_items_per_s = (
        1.0 / batch["item_s_median"] if batch["item_s_median"] else 0.0
    )
    batch_speedup = (
        round(batch_items_per_s / baseline_rps, 2) if baseline_rps else 0.0
    )
    # The data plane's throughput is whatever its best client strategy
    # achieves: keep-alive reuse alone, or keep-alive + batched items.
    speedup = max(keepalive_speedup, batch_speedup)
    print(
        f"== speedup: {speedup}x "
        f"(keep-alive {keepalive_speedup}x, "
        f"batch {batch_speedup}x at {batch_items_per_s:.0f} items/s) =="
    )

    report = {
        "utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "requests": args.requests,
        "threads": args.threads,
        "processes": args.processes,
        "baseline_rps": baseline["throughput_rps"],
        "baseline_p99_ms": baseline["latency_ms"]["p99"],
        "current_rps": current["throughput_rps"],
        "current_p99_ms": current["latency_ms"]["p99"],
        "requests_per_connection": current.get("connections", {}).get(
            "requests_per_connection", 0.0
        ),
        "batch_item_us_median": round(batch["item_s_median"] * 1e6, 2),
        "batch_items_per_s": round(batch_items_per_s, 2),
        "cache_hit_rate": cache["hit_rate"],
        "keepalive_speedup": keepalive_speedup,
        "batch_speedup": batch_speedup,
        "speedup": speedup,
    }

    if args.gate_out:
        gate = {
            "benchmarks": [
                gate_entry(
                    "serve/keepalive_req_s",
                    1.0 / current["throughput_rps"] if current["throughput_rps"] else 0.0,
                ),
                gate_entry(
                    "serve/keepalive_p99_s", current["latency_ms"]["p99"] / 1000.0
                ),
                gate_entry("serve/batch_item_s", batch["item_s_median"]),
            ]
        }
        Path(args.gate_out).write_text(json.dumps(gate, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.gate_out}")

    if args.bench_file:
        bench_path = Path(args.bench_file)
        if bench_path.exists():
            trajectory = json.loads(bench_path.read_text())
        else:
            trajectory = {"schema": 1, "runs": []}
        trajectory["runs"].append(report)
        bench_path.parent.mkdir(parents=True, exist_ok=True)
        bench_path.write_text(json.dumps(trajectory, indent=1) + "\n")
        print(f"appended run to {bench_path}")

    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out_path}")

    failures = []
    if current["server_errors"] or current["transport_errors"]:
        failures.append(
            f"current run had {current['server_errors']} server / "
            f"{current['transport_errors']} transport errors"
        )
    if cache["hits"] == 0:
        failures.append("response cache recorded zero hits")
    if args.min_speedup and speedup < args.min_speedup:
        failures.append(
            f"speedup {speedup}x is below the --min-speedup {args.min_speedup}x gate"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
