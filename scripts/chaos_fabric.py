#!/usr/bin/env python
"""Chaos-verify the distributed sweep fabric end to end.

This is the CI ``chaos`` job. It proves the fabric's two headline
robustness claims with real processes and real SIGKILLs:

1. **Worker loss is invisible in the output.** A 2-worker distributed
   ``repro-taxonomy costs`` run, with one worker SIGKILLed mid-sweep,
   must exit 0 with stdout *byte-identical* to the uninterrupted
   single-host run — the lost worker's leased points are detected,
   re-queued and finished elsewhere, never dropped.
2. **Coordinator loss resumes bit-exactly.** A distributed run with
   ``--resume`` is SIGKILLed mid-sweep; re-running the same command
   restores the journalled points from the per-shard checkpoints and
   the final stdout is again byte-identical to the baseline.
3. **A relaunched worker rejoins the live sweep.** One of two workers
   is SIGKILLed mid-sweep and immediately relaunched on the *same*
   port (``--max-sessions 1``). The coordinator's rejoin loop
   (``--rejoin-backoff``) must re-dial it, hand it leases — proven by
   the relaunched worker exiting 0 after serving a full session — and
   the merged artifact must still be byte-identical to the baseline.
4. **A durable async job survives its server.** A throttled
   ``survey-costs`` job is submitted over ``/v1/jobs``, the *server*
   is SIGKILLed mid-job, and a fresh server is booted onto the same
   ``--jobs-dir``. The restarted runner must adopt the orphaned job,
   resume from its sweep checkpoint, and produce a result artifact
   byte-identical to an uninterrupted run of the same job — and
   resubmitting with the victim's idempotency key must return the
   original job id, deduplicated, without re-running anything.

Workers run with ``--throttle`` so the sweep is slow enough to kill
things mid-flight; the throttle shapes scheduling only, never values,
so byte-identity still holds.

Usage::

    python scripts/chaos_fabric.py
    python scripts/chaos_fabric.py --throttle 0.3 --kill-after 1.5
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _env(checkpoint_dir: "str | None" = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    if checkpoint_dir is not None:
        env["REPRO_CHECKPOINT_DIR"] = checkpoint_dir
    return env


def start_worker(
    throttle_s: float,
    *,
    port: int = 0,
    max_sessions: "int | None" = None,
) -> "tuple[subprocess.Popen, str]":
    """Boot one throttled sweep-worker; returns (process, HOST:PORT)."""
    command = [
        sys.executable, "-m", "repro.cli", "sweep-worker",
        "--listen", f"127.0.0.1:{port}", "--throttle", str(throttle_s),
    ]
    if max_sessions is not None:
        command += ["--max-sessions", str(max_sessions)]
    proc = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        cwd=REPO_ROOT,
        env=_env(),
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    match = re.match(r"worker listening on (\S+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"worker did not announce itself (got {line!r})")
    return proc, match.group(1)


def stop(proc: subprocess.Popen) -> None:
    """Terminate a leftover process, escalating to SIGKILL."""
    if proc.poll() is not None:
        return
    proc.terminate()
    try:
        proc.wait(timeout=5.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()


def run_costs(
    workers: "str | None",
    *,
    resume: bool = False,
    checkpoint_dir: "str | None" = None,
    kill_after_s: "float | None" = None,
    extra_args: "tuple[str, ...]" = (),
) -> "tuple[int | None, str]":
    """Run ``repro-taxonomy costs``; optionally SIGKILL it mid-sweep.

    Returns (exit status, stdout). Status is ``None`` when the run was
    killed (its partial stdout is discarded by the caller).
    """
    command = [sys.executable, "-m", "repro.cli", "costs"]
    if workers:
        command += ["--workers", workers]
    if resume:
        command += ["--resume"]
    command += list(extra_args)
    proc = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO_ROOT,
        env=_env(checkpoint_dir),
    )
    if kill_after_s is not None:
        time.sleep(kill_after_s)
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        return None, ""
    out, err = proc.communicate(timeout=300)
    if proc.returncode != 0:
        print(err, file=sys.stderr)
    return proc.returncode, out


def chaos_worker_loss(baseline: str, throttle_s: float, kill_after_s: float) -> "list[str]":
    """Scenario 1: SIGKILL one of two workers mid-sweep."""
    failures: "list[str]" = []
    victim, victim_addr = start_worker(throttle_s)
    survivor, survivor_addr = start_worker(throttle_s)
    killer_done = False
    try:
        import threading

        def kill_victim() -> None:
            time.sleep(kill_after_s)
            victim.send_signal(signal.SIGKILL)

        timer = threading.Thread(target=kill_victim, daemon=True)
        timer.start()
        status, out = run_costs(f"{victim_addr},{survivor_addr}")
        timer.join()
        killer_done = victim.poll() is not None
        if status != 0:
            failures.append(f"worker-loss run exited {status}, wanted 0")
        elif out != baseline:
            failures.append("worker-loss stdout differs from the single-host baseline")
        if not killer_done:
            failures.append("victim worker was never killed — scenario did not run")
    finally:
        stop(victim)
        stop(survivor)
    return failures


def chaos_coordinator_loss(
    baseline: str, throttle_s: float, kill_after_s: float
) -> "list[str]":
    """Scenario 2: SIGKILL the coordinator, then resume from the journal."""
    failures: "list[str]" = []
    worker_a, addr_a = start_worker(throttle_s)
    worker_b, addr_b = start_worker(throttle_s)
    endpoints = f"{addr_a},{addr_b}"
    with tempfile.TemporaryDirectory(prefix="chaos-fabric-") as checkpoints:
        try:
            run_costs(
                endpoints,
                resume=True,
                checkpoint_dir=checkpoints,
                kill_after_s=kill_after_s,
            )
            shards = sorted(Path(checkpoints).glob("costs.s*of*-*.jsonl"))
            # A shard holding progress has outcome records after its header.
            journalled = [
                s for s in shards if len(s.read_text().splitlines()) > 1
            ]
            if not journalled:
                failures.append(
                    "no journalled shard after the interrupt — the kill landed "
                    "before any point completed (raise --kill-after)"
                )
            status, out = run_costs(
                endpoints, resume=True, checkpoint_dir=checkpoints
            )
            if status != 0:
                failures.append(f"resumed run exited {status}, wanted 0")
            elif out != baseline:
                failures.append("resumed stdout differs from the single-host baseline")
        finally:
            stop(worker_a)
            stop(worker_b)
    return failures


def chaos_worker_rejoin(
    baseline: str, throttle_s: float, kill_after_s: float
) -> "list[str]":
    """Scenario 3: SIGKILL a worker, relaunch it on the same port, rejoin.

    The relaunched worker runs with ``--max-sessions 1``: it exits 0
    only after serving one *complete* fabric session, which is the
    hard evidence that the coordinator re-dialed it and it drew leases
    from the live sweep rather than idling until the end.
    """
    failures: "list[str]" = []
    victim, victim_addr = start_worker(throttle_s)
    victim_port = int(victim_addr.rsplit(":", 1)[1])
    survivor, survivor_addr = start_worker(throttle_s)
    replacement: "subprocess.Popen | None" = None
    try:
        import threading

        def kill_and_relaunch() -> None:
            nonlocal replacement
            time.sleep(kill_after_s)
            victim.send_signal(signal.SIGKILL)
            victim.wait()
            replacement, _ = start_worker(
                throttle_s, port=victim_port, max_sessions=1
            )

        timer = threading.Thread(target=kill_and_relaunch, daemon=True)
        timer.start()
        # A wide-but-finite rejoin window: attempts ~0.5s/1.5s/3.5s after
        # the loss, comfortably past the replacement's interpreter boot.
        status, out = run_costs(
            f"{victim_addr},{survivor_addr}",
            extra_args=("--rejoin-backoff", "0.5"),
        )
        timer.join(timeout=30.0)
        if status != 0:
            failures.append(f"rejoin run exited {status}, wanted 0")
        elif out != baseline:
            failures.append("rejoin stdout differs from the single-host baseline")
        if replacement is None:
            failures.append("replacement worker was never launched")
        else:
            try:
                rc = replacement.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                failures.append(
                    "relaunched worker never served a session — the "
                    "coordinator did not re-dial it"
                )
            else:
                if rc != 0:
                    failures.append(f"relaunched worker exited {rc}, wanted 0")
    finally:
        stop(victim)
        stop(survivor)
        if replacement is not None:
            stop(replacement)
    return failures


def start_job_server(jobs_dir: str) -> "tuple[subprocess.Popen, str]":
    """Boot the HTTP service with the durable job store at ``jobs_dir``."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve",
            "--port", "0", "--jobs-dir", jobs_dir, "--job-poll", "0.05",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        cwd=REPO_ROOT,
        env=_env(),
    )
    assert proc.stdout is not None
    line = proc.stdout.readline().strip()
    if not line.startswith("listening on "):
        proc.kill()
        raise RuntimeError(f"server did not announce itself (got {line!r})")
    return proc, line.removeprefix("listening on ")


def _jobs_request(
    url: str, *, method: str = "GET", payload: "dict | None" = None
) -> "tuple[int, dict]":
    """One JSON round-trip against the jobs API."""
    body = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, method=method,
        headers={"Content-Type": "application/json"} if body else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _poll_job(url: str, job_id: str, deadline_s: float) -> str:
    """Poll a job until it reaches a terminal state (or time runs out)."""
    terminal = ("succeeded", "failed", "cancelled", "expired")
    deadline = time.monotonic() + deadline_s
    state = "queued"
    while state not in terminal and time.monotonic() < deadline:
        time.sleep(0.1)
        status, polled = _jobs_request(f"{url}/v1/jobs/{job_id}")
        if status == 200:
            state = polled["job"]["state"]
    return state


def _result_bytes(url: str, job_id: str) -> bytes:
    """The raw result artifact bytes — raw so byte-identity is provable."""
    with urllib.request.urlopen(
        f"{url}/v1/jobs/{job_id}/result", timeout=30.0
    ) as response:
        return response.read()


def chaos_job_server_loss(throttle_s: float, kill_after_s: float) -> "list[str]":
    """Scenario 4: SIGKILL the *server* mid-job; restart resumes the job.

    The baseline is the same job spec run to completion uninterrupted on
    the same store. The victim job is killed mid-sweep along with its
    whole server process; a fresh server on the same ``--jobs-dir`` must
    adopt it, resume from the sweep checkpoint, and emit result bytes
    identical to the baseline's.
    """
    failures: "list[str]" = []
    spec = {"kind": "survey-costs", "n": 8, "throttle": throttle_s}
    with tempfile.TemporaryDirectory(prefix="chaos-jobs-") as jobs_dir:
        server, url = start_job_server(jobs_dir)
        restarted: "subprocess.Popen | None" = None
        try:
            _, submitted = _jobs_request(
                f"{url}/v1/jobs", method="POST",
                payload={**spec, "idempotency-key": "chaos-baseline"},
            )
            baseline_id = submitted["job"]["id"]
            if _poll_job(url, baseline_id, 120.0) != "succeeded":
                failures.append("baseline job did not succeed")
                return failures
            baseline = _result_bytes(url, baseline_id)

            _, submitted = _jobs_request(
                f"{url}/v1/jobs", method="POST",
                payload={**spec, "idempotency-key": "chaos-victim"},
            )
            victim_id = submitted["job"]["id"]
            deadline = time.monotonic() + 30.0
            state = "queued"
            while state == "queued" and time.monotonic() < deadline:
                time.sleep(0.05)
                _, polled = _jobs_request(f"{url}/v1/jobs/{victim_id}")
                state = polled["job"]["state"]
            if state != "running":
                failures.append(f"victim job never started running: {state}")
                return failures
            time.sleep(kill_after_s)
            server.send_signal(signal.SIGKILL)
            server.wait()

            restarted, url = start_job_server(jobs_dir)
            state = _poll_job(url, victim_id, 120.0)
            if state != "succeeded":
                failures.append(
                    f"job did not survive the server SIGKILL: {state}"
                )
                return failures
            resumed = _result_bytes(url, victim_id)
            if resumed != baseline:
                failures.append(
                    "resumed job result differs from the uninterrupted run"
                )
            status, retried = _jobs_request(
                f"{url}/v1/jobs", method="POST",
                payload={**spec, "idempotency-key": "chaos-victim"},
            )
            if (
                status != 200
                or retried.get("deduplicated") is not True
                or retried.get("job", {}).get("id") != victim_id
            ):
                failures.append(
                    "idempotent resubmit after restart did not return the "
                    f"original job: {status} {retried}"
                )
        finally:
            stop(server)
            if restarted is not None:
                stop(restarted)
    return failures


def main(argv: "list[str] | None" = None) -> int:
    """Run the chaos scenarios; exit nonzero on any violated invariant."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--throttle", type=float, default=0.2, metavar="S",
        help="per-point worker delay, sizing the kill window (default 0.2)",
    )
    parser.add_argument(
        "--kill-after", type=float, default=1.2, metavar="S",
        help="seconds into the sweep to deliver SIGKILL (default 1.2)",
    )
    args = parser.parse_args(argv)

    status, baseline = run_costs(None)
    if status != 0 or not baseline:
        print("FAIL: could not produce the single-host baseline", file=sys.stderr)
        return 1
    print(f"baseline: single-host costs table ({len(baseline)} bytes)")

    failures = chaos_worker_loss(baseline, args.throttle, args.kill_after)
    print("scenario 1 (worker SIGKILL mid-sweep): " + ("FAIL" if failures else "ok"))

    resume_failures = chaos_coordinator_loss(baseline, args.throttle, args.kill_after)
    print(
        "scenario 2 (coordinator SIGKILL + --resume): "
        + ("FAIL" if resume_failures else "ok")
    )
    failures += resume_failures

    rejoin_failures = chaos_worker_rejoin(baseline, args.throttle, args.kill_after)
    print(
        "scenario 3 (worker SIGKILL + same-port relaunch rejoins): "
        + ("FAIL" if rejoin_failures else "ok")
    )
    failures += rejoin_failures

    job_failures = chaos_job_server_loss(args.throttle, args.kill_after)
    print(
        "scenario 4 (server SIGKILL + restart mid-job): "
        + ("FAIL" if job_failures else "ok")
    )
    failures += job_failures

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("chaos fabric passed: all four kill scenarios byte-identical to baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
