#!/usr/bin/env python
"""End-to-end smoke of the serve stack: boot, load, drain — in one go.

This is the CI serve-smoke step. It:

1. boots ``python -m repro.serve --port 0`` as a subprocess (optionally
   pre-forked via ``--processes``) and parses the ``listening on
   <url>`` line for the ephemeral address;
2. drives ``scripts/loadgen.py`` against it with keep-alive connection
   reuse (default 200 requests) and writes the latency summary artifact;
3. exercises the full data plane: asserts connections were actually
   reused, posts one batch request, checks ``/v1/readyz`` reports every
   pre-forked worker, and checks ``/v1/metrics`` shows a nonzero
   response-cache hit count;
4. exercises the async job plane (the server boots with ``--jobs-dir``):
   a few submit/poll/result round-trips with idempotent-retry dedupe,
   and — when pre-forked — a SIGKILL of one worker mid-job, asserting
   the supervisor respawns the slot and the job still completes;
5. sends SIGTERM and asserts the (multi-worker) drain completes with
   exit code 0;
6. fails (exit 1) on any 5xx, transport error, unclean shutdown, lost
   job, or a p99 latency above ``--max-p99-ms`` (0 disables the bound).

Usage::

    python scripts/serve_smoke.py
    python scripts/serve_smoke.py --processes 2 --requests 500
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from loadgen import (  # noqa: E402
    TERMINAL_JOB_STATES,
    _json_request,
    render,
    render_jobs,
    run_jobs_load,
    run_load,
)

BATCH_BODY = json.dumps(
    {"items": [{"class": "IAP-IV", "n": n} for n in (4, 16, 64)]}
).encode()


def boot_server(extra_args: "list[str]", timeout_s: float) -> "tuple[subprocess.Popen, str]":
    """Start the server subprocess; returns (process, base URL)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO_ROOT,
    )
    deadline = time.monotonic() + timeout_s
    assert proc.stdout is not None
    line = proc.stdout.readline().strip()
    if not line.startswith("listening on ") or time.monotonic() > deadline:
        proc.kill()
        raise RuntimeError(f"server did not announce itself (got {line!r})")
    return proc, line.removeprefix("listening on ")


def check_batch(url: str, failures: "list[str]") -> None:
    """One batch POST must answer every item successfully."""
    request = urllib.request.Request(
        url + "/v1/costs", data=BATCH_BODY, method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30.0) as response:
        payload = json.loads(response.read())
    if payload.get("count") != 3 or payload.get("errors") != 0:
        failures.append(f"batch request misbehaved: {payload}")
    else:
        print(f"batch POST ok ({payload['count']} items, 0 errors)")


def check_fleet(url: str, processes: int, failures: "list[str]") -> None:
    """``/v1/readyz`` must report every pre-forked worker."""
    with urllib.request.urlopen(url + "/v1/readyz", timeout=30.0) as response:
        ready = json.loads(response.read())
    workers = ready.get("fleet", {}).get("workers", 0)
    if workers != processes:
        failures.append(f"readyz reports {workers} workers, expected {processes}")
    else:
        print(f"readyz reports the full fleet ({workers} worker(s))")


def check_cache_hits(url: str, failures: "list[str]") -> None:
    """The aggregated metrics must show a nonzero cache hit count."""
    with urllib.request.urlopen(url + "/v1/metrics", timeout=30.0) as response:
        text = response.read().decode()
    hits = 0.0
    for line in text.splitlines():
        if line.startswith("repro_serve_cache_hits_total "):
            hits = float(line.split()[1])
    if hits <= 0:
        failures.append("metrics show zero response-cache hits after the load")
    else:
        print(f"response cache served {hits:.0f} hits")


def check_jobs(url: str, failures: "list[str]") -> None:
    """A few async job round-trips, including idempotent-retry dedupe."""
    summary = run_jobs_load(url, jobs=3, threads=3, timeout_s=60.0)
    print(render_jobs(summary))
    if summary["succeeded"] != summary["jobs"]:
        failures.append(
            f"only {summary['succeeded']}/{summary['jobs']} jobs succeeded: "
            f"{summary['outcomes']}"
        )
    if summary["idempotency"]["failed"]:
        failures.append(
            f"{summary['idempotency']['failed']} idempotency retries were "
            "not deduplicated"
        )
    if summary["submit_errors"] or summary["result_errors"]:
        failures.append(
            f"jobs API errors: {summary['submit_errors']} submit, "
            f"{summary['result_errors']} result"
        )


def check_job_survives_respawn(
    url: str, processes: int, failures: "list[str]"
) -> None:
    """SIGKILL one pre-fork worker mid-job; the job must still finish.

    The job store lives on shared disk and crash-freed claims are
    adopted on the next poll, so losing the worker that was running the
    job must cost at most a resume — never the job.
    """
    status, submitted = _json_request(
        f"{url}/v1/jobs", method="POST", payload={
            "kind": "population", "size": 2000, "chunk": 50, "throttle": 0.05,
        }, timeout_s=30.0,
    )
    if status != 202:
        failures.append(f"slow job submit returned {status}: {submitted}")
        return
    job_id = submitted["job"]["id"]
    _, ready = _json_request(f"{url}/v1/readyz", timeout_s=30.0)
    pids = [m["pid"] for m in ready.get("fleet", {}).get("members", [])]
    if not pids:
        failures.append("readyz listed no fleet members to kill")
        return
    victim = pids[0]
    os.kill(victim, signal.SIGKILL)
    print(f"killed worker {victim} with SIGKILL mid-job {job_id}")

    deadline = time.monotonic() + 30.0
    respawned = False
    while time.monotonic() < deadline:
        try:
            _, ready = _json_request(f"{url}/v1/readyz", timeout_s=5.0)
        except OSError:
            time.sleep(0.2)
            continue
        fleet = ready.get("fleet", {})
        if (
            fleet.get("workers") == processes
            and fleet.get("respawns", {}).get("respawns", 0) >= 1
        ):
            respawned = True
            break
        time.sleep(0.2)
    if not respawned:
        failures.append("supervisor did not respawn the killed worker")
        return
    print(f"supervisor respawned the slot (fleet back to {processes})")

    state = "queued"
    while state not in TERMINAL_JOB_STATES and time.monotonic() < deadline:
        time.sleep(0.2)
        status, polled = _json_request(f"{url}/v1/jobs/{job_id}", timeout_s=5.0)
        if status == 200:
            state = polled["job"]["state"]
    if state != "succeeded":
        failures.append(f"job {job_id} did not survive the respawn: {state}")
        return
    status, _ = _json_request(f"{url}/v1/jobs/{job_id}/result", timeout_s=30.0)
    if status != 200:
        failures.append(f"result fetch after respawn returned {status}")
    else:
        print(f"job {job_id} survived the worker kill and completed")


def main(argv: "list[str] | None" = None) -> int:
    """Boot, load, drain; exit nonzero on any robustness violation."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument(
        "--out", default="artifacts/serve_smoke.json", metavar="FILE"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="server worker threads"
    )
    parser.add_argument(
        "--processes", type=int, default=1,
        help="pre-forked server processes (the fleet size readyz must report)",
    )
    parser.add_argument(
        "--max-p99-ms", type=float, default=0.0, metavar="MS",
        help="fail when overall p99 latency exceeds MS (0 disables; CI "
        "sets a generous bound to catch pathological regressions only)",
    )
    args = parser.parse_args(argv)

    jobs_dir = tempfile.mkdtemp(prefix="repro-smoke-jobs-")
    proc, url = boot_server(
        [
            "--workers", str(args.workers),
            "--processes", str(args.processes),
            "--jobs-dir", jobs_dir,
        ],
        timeout_s=30.0,
    )
    print(f"server up at {url}")
    failures: "list[str]" = []
    try:
        summary = run_load(
            url, requests=args.requests, threads=args.threads,
            timeout_s=30.0, keep_alive=True,
        )
        print(render(summary))
        if summary["server_errors"]:
            failures.append(f"{summary['server_errors']} 5xx responses")
        if summary["transport_errors"]:
            failures.append(f"{summary['transport_errors']} transport errors")
        connections = summary.get("connections", {}).get("opened", 0)
        if not connections or connections >= summary["requests"]:
            failures.append(
                f"keep-alive reuse did not happen: {connections} connections "
                f"for {summary['requests']} requests"
            )
        p99_ms = summary["latency_ms"]["p99"]
        if args.max_p99_ms and p99_ms > args.max_p99_ms:
            failures.append(
                f"p99 latency {p99_ms}ms exceeds the {args.max_p99_ms}ms bound"
            )
        check_batch(url, failures)
        check_fleet(url, args.processes, failures)
        check_cache_hits(url, failures)
        check_jobs(url, failures)
        if args.processes > 1:
            check_job_survives_respawn(url, args.processes, failures)
        if args.out:
            path = Path(args.out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
            print(f"wrote {path}")
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            status = proc.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            status = None
        shutil.rmtree(jobs_dir, ignore_errors=True)
    if status != 0:
        failures.append(f"server exited {status}, wanted a clean drain (0)")
    else:
        print("server drained cleanly (exit 0)")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
