"""Ablation `ablation-overheads`: energy and reconfiguration-time costs.

Extends Eq. 1/Eq. 2 along the axes the paper names but does not model:
per-operation energy and configuration reload latency. Verifies the
flexibility trade-off holds on both axes, and computes the break-even
workload sizes at which reconfiguring a flexible fabric amortises.
"""


from repro.core import class_by_name, flexibility, roman
from repro.models import (
    EnergyModel,
    ReconfigurationModel,
    ReconfigurationPort,
)

LADDER = ["IUP", "IAP-I", "IAP-IV", "IMP-I", "IMP-XVI", "ISP-XVI", "USP"]


def test_energy_per_op_ladder(benchmark):
    model = EnergyModel()

    def sweep():
        return {
            name: model.energy_per_op(class_by_name(name).signature, n=16)
            for name in LADDER
        }

    table = benchmark(sweep)
    # Energy grows along each within-paradigm flexibility chain.
    assert table["IAP-I"] < table["IAP-IV"]
    assert table["IMP-I"] < table["IMP-XVI"] < table["ISP-XVI"]
    # The USP is the most expensive machine to run per operation.
    assert table["USP"] == max(table.values())


def test_energy_ladder_full_imp_family(benchmark):
    model = EnergyModel()

    def sweep():
        return [
            model.energy_per_op(class_by_name(f"IMP-{roman(k)}").signature, n=16)
            for k in range(1, 17)
        ]

    values = benchmark(sweep)
    # Group by switch count: mean energy rises with subtype popcount.
    by_popcount: dict[int, list[float]] = {}
    for ordinal, value in enumerate(values, start=1):
        by_popcount.setdefault(bin(ordinal - 1).count("1"), []).append(value)
    means = [sum(v) / len(v) for _, v in sorted(by_popcount.items())]
    assert means == sorted(means)


def test_reconfiguration_latency_ladder(benchmark):
    model = ReconfigurationModel()

    def sweep():
        return {
            name: model.cost(class_by_name(name).signature, n=16).cycles
            for name in LADDER
        }

    table = benchmark(sweep)
    assert table["IUP"] < table["IAP-IV"] < table["IMP-XVI"]
    assert table["USP"] > 100 * table["ISP-XVI"]


def test_break_even_analysis(benchmark):
    """How long must a configuration live to amortise its own load?"""
    model = ReconfigurationModel(
        port=ReconfigurationPort(bandwidth_bits_per_cycle=32)
    )

    def analyse():
        signatures = {name: class_by_name(name).signature for name in LADDER}
        return model.break_even_table(signatures, n=16)

    table = benchmark(analyse)
    ordered = [table[name] for name in LADDER]
    assert ordered == sorted(ordered)
    # Concretely: the USP must run thousands of ops per configuration;
    # the coarse classes need only tens.
    assert table["USP"] > 1_000
    assert table["IAP-I"] < 100


def test_flexibility_never_free_on_any_axis(benchmark):
    """The composite claim: within the IMP family, strictly higher
    flexibility costs at least as much area, bits, energy AND reload
    latency."""
    from repro.models import AreaModel, ConfigBitsModel

    def audit():
        area = AreaModel()
        bits = ConfigBitsModel()
        energy = EnergyModel()
        reload_model = ReconfigurationModel()
        rows = []
        for k in range(1, 17):
            sig = class_by_name(f"IMP-{roman(k)}").signature
            rows.append(
                (
                    flexibility(sig),
                    area.total_ge(sig, n=16),
                    bits.total(sig, n=16),
                    energy.energy_per_op(sig, n=16),
                    reload_model.cost(sig, n=16).cycles,
                )
            )
        return rows

    rows = benchmark(audit)
    for flex_a, *costs_a in rows:
        for flex_b, *costs_b in rows:
            if flex_a > flex_b:
                # Not necessarily dominated pairwise (different switch
                # sets), but never strictly cheaper on every axis.
                assert not all(a < b for a, b in zip(costs_a, costs_b))
