"""Experiment `fig1`: regenerate the research-trend series.

Workload: generate the synthetic publication corpus (the IEEE-database
substitute), run the per-topic keyword queries year by year, and check
the paper's narrative shape — publication counts for multicore and
reconfigurable computing surge in the window's last five years.
"""


from repro.bibliometrics import PublicationCorpus, compute_trends
from repro.reporting.figures import render_fig1


def _regenerate_trends():
    corpus = PublicationCorpus(seed=2012)  # fresh corpus: full pipeline
    return compute_trends(corpus)


def test_fig1_regeneration(benchmark):
    report = benchmark(_regenerate_trends)
    assert len(report.trends) == 5
    multicore = report.by_topic("multicore architecture")
    reconf = report.by_topic("reconfigurable computing")
    baseline = report.by_topic("parallel programming")
    # The published figure's story: the last five years surge hardest for
    # multicore and reconfigurable computing.
    assert multicore.recent_growth_factor(recent_years=5) > 5.0
    assert reconf.recent_growth_factor(recent_years=5) > 2.0
    assert (
        multicore.recent_growth_factor(recent_years=5)
        > baseline.recent_growth_factor(recent_years=5)
    )


def test_fig1_series_shape(benchmark):
    report = _regenerate_trends()

    def series():
        return {t.topic: t.counts for t in report.trends}

    data = benchmark(series)
    for counts in data.values():
        assert len(counts) == 16  # 1995..2010

    # Late-window counts dominate early-window counts for every topic.
    for topic, counts in data.items():
        assert sum(counts[-5:]) > sum(counts[:5])


def test_fig1_render(benchmark):
    text = benchmark(render_fig1)
    assert "Research Trends" in text
    assert "multicore" in text
