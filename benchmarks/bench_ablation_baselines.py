"""Ablation `ablation-baselines`: the extension, quantified.

The paper's §I/§II argue that Flynn is too broad and Skillicorn cannot
express variable-role fabrics or IP-IP composition. This bench maps all
47 extended classes onto both baselines and verifies the paper's
headline numbers: 19 classes are new versus Skillicorn 1988, the
data-flow family and the USP have no Flynn category at all, and a
single MIMD label swallows all 32 IMP/ISP classes.
"""

from repro.core import (
    all_classes,
    baseline_resolution,
    extension_report,
    flynn_class,
    skillicorn_verdict,
)
from repro.registry import all_architectures


def _map_all() -> dict[str, tuple[str, bool]]:
    out = {}
    for cls in all_classes():
        category = flynn_class(cls.signature)
        out[f"{cls.serial}.{cls.comment}"] = (
            category.value if category else "(none)",
            skillicorn_verdict(cls.signature).representable,
        )
    return out


def test_baseline_mapping(benchmark):
    table = benchmark(_map_all)
    assert len(table) == 47
    new_count = sum(1 for _, representable in table.values() if not representable)
    assert new_count == 19  # the paper: "introduced 19 new classes"
    unmapped = sum(1 for category, _ in table.values() if category == "(none)")
    assert unmapped == 6    # the 5 data-flow rows + USP


def test_flynn_resolution_gain(benchmark):
    rows = benchmark(baseline_resolution)
    assert rows["MIMD"].resolution_gain == 32
    assert rows["SIMD"].resolution_gain == 4
    assert rows["SISD"].resolution_gain == 1
    assert rows["MISD"].resolution_gain == 4  # the NI rows — Flynn names
    # a category the extended taxonomy deems not implementable.


def test_extension_report(benchmark):
    report = benchmark(extension_report)
    assert report.total_classes == 47
    assert len(report.skillicorn_new) == 19
    assert report.mimd_fanout == 32


def test_survey_under_the_baselines(benchmark):
    """Applied to the real survey: Flynn collapses 25 architectures into
    a handful of labels, and several surveyed machines (REDEFINE, Colt,
    DRRA, MATRIX, FPGA) need the extensions to be classified at all or
    distinctly."""

    def classify_survey():
        flynn_labels: dict[str, list[str]] = {}
        needs_extension: list[str] = []
        for rec in all_architectures():
            category = flynn_class(rec.signature)
            label = category.value if category else "(none)"
            flynn_labels.setdefault(label, []).append(rec.name)
            if not skillicorn_verdict(rec.signature).representable:
                needs_extension.append(rec.name)
        return flynn_labels, needs_extension

    flynn_labels, needs_extension = benchmark(classify_survey)
    # The dataflow machines and the FPGA have no Flynn category.
    assert set(flynn_labels["(none)"]) == {"REDEFINE", "Colt", "FPGA"}
    # Skillicorn 1988 cannot express the spatial/variable machines.
    assert set(needs_extension) == {"DRRA", "MATRIX", "FPGA"}
    # Flynn's SIMD lumps 12 distinct architectures together...
    assert len(flynn_labels["SIMD"]) >= 10
    # ...which the extended taxonomy separates into IAP-II vs IAP-IV.
    from repro.registry import group_by_class

    groups = group_by_class()
    simd_split = {name for name in groups if name.startswith("IAP")}
    assert len(simd_split) >= 2
