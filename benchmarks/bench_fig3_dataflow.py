"""Experiment `fig3`: the data-flow machine sub-types, executed.

Fig. 3 illustrates DUP and DMP-I..IV structurally; this bench makes the
sub-type differences *behavioural*: the same dot-product dataflow graph
runs on each sub-type, and the measured cycle counts reproduce the
flexibility ladder (a DP-DP switch shortens the critical path versus a
memory-mediated exchange; DMP-I cannot run the graph at all).
"""


from repro.core.errors import CapabilityError
from repro.machine import DataflowMachine, DataflowSubtype
from repro.machine.kernels import dataflow_dot_product, dot_product_reference
from repro.reporting.figures import render_fig3

LENGTH = 16
A = [(i * 7) % 13 for i in range(LENGTH)]
B = [(i * 5 + 3) % 11 for i in range(LENGTH)]
GRAPH = dataflow_dot_product(LENGTH)
INPUTS = {f"a{i}": A[i] for i in range(LENGTH)} | {f"b{i}": B[i] for i in range(LENGTH)}
EXPECTED = dot_product_reference(A, B)


def _run_ladder() -> dict[str, int]:
    """Cycle count per runnable sub-type at 4 DPs."""
    cycles = {}
    for subtype in (
        DataflowSubtype.DMP_II,
        DataflowSubtype.DMP_III,
        DataflowSubtype.DMP_IV,
    ):
        result = DataflowMachine(4, subtype).run(GRAPH, INPUTS)
        assert result.outputs["dot"] == EXPECTED
        cycles[subtype.label] = result.cycles
    result = DataflowMachine(1).run(GRAPH, INPUTS)
    assert result.outputs["dot"] == EXPECTED
    cycles["DUP"] = result.cycles
    return cycles


def test_fig3_subtype_ladder(benchmark):
    cycles = benchmark(_run_ladder)
    # Parallel machines beat the serial DUP.
    assert cycles["DMP-IV"] < cycles["DUP"]
    assert cycles["DMP-II"] < cycles["DUP"]
    # Direct DP-DP token forwarding is no slower than the memory path.
    assert cycles["DMP-II"] <= cycles["DMP-III"]
    # The richest sub-type is at least as fast as every other.
    assert cycles["DMP-IV"] <= min(cycles["DMP-II"], cycles["DMP-III"])


def test_fig3_dmp1_infeasibility(benchmark):
    """DMP-I's missing interconnect is a hard refusal, not a slowdown."""

    def attempt():
        try:
            DataflowMachine(4, DataflowSubtype.DMP_I).run(GRAPH, INPUTS)
            return False
        except CapabilityError:
            return True

    refused = benchmark(attempt)
    assert refused


def test_fig3_render(benchmark):
    text = benchmark(render_fig3)
    for name in ("DUP", "DMP-I", "DMP-II", "DMP-III", "DMP-IV"):
        assert name in text
