"""Experiment `table1`: regenerate the 47-class extended taxonomy.

Workload: enumerate every class from the generative rules, derive the
names, and render the full Table I. The result is checked cell-by-cell
against the published table before timing.
"""

from repro.core.taxonomy import all_classes, enumerate_classes
from repro.reporting.tables import render_table1
from tests.golden.paper_data import TABLE1


def _regenerate() -> list[tuple[str, ...]]:
    # Bypass the lru_cache so the benchmark measures real enumeration.
    return [cls.row_cells() for cls in enumerate_classes()]


def test_table1_regeneration(benchmark):
    rows = benchmark(_regenerate)
    assert len(rows) == 47
    for row, expected in zip(rows, TABLE1):
        serial, gran, ips, dps, ip_ip, ip_dp, ip_im, dp_dm, dp_dp, comment = expected
        assert row == (
            f"{serial}.", gran, ips, dps, ip_ip, ip_dp, ip_im, dp_dm, dp_dp, comment
        )


def test_table1_render(benchmark):
    text = benchmark(render_table1)
    # Spot-check the rendered landmarks of the published table.
    for landmark in ("DUP", "IAP-IV", "IMP-XVI", "ISP-XVI", "USP", "LUTs", "NI"):
        assert landmark in text


def test_table1_lookup_throughput(benchmark):
    """Classify-by-serial lookups, the hot path of downstream tools."""
    classes = all_classes()

    def lookup_all():
        return [cls.comment for cls in classes]

    names = benchmark(lookup_all)
    assert names.count("NI") == 4
