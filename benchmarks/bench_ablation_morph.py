"""Ablation `ablation-morph`: §III-B's flexibility argument, executed.

Runs the full set of emulation demonstrations (IMP-I as array processor,
IAP-I as uniprocessor, the USP as both paradigms, plus the refusals that
anchor the ladder) and validates the structural morphability order
against the machine executions and the flexibility scores.
"""

from repro.analysis import build_morphability_order
from repro.core import class_by_name, flexibility
from repro.machine.morph import demonstrate_morphs


def test_morph_demonstrations(benchmark):
    demos = benchmark(demonstrate_morphs)
    assert all(d.succeeded for d in demos), [
        (d.emulator, d.target_behaviour) for d in demos if not d.succeeded
    ]
    emulators = {d.emulator for d in demos}
    assert {"IMP-I", "IAP-I", "IUP", "USP"} <= emulators


def test_morph_order_construction(benchmark):
    order = benchmark(build_morphability_order)
    assert order.graph.number_of_nodes() == 43
    assert order.maximal_elements() == ["USP"]


def test_morph_order_consistent_with_flexibility(benchmark):
    """If A emulates B (same machine type), A's flexibility >= B's —
    the scoring system never contradicts the emulation order."""
    order = build_morphability_order()

    def check():
        violations = []
        for a, b in order.graph.edges():
            cls_a = class_by_name(a)
            cls_b = class_by_name(b)
            if (
                cls_a.name.machine_type is cls_b.name.machine_type
                and flexibility(cls_a.signature) < flexibility(cls_b.signature)
            ):
                violations.append((a, b))
        return violations

    violations = benchmark(check)
    assert violations == []


def test_morph_coverage_profile(benchmark):
    """Coverage (fraction of classes reachable by morphing) across the
    survey's flexibility ladder: USP 100%, rigid classes near zero."""
    order = build_morphability_order()

    def coverages():
        return {
            name: order.coverage(name)
            for name in ("IUP", "IAP-I", "IMP-I", "IMP-XVI", "ISP-XVI", "USP")
        }

    table = benchmark(coverages)
    assert table["USP"] == 1.0
    assert table["ISP-XVI"] > table["IMP-XVI"] > table["IMP-I"]
    assert table["IMP-I"] > table["IAP-I"] > table["IUP"]
