"""Benchmark the columnar batch-classification kernel.

Measures the perf claim of :mod:`repro.core.batch` — classify + score +
price whole signature populations through flat decision tables and
structure-of-arrays columns — against the scalar per-signature loop it
is bit-exact with, and emits the machine-readable
``benchmarks/BENCH_batch.json`` trajectory artifact so successive PRs
can see the signatures/sec curve:

* the warm kernel (tables compiled once per process) must sustain a
  >= 50x per-signature throughput advantage over the scalar loop at a
  10k-signature batch;
* capacity is recorded at several batch sizes so the trajectory shows
  where fixed overheads stop mattering.
"""

import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core.batch import SignatureBatch, classify_batch, compile_taxonomy, price_batch
from repro.core.classify import canonical_class
from repro.core.flexibility import score_signature
from repro.models.area import AreaModel
from repro.models.configbits import ConfigBitsModel
from repro.registry.populations import PopulationSpec, generate_signatures

#: The headline population: 10k signatures stratified over the 47-class
#: space, counts decorated up to 256 (seed 7 — any seed would do, the
#: kernel is bit-exact on all of them).
POPULATION = PopulationSpec(size=10_000, seed=7, max_n=256)

#: How many signatures the scalar loop prices when it stands in for the
#: whole population — per-signature cost is flat, the loop is just slow.
SCALAR_SAMPLE = 1_000

#: Batch sizes for the capacity table (signatures/sec vs batch size).
CAPACITY_SIZES = (1_000, 10_000, 100_000)

TRAJECTORY_PATH = Path(__file__).resolve().parent / "BENCH_batch.json"

#: Filled by the tests below, flushed by test_emit_trajectory_artifact.
_RESULTS: dict = {}


def _measure(fn, repeats: int = 3) -> float:
    return min(_timed(fn) for _ in range(repeats))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _scalar_pass(signatures, *, n: int = 16):
    """The loop the kernel replaces: classify, score, Eq. 1, Eq. 2."""
    area = AreaModel()
    config = ConfigBitsModel()
    out = []
    for signature in signatures:
        out.append(
            (
                canonical_class(signature).serial,
                score_signature(signature).total,
                area.total_ge(signature, n=n),
                config.total(signature, n=n),
            )
        )
    return out


def _kernel_pass(batch, *, n: int = 16):
    """The vectorized equivalent over prebuilt SoA columns."""
    classified = classify_batch(batch)
    estimates = price_batch(batch, n=n)
    return classified, estimates


def test_compile_taxonomy(benchmark):
    """The one-time table build; amortised over every later batch."""
    compile_taxonomy.cache_clear()
    compiled = benchmark.pedantic(
        compile_taxonomy, setup=compile_taxonomy.cache_clear, rounds=3
    )
    assert int(compiled.valid.sum()) == 406
    compile_taxonomy.cache_clear()
    _RESULTS["compile_s"] = round(_measure(compile_taxonomy, repeats=1), 6)


def test_scalar_loop(benchmark):
    """Per-signature scalar cost over a population sample."""
    signatures = generate_signatures(POPULATION)[:SCALAR_SAMPLE]
    rows = benchmark(lambda: _scalar_pass(signatures))
    assert len(rows) == SCALAR_SAMPLE
    scalar_s = _measure(lambda: _scalar_pass(signatures))
    _RESULTS["scalar_sample"] = SCALAR_SAMPLE
    _RESULTS["scalar_us_per_sig"] = round(scalar_s / SCALAR_SAMPLE * 1e6, 3)


def test_batch_kernel(benchmark):
    """Warm-kernel cost over the full 10k population (tables prebuilt)."""
    signatures = generate_signatures(POPULATION)
    batch = SignatureBatch.from_signatures(signatures)
    compile_taxonomy()  # warm: the compile is priced by test_compile_taxonomy
    classified, estimates = benchmark(lambda: _kernel_pass(batch))
    assert len(classified) == POPULATION.size
    assert estimates.area_ge.shape == (POPULATION.size,)
    kernel_s = _measure(lambda: _kernel_pass(batch))
    build_s = _measure(lambda: SignatureBatch.from_signatures(signatures))
    _RESULTS["batch_size"] = POPULATION.size
    _RESULTS["kernel_us_per_sig"] = round(kernel_s / POPULATION.size * 1e6, 3)
    _RESULTS["soa_build_us_per_sig"] = round(build_s / POPULATION.size * 1e6, 3)


def test_kernel_speedup_floor():
    """The acceptance gate: >= 50x per-signature throughput at 10k."""
    scalar = _RESULTS["scalar_us_per_sig"]
    kernel = _RESULTS["kernel_us_per_sig"]
    speedup = scalar / kernel
    _RESULTS["speedup"] = round(speedup, 2)
    assert speedup >= 50.0, (
        f"kernel speedup {speedup:.1f}x below the 50x floor "
        f"(scalar {scalar:.1f}us/sig, kernel {kernel:.3f}us/sig)"
    )


def test_capacity_curve():
    """Signatures/sec at several batch sizes — the docs capacity table."""
    compile_taxonomy()
    capacity = {}
    for size in CAPACITY_SIZES:
        spec = PopulationSpec(size=size, seed=POPULATION.seed, max_n=POPULATION.max_n)
        batch = SignatureBatch.from_signatures(generate_signatures(spec))
        seconds = _measure(lambda batch=batch: _kernel_pass(batch))
        capacity[str(size)] = int(size / seconds)
    _RESULTS["signatures_per_s"] = capacity
    assert capacity[str(CAPACITY_SIZES[-1])] > capacity[str(CAPACITY_SIZES[0])]


def test_emit_trajectory_artifact():
    """Append this run to the BENCH_batch.json perf trajectory."""
    record = {
        "utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "cpu_count": os.cpu_count() or 1,
    }
    record.update(_RESULTS)
    if TRAJECTORY_PATH.exists():
        trajectory = json.loads(TRAJECTORY_PATH.read_text())
    else:
        trajectory = {"schema": 1, "runs": []}
    trajectory["runs"].append(record)
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")
    assert TRAJECTORY_PATH.exists()
