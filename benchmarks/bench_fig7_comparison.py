"""Experiment `fig7`: the flexibility comparison over the survey.

Workload: classify all 25 architectures, derive flexibility, sort and
render the bar chart. Checks the published ranking claims: FPGA first,
MATRIX second, with DRRA in the leading group, and the exact value of
every bar.
"""

from repro.registry.survey import flexibility_ranking
from repro.reporting.figures import fig7_series, render_fig7
from tests.golden.paper_data import TABLE3, TABLE3_ERRATA


def _expected_values() -> dict[str, int]:
    values = {}
    for row in TABLE3:
        name, flex = row[0], row[-1]
        if name in TABLE3_ERRATA:
            flex = TABLE3_ERRATA[name]["consistent_flexibility"]
        values[name] = flex
    return values


def test_fig7_regeneration(benchmark):
    names, values = benchmark(fig7_series)
    assert dict(zip(names, values)) == _expected_values()
    assert names[0] == "FPGA" and values[0] == 8
    assert names[1] == "MATRIX" and values[1] == 7
    assert "DRRA" in names[:4]  # the paper's "second and third" group


def test_fig7_ranking_descends(benchmark):
    ranking = benchmark(flexibility_ranking)
    values = [entry.flexibility for entry in ranking]
    assert values == sorted(values, reverse=True)
    assert values[-1] == 0  # the microcontrollers anchor the bottom


def test_fig7_render(benchmark):
    text = benchmark(render_fig7)
    assert text.splitlines()[1].startswith("FPGA")
