"""Benchmark `sweep-engine`: serial vs parallel sweeps, cache, dispatch.

Measures the three perf claims of the sweep substrate and emits the
machine-readable ``benchmarks/BENCH_sweeps.json`` trajectory artifact so
successive PRs can see the curve:

* a process-executor resilience sweep beats the serial loop on
  multi-core hardware (and never changes the results);
* the model-evaluation cache turns repeat sweeps into lookups;
* NumPy lane dispatch beats the per-lane interpreter on wide arrays.
"""

import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.analysis.resilience import resilience_sweep
from repro.machine.array_processor import ArrayProcessor, ArraySubtype
from repro.machine.kernels import simd_vector_add
from repro.perf import ModelCache, sweep

#: A fault-rate ladder heavy enough that per-point compute dominates the
#: engine's scheduling overhead (200 throughput evaluations per entry).
RATES = tuple(i / 1000.0 for i in range(1, 201))

TRAJECTORY_PATH = Path(__file__).resolve().parent / "BENCH_sweeps.json"

#: Filled by the tests below, flushed by test_emit_trajectory_artifact.
_RESULTS: dict = {}


def _measure(fn, repeats: int = 3) -> float:
    return min(_timed(fn) for _ in range(repeats))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_serial_resilience_sweep(benchmark):
    points = benchmark(lambda: resilience_sweep(RATES, n=64, jobs=1))
    assert len(points) == 25
    _RESULTS["serial_s"] = _measure(lambda: resilience_sweep(RATES, n=64, jobs=1))


def test_parallel_resilience_sweep(benchmark):
    jobs = os.cpu_count() or 1
    parallel = benchmark(lambda: resilience_sweep(RATES, n=64, jobs=jobs))
    assert parallel == resilience_sweep(RATES, n=64, jobs=1)
    _RESULTS["jobs"] = jobs
    _RESULTS["parallel_s"] = _measure(
        lambda: resilience_sweep(RATES, n=64, jobs=jobs)
    )


def test_sweep_engine_overhead(benchmark):
    """Serial engine dispatch vs a bare loop: overhead must stay small."""

    def engine_pass():
        return tuple(sweep(_int_square, range(500), executor="serial"))

    values = benchmark(engine_pass)
    assert values == tuple(x * x for x in range(500))


def _int_square(x):
    return x * x


def test_model_cache_hit_rate(benchmark):
    def repeat_survey():
        cache = ModelCache()
        for _ in range(5):
            points = evaluate_survey_with_cache(cache)
        return cache, points

    cache, points = benchmark(repeat_survey)
    stats = cache.stats
    assert len(points) == 25
    # 5 passes over 25 records: everything after the first pass hits,
    # and duplicate signatures hit within the first pass too.
    assert stats.hit_rate > 0.5
    _RESULTS["cache_hit_rate"] = round(stats.hit_rate, 4)
    _RESULTS["cache_lookups"] = stats.lookups


def evaluate_survey_with_cache(cache):
    from repro.analysis.survey_costs import cost_point
    from repro.registry.architectures import all_architectures

    return [
        cost_point(record, default_n=16, cache=cache)
        for record in all_architectures()
    ]


def test_vectorized_lane_dispatch(benchmark):
    def build():
        machine = ArrayProcessor(128, ArraySubtype.IAP_IV)
        machine.scatter(0, list(range(128 * 8)))
        machine.scatter(64, list(range(128 * 8)))
        return machine

    program = simd_vector_add(8)
    expected = build().run(program, vectorize=False).outputs

    def vectorized_run():
        return build().run(program, vectorize=True)

    result = benchmark(vectorized_run)
    assert result.outputs == expected
    _RESULTS["vector_s"] = _measure(lambda: build().run(program, vectorize=True))
    _RESULTS["interp_s"] = _measure(lambda: build().run(program, vectorize=False))


def test_emit_trajectory_artifact():
    """Append this run to the BENCH_sweeps.json perf trajectory."""
    record = {
        "utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "cpu_count": os.cpu_count() or 1,
        "rates": len(RATES),
        "survey_entries": 25,
    }
    record.update(_RESULTS)
    serial = record.get("serial_s")
    parallel = record.get("parallel_s")
    if serial and parallel:
        record["sweep_speedup"] = round(serial / parallel, 3)
    interp = record.get("interp_s")
    vector = record.get("vector_s")
    if interp and vector:
        record["vector_speedup"] = round(interp / vector, 3)
    if TRAJECTORY_PATH.exists():
        trajectory = json.loads(TRAJECTORY_PATH.read_text())
    else:
        trajectory = {"schema": 1, "runs": []}
    trajectory["runs"].append(record)
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")
    assert TRAJECTORY_PATH.exists()
