"""Experiment `fig5`: instruction-flow spatial processors, executed.

Fig. 5 illustrates the ISP classes, whose defining ability is composing
IPs into "a bigger or more complex IP". The bench fuses cores into a
VLIW group, runs a wide kernel, dissolves the group and runs independent
programs — the morph the figure depicts — and measures the issue-width
gain of fusion.
"""

from repro.machine import (
    MultiprocessorSubtype,
    SpatialMachine,
    VliwBundle,
    VliwProgram,
    assemble,
    ins,
)
from repro.reporting.figures import render_fig5

WIDTH = 4
STEPS = 16


def _wide_program() -> VliwProgram:
    bundles = [
        VliwBundle(tuple(ins("ldi", rd=1, imm=lane) for lane in range(WIDTH)))
    ]
    for _ in range(STEPS):
        bundles.append(
            VliwBundle(tuple(ins("addi", rd=1, rs1=1, imm=1) for _ in range(WIDTH)))
        )
    return VliwProgram(bundles, name="wide-increment")


def _morph_cycle() -> tuple[int, float, list[int]]:
    """Fuse -> run wide -> defuse -> run narrow; returns
    (fused cycles, fused ops/cycle, final registers)."""
    machine = SpatialMachine(WIDTH, MultiprocessorSubtype.IMP_II)
    group = machine.fuse(list(range(WIDTH)))
    fused = machine.run_fused(group, _wide_program())
    machine.defuse()
    narrow = machine.run(assemble("addi r1, r1, 100\nhalt"))
    finals = [regs[1] for regs in narrow.outputs["registers"]]
    return fused.cycles, fused.operations_per_cycle, finals


def test_fig5_fusion_morph(benchmark):
    cycles, throughput, finals = benchmark(_morph_cycle)
    # The fused group issues WIDTH operations per cycle.
    assert throughput == WIDTH
    assert cycles == STEPS + 1
    # After defusing, cores kept their fused results and ran independently.
    assert finals == [lane + STEPS + 100 for lane in range(WIDTH)]


def test_fig5_fused_vs_unfused_throughput(benchmark):
    """The same work, fused (VLIW) versus unfused (MIMD): identical
    results, higher per-cycle issue when fused."""

    def run_both():
        fused_machine = SpatialMachine(WIDTH, MultiprocessorSubtype.IMP_II)
        gid = fused_machine.fuse(list(range(WIDTH)))
        fused = fused_machine.run_fused(gid, _wide_program())

        unfused_machine = SpatialMachine(WIDTH, MultiprocessorSubtype.IMP_II)
        body = "\n".join(["addi r1, r1, 1"] * STEPS)
        programs = [
            assemble(f"ldi r1, {lane}\n{body}\nhalt")
            for lane in range(WIDTH)
        ]
        unfused = unfused_machine.run(programs)
        return fused, unfused

    fused, unfused = benchmark(run_both)
    fused_regs = [regs[1] for regs in fused.outputs["registers"]]
    unfused_regs = [regs[1] for regs in unfused.outputs["registers"]]
    assert fused_regs == unfused_regs
    # The fused machine needs no per-core HALT cycle and shares control.
    assert fused.cycles <= unfused.cycles


def test_fig5_render(benchmark):
    text = benchmark(render_fig5)
    assert "ISP-I" in text and "ISP-XVI" in text
