"""Benchmark `obs-overhead`: disabled instrumentation must be ~free.

The observability layer's contract (`docs/observability.md`) is that a
process which never enables tracing pays almost nothing for the
instrumentation compiled into the sweep engine, the machines and the
cache. This file *enforces* that contract:

* ``test_disabled_overhead_budget`` compares the instrumented serial
  sweep (tracing disabled — the default) against a bare reference loop
  that replicates the engine's pre-instrumentation semantics (per-point
  timing, ordered collection) and asserts the **median** overhead stays
  under 5%.
* ``test_enabled_tracing_is_bounded`` sanity-checks the *enabled* path:
  spans are allowed to cost real time, but a traced sweep of the same
  workload must stay within a generous envelope — catching accidental
  quadratic behaviour in the span machinery.
"""

import statistics
import time

from repro.obs import trace
from repro.perf import sweep
from repro.perf.engine import _run_chunk

#: Enough per-point arithmetic that the workload dominates scheduling
#: noise, and enough points that dispatch overhead would register.
POINTS = 400
REPEATS = 9


def _work(x):
    total = 0
    for i in range(120):
        total += (x + i) * (x - i)
    return total


def _reference_pass():
    """What the serial engine did before `repro.obs` existed."""
    indexed = list(enumerate(range(POINTS)))
    start = time.perf_counter()
    results = _run_chunk(_work, indexed)
    wall = time.perf_counter() - start
    return tuple(r.value for r in results), wall


def _instrumented_pass():
    return tuple(sweep(_work, range(POINTS), executor="serial"))


def _median_time(fn, repeats=REPEATS):
    samples = []
    for _ in range(repeats):
        begin = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - begin)
    return statistics.median(samples)


def test_disabled_overhead_budget():
    """Median instrumented-but-disabled time <= 1.05x the bare loop."""
    assert not trace.enabled(), "bench requires the default (disabled) tracer"
    expected = tuple(_work(x) for x in range(POINTS))
    assert _instrumented_pass() == expected
    assert _reference_pass()[0] == expected

    # Interleave the measurements so frequency scaling and cache state
    # bias neither side.
    instrumented, reference = [], []
    for _ in range(REPEATS):
        begin = time.perf_counter()
        _instrumented_pass()
        instrumented.append(time.perf_counter() - begin)
        begin = time.perf_counter()
        _reference_pass()
        reference.append(time.perf_counter() - begin)
    ratio = statistics.median(instrumented) / statistics.median(reference)
    assert ratio <= 1.05, (
        f"disabled instrumentation costs {ratio:.3f}x the bare loop "
        f"(budget 1.05x); median instrumented "
        f"{statistics.median(instrumented):.6f}s vs reference "
        f"{statistics.median(reference):.6f}s"
    )


def test_disabled_sweep_benchmark(benchmark):
    """pytest-benchmark record for the default (disabled) path."""
    values = benchmark(_instrumented_pass)
    assert len(values) == POINTS


def test_enabled_tracing_is_bounded():
    """Per-point spans cost real time, but linear time — not explosive."""
    disabled = _median_time(_instrumented_pass, repeats=5)

    def traced_pass():
        trace.reset()
        trace.enable()
        try:
            return _instrumented_pass()
        finally:
            trace.disable()
            trace.reset()

    try:
        enabled = _median_time(traced_pass, repeats=5)
    finally:
        trace.disable()
        trace.reset()
    # A traced sweep allocates one span per point; 3x the disabled cost
    # is a deliberately loose ceiling that still catches superlinear
    # span bookkeeping.
    assert enabled <= disabled * 3.0, (
        f"enabled tracing costs {enabled / disabled:.2f}x the disabled path"
    )
