"""Experiment `fig4`: the array-processor sub-types, executed.

Fig. 4 illustrates IAP-I..IV; this bench runs a capability matrix over
the four sub-types: the local kernel runs everywhere, the shuffle kernel
needs the DP-DP switch (II/IV), the gather kernel the DP-DM switch
(III/IV) — exactly the sub-type semantics the figure encodes.
"""

from repro.core.errors import CapabilityError
from repro.machine import ArrayProcessor, ArraySubtype
from repro.machine.kernels import (
    simd_gather_reverse,
    simd_reduction_shuffle,
    simd_vector_add,
    vector_add_reference,
)
from repro.reporting.figures import render_fig4

N_LANES = 8
A = list(range(N_LANES * 2))
B = [v * 3 for v in A]


def _capability_matrix() -> dict[str, dict[str, bool]]:
    matrix: dict[str, dict[str, bool]] = {}
    kernels = {
        "local": simd_vector_add(2),
        "shuffle": simd_reduction_shuffle(N_LANES),
        "gather": simd_gather_reverse(N_LANES, 1024),
    }
    for subtype in ArraySubtype:
        row = {}
        for kernel_name, program in kernels.items():
            machine = ArrayProcessor(N_LANES, subtype)
            machine.scatter(0, A)
            machine.scatter(64, B)
            try:
                machine.run(program)
                if kernel_name == "local":
                    assert machine.gather(128, len(A)) == vector_add_reference(A, B)
                row[kernel_name] = True
            except CapabilityError:
                row[kernel_name] = False
        matrix[subtype.label] = row
    return matrix


def test_fig4_capability_matrix(benchmark):
    matrix = benchmark(_capability_matrix)
    assert matrix == {
        "IAP-I": {"local": True, "shuffle": False, "gather": False},
        "IAP-II": {"local": True, "shuffle": True, "gather": False},
        "IAP-III": {"local": True, "shuffle": False, "gather": True},
        "IAP-IV": {"local": True, "shuffle": True, "gather": True},
    }


def test_fig4_simd_speedup(benchmark):
    """The array processor's raison d'etre: lanes multiply throughput."""
    from repro.machine import Uniprocessor
    from repro.machine.kernels import scalar_vector_add

    def run_both():
        iap = ArrayProcessor(8, ArraySubtype.IAP_I)
        iap.scatter(0, A)
        iap.scatter(64, B)
        simd = iap.run(simd_vector_add(2))
        iup = Uniprocessor(memory_size=2048)
        iup.load_memory(0, A)
        iup.load_memory(256, B)
        scalar = iup.run(scalar_vector_add(len(A)))
        return simd, scalar

    simd, scalar = benchmark(run_both)
    assert simd.cycles < scalar.cycles
    assert simd.operations_per_cycle > scalar.operations_per_cycle


def test_fig4_render(benchmark):
    text = benchmark(render_fig4)
    for name in ("IAP-I", "IAP-II", "IAP-III", "IAP-IV"):
        assert name in text
