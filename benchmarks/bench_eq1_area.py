"""Experiment `eq1`: the area estimator across classes and sizes.

Workload: evaluate Eq. 1 for every implementable class over an N sweep
and check the paper's qualitative claims — area grows with flexibility
inside a family (the ``x`` switch outweighs the ``-`` link), crossbar
terms grow quadratically while direct wiring grows linearly, and the
cross-topology cost ordering (direct < window < bus < crossbar) holds
for the executable interconnects too.
"""


from repro.core import class_by_name, implementable_classes, roman
from repro.interconnect import FullCrossbar, PointToPoint, SharedBus, SlidingWindow
from repro.models.area import AreaModel

SWEEP = (4, 16, 64)


def _sweep_all() -> dict[str, dict[int, float]]:
    model = AreaModel()
    return {
        cls.name.short: {n: model.total_ge(cls.signature, n=n) for n in SWEEP}
        for cls in implementable_classes()
    }


def test_eq1_sweep(benchmark):
    table = benchmark(_sweep_all)
    assert len(table) == 43
    # Monotone in n for every plural-population class.
    for name, row in table.items():
        values = [row[n] for n in SWEEP]
        assert values == sorted(values)


def test_eq1_flexibility_ordering_within_imp(benchmark):
    """IMP-I .. IMP-XVI area strictly tracks the subtype switch count."""
    model = AreaModel()

    def ladder():
        return [
            model.total_ge(class_by_name(f"IMP-{roman(k)}").signature, n=16)
            for k in range(1, 17)
        ]

    areas = benchmark(ladder)
    by_popcount = {}
    for ordinal, area in enumerate(areas, start=1):
        by_popcount.setdefault(bin(ordinal - 1).count("1"), []).append(area)
    means = [sum(v) / len(v) for _, v in sorted(by_popcount.items())]
    assert means == sorted(means)
    assert means[-1] > means[0]


def test_eq1_crossbar_scaling_shape(benchmark):
    """IMP-XVI/IMP-I area ratio grows with N (quadratic vs linear)."""
    model = AreaModel()
    flexible = class_by_name("IMP-XVI").signature
    rigid = class_by_name("IMP-I").signature

    def ratios():
        return [
            model.total_ge(flexible, n=n) / model.total_ge(rigid, n=n)
            for n in SWEEP
        ]

    values = benchmark(ratios)
    assert values == sorted(values)
    assert values[-1] > 1.5 * values[0]


def test_eq1_topology_cost_ordering(benchmark):
    """The executable interconnects respect the model's cost ladder."""

    def measure():
        n = 32
        return {
            "direct": PointToPoint(n).area_ge(),
            "window": SlidingWindow(n, hops=3).area_ge(),
            "bus": SharedBus(n, n).area_ge(),
            "crossbar": FullCrossbar(n, n).area_ge(),
        }

    costs = benchmark(measure)
    assert costs["direct"] < costs["window"] < costs["crossbar"]
    assert costs["bus"] < costs["crossbar"]
