"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artifact (table, figure or
equation sweep), asserts the reproduced shape against the golden
expectations, and times the regeneration with pytest-benchmark.
"""

import sys
from pathlib import Path

# Make the golden paper data importable from the benchmarks as well.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
