"""Experiment `fig6`: the universal-flow spatial processor, executed.

Fig. 6 illustrates the USP: fine-grained cells that become IPs or DPs on
configuration. The bench configures one LUT fabric as a data-flow
machine and as a stored-program soft CPU, validating both against
reference semantics and recording the measured configuration-bit costs
— the flexibility/overhead trade at gate level.
"""

from repro.machine import (
    SoftInstruction,
    SoftOp,
    SoftProgram,
    UniversalMachine,
)
from repro.machine.kernels import dataflow_dot_product
from repro.reporting.figures import render_fig6

GRAPH = dataflow_dot_product(4)
INPUTS = {"a0": 3, "a1": 1, "a2": 4, "a3": 1, "b0": 2, "b1": 7, "b2": 1, "b3": 8}
SOFT = SoftProgram(
    [
        SoftInstruction(SoftOp.LDI, 6),
        SoftInstruction(SoftOp.ADD, 255),
        SoftInstruction(SoftOp.JNZ, 1),
        SoftInstruction(SoftOp.HALT),
    ],
    name="countdown-6",
)


def _dataflow_personality() -> tuple[int, int]:
    usp = UniversalMachine(12_000)
    cells = usp.configure_dataflow(GRAPH, width=12)
    result = usp.run_dataflow(INPUTS)
    assert result.outputs["dot"] == GRAPH.evaluate(INPUTS)["dot"]
    return cells, usp.config_bits_used()


def _cpu_personality() -> tuple[int, int, int]:
    usp = UniversalMachine(1_000)
    cells = usp.configure_soft_processor(SOFT)
    result = usp.run_soft_processor()
    ref_acc, ref_cycles = SOFT.reference_run()
    assert result.outputs["acc"] == ref_acc
    assert result.cycles == ref_cycles
    return cells, usp.config_bits_used(), result.cycles


def test_fig6_dataflow_personality(benchmark):
    cells, bits = benchmark(_dataflow_personality)
    assert cells > 100          # real synthesis, not a stub
    assert bits > 10 * cells    # per-cell truth table + routing words


def test_fig6_instruction_personality(benchmark):
    cells, bits, cycles = benchmark(_cpu_personality)
    assert 50 < cells < 200     # a tiny CPU, gate-level
    assert cycles == SOFT.reference_run()[1]  # cycle-exact vs reference


def test_fig6_reconfiguration_roundtrip(benchmark):
    """One fabric, both paradigms, back to back — the USP claim."""

    def morph():
        usp = UniversalMachine(12_000)
        usp.configure_dataflow(GRAPH, width=12)
        dataflow = usp.run_dataflow(INPUTS).outputs["dot"]
        usp.configure_soft_processor(SOFT)
        cpu = usp.run_soft_processor().outputs["acc"]
        return dataflow, cpu

    dataflow, cpu = benchmark(morph)
    assert dataflow == GRAPH.evaluate(INPUTS)["dot"]
    assert cpu == SOFT.reference_run()[0]


def test_fig6_overhead_versus_hard_classes(benchmark):
    """The USP's configuration overhead towers over every coarse class
    at the same design point (the paper's FPGA-vs-ASIC framing)."""
    from repro.core import class_by_name
    from repro.models import ConfigBitsModel

    def compare():
        usp = UniversalMachine(12_000)
        usp.configure_dataflow(GRAPH, width=12)
        soft_bits = usp.config_bits_used()
        model = ConfigBitsModel()
        hard_bits = {
            name: model.total(class_by_name(name).signature, n=4)
            for name in ("IUP", "IAP-IV", "IMP-XVI", "DMP-IV")
        }
        return soft_bits, hard_bits

    soft_bits, hard_bits = benchmark(compare)
    assert all(soft_bits > 10 * bits for bits in hard_bits.values())


def test_fig6_render(benchmark):
    text = benchmark(render_fig6)
    assert "USP" in text and "vxv" in text
