"""Experiment `table2`: regenerate the flexibility values of every class.

Workload: score all 43 named classes with the §III-B scoring system and
check every value against the published Table II.
"""

from repro.core.flexibility import score_signature
from repro.core.taxonomy import implementable_classes
from repro.reporting.tables import render_table2
from tests.golden.paper_data import TABLE2


def _score_all() -> dict[str, int]:
    return {
        cls.name.short: score_signature(cls.signature).total
        for cls in implementable_classes()
    }


def test_table2_regeneration(benchmark):
    values = benchmark(_score_all)
    assert values == TABLE2


def test_table2_render(benchmark):
    text = benchmark(render_table2)
    assert "IMP-XVI" in text and "USP" in text


def test_table2_breakdowns(benchmark):
    """Scoring with full provenance (the explain path)."""

    def explain_all():
        return [
            score_signature(cls.signature).explain()
            for cls in implementable_classes()
        ]

    texts = benchmark(explain_all)
    assert len(texts) == 43
    assert any("universal-flow bonus" in t for t in texts)
