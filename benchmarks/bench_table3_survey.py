"""Experiment `table3`: classify the 25 surveyed architectures.

Workload: parse every Table-III record's structural cells, classify the
signature, score it and render the survey table; checked against the
published rows (with the documented PACT XPP erratum).
"""

from repro.core.classify import classify
from repro.core.signature import make_signature
from repro.registry.architectures import SURVEYED_ARCHITECTURES
from repro.reporting.tables import render_table3
from tests.golden.paper_data import TABLE3, TABLE3_ERRATA


def _classify_survey() -> list[tuple[str, str, int]]:
    results = []
    for rec in SURVEYED_ARCHITECTURES:
        # Re-parse from the raw cells each time: the benchmark measures
        # the full pipeline, not the record's cached property.
        signature = make_signature(
            rec.ips, rec.dps,
            ip_ip=rec.ip_ip, ip_dp=rec.ip_dp, ip_im=rec.ip_im,
            dp_dm=rec.dp_dm, dp_dp=rec.dp_dp,
            granularity=rec.granularity,
        )
        result = classify(signature)
        results.append((rec.name, result.short_name, result.flexibility))
    return results


def test_table3_regeneration(benchmark):
    results = benchmark(_classify_survey)
    assert len(results) == 25
    for (name, derived_name, derived_flex), golden in zip(results, TABLE3):
        assert name == golden[0]
        assert derived_name == golden[8]
        expected_flex = golden[9]
        if name in TABLE3_ERRATA:
            expected_flex = TABLE3_ERRATA[name]["consistent_flexibility"]
        assert derived_flex == expected_flex


def test_table3_render(benchmark):
    text = benchmark(render_table3)
    for name, *_ in TABLE3:
        assert name in text
