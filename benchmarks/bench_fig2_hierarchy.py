"""Experiment `fig2`: regenerate the hierarchy-of-computing-machines tree."""

from repro.core.hierarchy import build_hierarchy, iter_paths
from repro.reporting.figures import render_fig2


def test_fig2_regeneration(benchmark):
    root = benchmark(build_hierarchy)
    assert [c.label for c in root.children] == [
        "Data Flow", "Instruction Flow", "Universal Flow",
    ]
    total = sum(len(node.classes) for _, node in root.walk())
    assert total == 43


def test_fig2_render(benchmark):
    text = benchmark(render_fig2)
    for branch in ("Data Flow", "Array Processor", "Spatial Processor", "USP"):
        assert branch in text


def test_fig2_paths(benchmark):
    paths = benchmark(lambda: list(iter_paths(build_hierarchy())))
    leaves = {p[-1] for p in paths}
    assert {"DUP", "IUP", "IAP-I", "IMP-XVI", "ISP-XVI", "USP"} <= leaves
