"""Experiment `eq2`: the configuration-bit estimator.

Workload: evaluate Eq. 2 for every implementable class over an N sweep
and check §III-B's claims — overhead grows with flexibility, the USP
(fine-grained) class dwarfs every coarse class, full crossbars need more
bits than limited ones, and the LUT fabric's *measured* bitstream cost
is consistent with the estimator's USP figure in shape.
"""


from repro.core import flexibility, implementable_classes
from repro.models.configbits import ConfigBitsModel
from repro.models.switches import FullCrossbarModel, LimitedCrossbarModel

SWEEP = (4, 16, 64)


def _sweep_all() -> dict[str, dict[int, int]]:
    model = ConfigBitsModel()
    return {
        cls.name.short: {n: model.total(cls.signature, n=n) for n in SWEEP}
        for cls in implementable_classes()
    }


def test_eq2_sweep(benchmark):
    table = benchmark(_sweep_all)
    assert len(table) == 43
    for row in table.values():
        values = [row[n] for n in SWEEP]
        assert values == sorted(values)
    # The USP dominates everything at every size.
    for n in SWEEP:
        usp = table["USP"][n]
        assert all(usp > row[n] for name, row in table.items() if name != "USP")


def test_eq2_flexibility_overhead_correlation(benchmark):
    """Across all instruction-flow classes at n=16, configuration bits
    correlate positively with flexibility (Spearman-style check)."""

    def collect():
        model = ConfigBitsModel()
        pairs = []
        for cls in implementable_classes():
            if cls.name.short.startswith(("IMP", "ISP", "IAP", "IUP")):
                pairs.append(
                    (flexibility(cls.signature), model.total(cls.signature, n=16))
                )
        return pairs

    pairs = benchmark(collect)
    # Group by flexibility: mean bits must increase with flexibility.
    by_flex: dict[int, list[int]] = {}
    for flex, bits in pairs:
        by_flex.setdefault(flex, []).append(bits)
    means = [sum(v) / len(v) for _, v in sorted(by_flex.items())]
    assert means == sorted(means)


def test_eq2_full_vs_limited_crossbar(benchmark):
    """'a full cross bar switch will require more bits than a limited
    crossbar' — quantified across sizes."""

    def measure():
        full = FullCrossbarModel()
        limited = LimitedCrossbarModel(window=7)
        return {
            n: (full.config_bits(n, n), limited.config_bits(n, n))
            for n in (16, 64, 256)
        }

    table = benchmark(measure)
    for n, (full_bits, limited_bits) in table.items():
        assert full_bits > limited_bits
    # The gap widens with size: full grows as n log n, limited as n.
    gaps = [full - limited for full, limited in table.values()]
    assert gaps == sorted(gaps)


def test_eq2_measured_fabric_agrees_in_shape(benchmark):
    """The gate-level fabric's measured bitstream grows linearly in the
    cell count, as the estimator's fine-grained term assumes."""
    from repro.machine import LutFabric

    def measure():
        sizes = (256, 1024, 4096)
        return {size: LutFabric(size, k=4).config_bits_full() for size in sizes}

    table = benchmark(measure)
    sizes = sorted(table)
    ratio_small = table[sizes[1]] / table[sizes[0]]
    ratio_large = table[sizes[2]] / table[sizes[1]]
    # Slightly superlinear: each 4x in cells multiplies the bitstream by
    # 4x plus the growth of the per-input select word (log2 of the
    # source space), matching the estimator's fine-grained term.
    assert 4.0 <= ratio_small <= 6.0
    assert 4.0 <= ratio_large <= 6.0
