"""Ablation `networks`: the same 'x' cell, four silicon realisations.

Table III marks DRRA's DP-DP as ``nx14`` (a 3-hop window) and MATRIX's
as ``nxn`` — both 'x' to the taxonomy, very different machines. This
bench runs identical message-passing workloads on an IMP-II whose DP-DP
switch is realised as a full crossbar, a sliding window, a mesh and a
hierarchical network: identical results, topology-dependent makespans,
and the area/latency trade quantified in one table.
"""


from repro.interconnect import (
    FullCrossbar,
    HierarchicalNetwork,
    Mesh2D,
    SlidingWindow,
)
from repro.machine import Multiprocessor, MultiprocessorSubtype, assemble

N = 8


def _networks():
    return {
        "crossbar": FullCrossbar(N, N),
        "window-1hop": SlidingWindow(N, hops=1),
        "mesh-2x4": Mesh2D(2, 4),
        "hierarchical": HierarchicalNetwork(N, cluster_size=4),
    }


def _all_to_root_workload():
    """Every core sends its value to core 0; core 0 sums them."""
    programs = []
    receiver_lines = ["    ldi r6, 0"]
    for source in range(1, N):
        receiver_lines += [
            f"    ldi r1, {source}",
            "    recv r2, r1",
            "    add r6, r6, r2",
        ]
    receiver_lines.append("    halt")
    programs.append(assemble("\n".join(receiver_lines), name="root"))
    for core in range(1, N):
        programs.append(
            assemble(
                f"ldi r1, 0\nldi r2, {core * 3}\nsend r1, r2\nhalt",
                name=f"leaf{core}",
            )
        )
    return programs


def test_network_choice_preserves_results(benchmark):
    expected = sum(core * 3 for core in range(1, N))

    def run_all():
        outcomes = {}
        for name, network in _networks().items():
            machine = Multiprocessor(
                N, MultiprocessorSubtype.IMP_II, network=network
            )
            result = machine.run(_all_to_root_workload())
            outcomes[name] = (
                result.outputs["registers"][0][6],
                result.cycles,
            )
        return outcomes

    outcomes = benchmark(run_all)
    for name, (total, _cycles) in outcomes.items():
        assert total == expected, name


def test_network_choice_shapes_makespan(benchmark):
    """Long-haul traffic separates the topologies: the 1-hop window
    relays across the whole array, the crossbar delivers next cycle."""

    def run_all():
        cycles = {}
        for name, network in _networks().items():
            machine = Multiprocessor(
                N, MultiprocessorSubtype.IMP_II, network=network
            )
            result = machine.run(_all_to_root_workload())
            cycles[name] = result.cycles
        return cycles

    cycles = benchmark(run_all)
    assert cycles["crossbar"] <= cycles["window-1hop"]
    assert cycles["crossbar"] <= cycles["mesh-2x4"]


def test_area_latency_tradeoff_table(benchmark):
    """The composite design table: silicon cost vs delivered makespan."""

    def build():
        rows = {}
        for name, network in _networks().items():
            machine = Multiprocessor(
                N, MultiprocessorSubtype.IMP_II, network=network
            )
            result = machine.run(_all_to_root_workload())
            rows[name] = (network.area_ge(), result.cycles)
        return rows

    rows = benchmark(build)
    # The 1-hop window is the cheapest fabric and pays in cycles.
    assert rows["window-1hop"][0] == min(area for area, _ in rows.values())
    assert rows["window-1hop"][1] >= rows["crossbar"][1]
    # Among the single-stage switches the crossbar is the biggest. (The
    # mesh's per-node routers carry fixed overhead that only amortises
    # at larger port counts — see bench_ablation_switches's crossover.)
    assert rows["crossbar"][0] > rows["hierarchical"][0]
    assert rows["crossbar"][0] > rows["window-1hop"][0]
