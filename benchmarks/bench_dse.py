"""Experiment `dse`: the §V design-decision workflow, swept.

Workload: for every flexibility floor 0..8, find the feasible classes
and the cheapest (by configuration overhead) recommendation — the table
an architect would consult before committing to a class.
"""

from repro.analysis import Objective, Requirements, explore, evaluate_classes, pareto_frontier


def _requirements_sweep() -> dict[int, str | None]:
    picks: dict[int, str | None] = {}
    for floor in range(0, 9):
        result = explore(
            Requirements(min_flexibility=floor), objective=Objective.CONFIG_BITS
        )
        picks[floor] = result.best.name if result.best else None
    return picks


def test_dse_sweep(benchmark):
    picks = benchmark(_requirements_sweep)
    # Feasibility shrinks but never vanishes until past the USP.
    assert picks[0] is not None
    assert picks[8] == "USP"      # only the USP reaches flexibility 8
    assert picks[7] in ("ISP-XVI", "USP")
    # The floor-0 answer is one of the zero-overhead uniprocessors.
    assert picks[0] in ("DUP", "IUP")


def test_dse_monotone_cost_of_flexibility(benchmark):
    """Raising the flexibility floor never lowers the cheapest
    configuration overhead — flexibility is never free."""

    def cheapest_bits():
        out = []
        for floor in range(0, 9):
            result = explore(
                Requirements(min_flexibility=floor),
                objective=Objective.CONFIG_BITS,
            )
            out.append(result.best.config_bits)
        return out

    bits = benchmark(cheapest_bits)
    assert bits == sorted(bits)


def test_dse_frontier_generation(benchmark):
    def frontier():
        return pareto_frontier(evaluate_classes(n=16))

    points = benchmark(frontier)
    names = {p.name for p in points}
    assert {"DUP", "IUP", "USP"} <= names
    flexes = [p.flexibility for p in points]
    assert flexes == sorted(flexes)
