"""Ablation `survey-costs`: the surveyed architectures on the cost plane.

The paper classifies but never costs Table III; this bench evaluates
every survey record with all four models (area, configuration bits,
energy/op, reload latency) at its own concrete size and checks the
aggregate shape: the FPGA sits alone at the overhead extreme, the
microcontrollers at the cost minimum, and same-class-same-size records
coincide exactly.
"""


from repro.analysis.survey_costs import evaluate_survey, survey_cost_table


def test_survey_cost_sweep(benchmark):
    points = benchmark(lambda: evaluate_survey(default_n=16))
    assert len(points) == 25
    by_name = {p.name: p for p in points}

    # FPGA's fine-grained configuration dominates by >10x.
    fpga = by_name["FPGA"]
    others = [p for p in points if p.name != "FPGA"]
    assert fpga.config_bits > 10 * max(p.config_bits for p in others)

    # The uniprocessors anchor the minimum on every axis but energy.
    assert min(p.area_ge for p in points) == by_name["ARM7TDMI"].area_ge
    assert min(p.config_bits for p in points) == by_name["AT89C51"].config_bits

    # Identical class + identical concrete size => identical estimates.
    assert by_name["MorphoSys"].area_ge == by_name["REMARC"].area_ge
    assert by_name["Cortex-A9 (Quad)"].area_ge != by_name["Core2Duo"].area_ge  # 4 vs 2 cores


def test_survey_cost_flexibility_shape(benchmark):
    """Among same-size (n=16) instruction-flow survey entries, mean cost
    rises with flexibility — the survey-level restatement of §III-B."""

    def collect():
        points = evaluate_survey(default_n=16)
        same_size = [
            p for p in points
            if p.n_effective == 16 and not p.taxonomic_name.startswith(("DMP", "USP"))
        ]
        by_flex: dict[int, list[float]] = {}
        for p in same_size:
            by_flex.setdefault(p.flexibility, []).append(p.config_bits)
        return {
            flex: sum(vals) / len(vals) for flex, vals in sorted(by_flex.items())
        }

    means = benchmark(collect)
    values = list(means.values())
    assert values == sorted(values)


def test_survey_cost_render(benchmark):
    text = benchmark(survey_cost_table)
    assert "MorphoSys" in text and "reload cycles" in text
