"""Ablation `sensitivity`: the paper's ordering claims across parameter space.

Eq. 1 and Eq. 2 take parameter libraries (component areas, configuration
words, switch costs). A reproduction that only checks the default
library would leave open whether the paper's qualitative claims are
artefacts of our chosen numbers; this bench samples many random-but-sane
parameter sets and verifies the claims hold across all of them:

* area grows with the subtype switch count inside the IMP family;
* configuration overhead grows with flexibility;
* the full crossbar always beats the limited crossbar in bits;
* the USP's configuration overhead dominates every coarse class.
"""

import numpy as np

from repro.core import class_by_name, flexibility, roman
from repro.models.area import AreaModel, ComponentAreas
from repro.models.configbits import ComponentConfigWords, ConfigBitsModel
from repro.models.switches import FullCrossbarModel, LimitedCrossbarModel

N_SAMPLES = 60


def _random_libraries(seed: int = 7):
    rng = np.random.default_rng(seed)
    for _ in range(N_SAMPLES):
        areas = ComponentAreas(
            ip_ge=float(rng.uniform(1_000, 100_000)),
            dp_ge=float(rng.uniform(500, 50_000)),
            im_bits=int(rng.integers(1_024, 262_144)),
            dm_bits=int(rng.integers(1_024, 524_288)),
            lut_cell_ge=float(rng.uniform(20, 200)),
        )
        words = ComponentConfigWords(
            ip_cw=int(rng.integers(8, 128)),
            dp_cw=int(rng.integers(8, 256)),
            im_cw=int(rng.integers(4, 64)),
            dm_cw=int(rng.integers(4, 64)),
            lut_inputs=int(rng.integers(3, 7)),
            lut_routing_cw=int(rng.integers(8, 64)),
        )
        width = int(rng.integers(8, 128))
        yield areas, words, width


def test_area_ordering_robust_across_libraries(benchmark):
    def audit():
        violations = 0
        for areas, _words, width in _random_libraries():
            model = AreaModel(areas=areas, width_bits=width)
            ladder = [
                model.total_ge(class_by_name(f"IMP-{roman(k)}").signature, n=16)
                for k in (1, 2, 4, 8, 16)
            ]
            if ladder != sorted(ladder):
                violations += 1
        return violations

    assert benchmark(audit) == 0


def test_config_ordering_robust_across_libraries(benchmark):
    def audit():
        violations = 0
        coarse = [
            class_by_name(name).signature
            for name in ("IUP", "IAP-IV", "IMP-XVI", "ISP-XVI", "DMP-IV")
        ]
        usp = class_by_name("USP").signature
        for _areas, words, width in _random_libraries(seed=11):
            model = ConfigBitsModel(words=words, width_bits=width)
            usp_bits = model.total(usp, n=16)
            if any(usp_bits <= model.total(sig, n=16) for sig in coarse):
                violations += 1
            ladder = [
                model.total(class_by_name(f"IMP-{roman(k)}").signature, n=16)
                for k in (1, 2, 4, 8, 16)
            ]
            if ladder != sorted(ladder):
                violations += 1
        return violations

    assert benchmark(audit) == 0


def test_full_vs_limited_crossbar_robust(benchmark):
    def audit():
        rng = np.random.default_rng(3)
        violations = 0
        for _ in range(N_SAMPLES):
            width = int(rng.integers(1, 256))
            window = int(rng.integers(1, 32))
            ports = int(rng.integers(window + 1, 512))
            full = FullCrossbarModel(width_bits=width)
            limited = LimitedCrossbarModel(window=window, width_bits=width)
            if limited.config_bits(ports, ports) > full.config_bits(ports, ports):
                violations += 1
            if limited.area_ge(ports, ports) > full.area_ge(ports, ports):
                violations += 1
        return violations

    assert benchmark(audit) == 0


def test_flexibility_cost_correlation_robust(benchmark):
    """Across random libraries, the rank correlation between flexibility
    and configuration bits over all instruction-flow classes stays
    strongly positive."""
    from repro.core import implementable_classes

    classes = [
        cls for cls in implementable_classes()
        if cls.name.short.startswith(("IUP", "IAP", "IMP", "ISP"))
    ]
    flexes = np.array([flexibility(cls.signature) for cls in classes], dtype=float)

    def audit():
        worst = 1.0
        for _areas, words, width in _random_libraries(seed=23):
            model = ConfigBitsModel(words=words, width_bits=width)
            bits = np.array(
                [model.total(cls.signature, n=16) for cls in classes],
                dtype=float,
            )
            # Spearman via rank transform + Pearson.
            def ranks(values):
                order = values.argsort()
                out = np.empty_like(order, dtype=float)
                out[order] = np.arange(len(values))
                return out

            rf, rb = ranks(flexes), ranks(bits)
            rho = float(np.corrcoef(rf, rb)[0, 1])
            worst = min(worst, rho)
        return worst

    worst_rho = benchmark(audit)
    assert worst_rho > 0.7
