"""Ablation `streaming`: throughput behaviour of the executable machines.

The surveyed data-flow fabrics are streaming engines (Colt's wormhole
streams, PipeRench's virtualised pipeline) and several IMPs are task
farms. This bench measures the two throughput mechanisms the substrate
models: wave pipelining on the dataflow machine and task-pool draining
on IP-IM-switched multiprocessors — including the scaling shapes.
"""

import pytest

from repro.machine import (
    DataflowMachine,
    DataflowSubtype,
    Multiprocessor,
    MultiprocessorSubtype,
    assemble,
)
from repro.machine.kernels import dataflow_dot_product

WAVES = 8
GRAPH = dataflow_dot_product(4)
WAVE_INPUTS = [
    {f"a{i}": w + i for i in range(4)} | {f"b{i}": 3 for i in range(4)}
    for w in range(WAVES)
]


def test_streaming_pipelines_overlap(benchmark):
    machine = DataflowMachine(4, DataflowSubtype.DMP_IV)

    def stream():
        return machine.run_stream(GRAPH, WAVE_INPUTS)

    result = benchmark(stream)
    single = machine.run(GRAPH, WAVE_INPUTS[0]).cycles
    assert result.cycles < single * WAVES          # overlap happened
    assert result.cycles >= single                 # but not magic
    got = [wave["dot"] for wave in result.outputs["waves"]]
    assert got == [GRAPH.evaluate(w)["dot"] for w in WAVE_INPUTS]


def test_streaming_throughput_scales_with_dps(benchmark):
    def sweep():
        return {
            n_dps: DataflowMachine(n_dps, DataflowSubtype.DMP_IV)
            .run_stream(GRAPH, WAVE_INPUTS)
            .stats["throughput_waves_per_cycle"]
            for n_dps in (2, 4, 8)
        }

    table = benchmark(sweep)
    values = [table[n] for n in (2, 4, 8)]
    assert values == sorted(values)
    assert values[-1] > values[0]


def test_task_pool_scaling(benchmark):
    """Task-farm makespan shrinks with core count (IP-IM switch)."""
    tasks = [
        assemble("\n".join(["addi r1, r1, 1"] * 12) + "\nhalt", name=f"t{k}")
        for k in range(16)
    ]

    def sweep():
        return {
            n_cores: Multiprocessor(n_cores, MultiprocessorSubtype.IMP_V)
            .run_task_pool(tasks)
            .cycles
            for n_cores in (2, 4, 8)
        }

    table = benchmark(sweep)
    assert table[8] < table[4] < table[2]
    # Near-perfect speedup for equal-length independent tasks.
    assert table[2] / table[8] == pytest.approx(4.0, rel=0.2)


def test_task_pool_is_a_flexibility_payoff(benchmark):
    """Measured: the IP-IM switch (IMP-V vs IMP-I) converts directly
    into the ability to run 4x more tasks than cores — the operational
    meaning of one Table-II flexibility point."""
    from repro.core import class_by_name, flexibility
    from repro.core.errors import CapabilityError

    tasks = [assemble("ldi r1, 1\nhalt") for _ in range(8)]

    def attempt():
        flex_v = flexibility(class_by_name("IMP-V").signature)
        flex_i = flexibility(class_by_name("IMP-I").signature)
        pool_v = Multiprocessor(2, MultiprocessorSubtype.IMP_V).run_task_pool(tasks)
        try:
            Multiprocessor(2, MultiprocessorSubtype.IMP_I).run_task_pool(tasks)
            refused = False
        except CapabilityError:
            refused = True
        return flex_v - flex_i, pool_v.stats["tasks"], refused

    flex_delta, drained, refused = benchmark(attempt)
    assert flex_delta == 1
    assert drained == 8
    assert refused
