"""Ablation `ablation-switch`: what each switch upgrade buys and costs.

Starting from IMP-I (the least flexible multiprocessor), upgrade one
connectivity site at a time to ``x`` and measure the deltas in
flexibility, area and configuration bits — the per-switch decomposition
of the taxonomy's central trade-off. Also profiles the executable
topologies standing behind each choice of switch implementation.
"""

from repro.core import Link, LinkSite, class_by_name, flexibility
from repro.interconnect import (
    FullCrossbar,
    HierarchicalNetwork,
    LimitedCrossbar,
    Mesh2D,
    SharedBus,
    SlidingWindow,
    profile,
)
from repro.models.area import AreaModel
from repro.models.configbits import ConfigBitsModel

UPGRADABLE = (LinkSite.IP_DP, LinkSite.IP_IM, LinkSite.DP_DM, LinkSite.DP_DP)


def _per_switch_deltas() -> dict[str, tuple[int, float, int]]:
    base = class_by_name("IMP-I").signature
    area_model = AreaModel()
    config_model = ConfigBitsModel()
    base_flex = flexibility(base)
    base_area = area_model.total_ge(base, n=16)
    base_bits = config_model.total(base, n=16)
    deltas = {}
    for site in UPGRADABLE:
        upgraded = base.with_link(site, Link.switched("n", "n"))
        deltas[site.label] = (
            flexibility(upgraded) - base_flex,
            area_model.total_ge(upgraded, n=16) - base_area,
            config_model.total(upgraded, n=16) - base_bits,
        )
    return deltas


def test_ablation_each_switch_costs_and_pays(benchmark):
    deltas = benchmark(_per_switch_deltas)
    for site_label, (d_flex, d_area, d_bits) in deltas.items():
        assert d_flex == 1, site_label     # each upgrade buys one point
        assert d_area > 0, site_label      # and costs real area
        assert d_bits > 0, site_label      # and real configuration bits


def test_ablation_switch_implementations(benchmark):
    """The same 'x' cell can be realised many ways; profile them all at
    a scale (64 ports) where the quadratic crossbar has pulled away."""

    def profiles():
        n = 64
        return {
            "full-crossbar": profile("full", FullCrossbar(n, n)),
            "limited-crossbar": profile("limited", LimitedCrossbar(n, window=3)),
            "shared-bus": profile("bus", SharedBus(n, n)),
            "mesh-8x8": profile("mesh", Mesh2D(8, 8)),
            "window-3hop": profile("window", SlidingWindow(n, hops=3)),
            "hierarchical": profile("hier", HierarchicalNetwork(n, cluster_size=8)),
        }

    table = benchmark(profiles)
    full = table["full-crossbar"]
    # Everything else economises on area relative to the full crossbar...
    for name, record in table.items():
        if name != "full-crossbar":
            assert record.area_ge < full.area_ge, name
    # ...by giving up single-hop reach or full single-cycle reachability.
    assert table["limited-crossbar"].reachability < 1.0
    assert table["mesh-8x8"].diameter > full.diameter
    assert table["window-3hop"].diameter > full.diameter


def test_ablation_mesh_crossbar_crossover(benchmark):
    """Where the crossover falls: per-node routers beat the monolithic
    crossbar only past a break-even port count (the quadratic term)."""

    def sweep():
        out = {}
        for side in (2, 4, 8, 16):
            n = side * side
            out[n] = (
                Mesh2D(side, side).area_ge(),
                FullCrossbar(n, n).area_ge(),
            )
        return out

    table = benchmark(sweep)
    # Small fabrics: the crossbar is competitive (mesh routers dominate).
    mesh_small, xbar_small = table[4]
    assert mesh_small > xbar_small
    # Large fabrics: the crossbar's n^2 term loses decisively.
    mesh_large, xbar_large = table[256]
    assert mesh_large < xbar_large
    # And the advantage grows monotonically with size.
    ratios = [xbar / mesh for mesh, xbar in table.values()]
    assert ratios == sorted(ratios)


def test_ablation_cumulative_ladder(benchmark):
    """Upgrading switches one by one walks IMP-I -> IMP-XVI, with both
    cost metrics increasing monotonically along the walk."""

    def walk():
        signature = class_by_name("IMP-I").signature
        area_model = AreaModel()
        config_model = ConfigBitsModel()
        steps = []
        for site in UPGRADABLE:
            signature = signature.with_link(site, Link.switched("n", "n"))
            steps.append(
                (
                    flexibility(signature),
                    area_model.total_ge(signature, n=16),
                    config_model.total(signature, n=16),
                )
            )
        return signature, steps

    final, steps = benchmark(walk)
    from repro.core import classify

    assert classify(final).short_name == "IMP-XVI"
    flex_values = [s[0] for s in steps]
    area_values = [s[1] for s in steps]
    bit_values = [s[2] for s in steps]
    assert flex_values == [3, 4, 5, 6]
    assert area_values == sorted(area_values)
    assert bit_values == sorted(bit_values)
