"""Benchmark-regression gate: compare a pytest-benchmark run to a baseline.

Usage (what the CI ``bench`` job runs)::

    python benchmarks/compare_benchmarks.py \
        benchmarks/baseline.json bench-current.json --max-regression 0.25

Both files are ``--benchmark-json`` outputs. Tests are matched by their
``fullname``; a test whose current median exceeds the baseline median by
more than ``--max-regression`` fails the gate (exit 1). Tests present
only on one side are reported but never fail — new benchmarks enter the
baseline on the next ``--update``.

Sub-microsecond benchmarks sit at the timer-resolution floor, where a
25% "regression" is scheduler noise, not a slowdown. A regression
therefore only fails the gate when the absolute slowdown also exceeds
``--min-delta`` (default 10µs); smaller excursions are reported as
noise.

``--update`` rewrites the baseline file from the current run instead of
comparing (commit the result to move the bar deliberately).
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path


def load_medians(path: Path) -> "dict[str, float]":
    """fullname -> median seconds, from a --benchmark-json file."""
    data = json.loads(path.read_text())
    medians: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        medians[bench["fullname"]] = bench["stats"]["median"]
    return medians


def compare(
    baseline: "dict[str, float]",
    current: "dict[str, float]",
    *,
    max_regression: float,
    min_delta: float,
) -> "tuple[list[str], bool]":
    """Render a comparison table; True when the gate passes."""
    lines = []
    failed = False
    width = max((len(name) for name in {*baseline, *current}), default=4)
    header = f"{'benchmark'.ljust(width)}  {'baseline':>12}  {'current':>12}  {'ratio':>7}  verdict"
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted({*baseline, *current}):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            lines.append(
                f"{name.ljust(width)}  {'—':>12}  {cur:>12.6f}  {'—':>7}  NEW (not gated)"
            )
            continue
        if cur is None:
            lines.append(
                f"{name.ljust(width)}  {base:>12.6f}  {'—':>12}  {'—':>7}  MISSING (not gated)"
            )
            continue
        ratio = cur / base if base > 0 else float("inf")
        over_ratio = ratio > 1.0 + max_regression
        regressed = over_ratio and (cur - base) > min_delta
        if regressed:
            verdict = f"FAIL (> +{max_regression:.0%})"
        elif over_ratio:
            verdict = "noise (under min delta)"
        else:
            verdict = "ok"
        failed = failed or regressed
        lines.append(
            f"{name.ljust(width)}  {base:>12.6f}  {cur:>12.6f}  {ratio:>6.2f}x  {verdict}"
        )
    return lines, not failed


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when benchmark medians regress beyond a threshold"
    )
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument("current", type=Path, help="fresh --benchmark-json output")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed median slowdown as a fraction (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--min-delta",
        type=float,
        default=10e-6,
        help="absolute slowdown in seconds a regression must also exceed "
        "to fail the gate (default 10e-6 = 10µs)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="overwrite the baseline with the current run instead of comparing",
    )
    args = parser.parse_args(argv)

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated from {args.current}")
        return 0
    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} not found", file=sys.stderr)
        return 2
    baseline = load_medians(args.baseline)
    current = load_medians(args.current)
    lines, passed = compare(
        baseline,
        current,
        max_regression=args.max_regression,
        min_delta=args.min_delta,
    )
    print("\n".join(lines))
    print()
    if passed:
        print(f"benchmark gate PASSED ({len(current)} benchmarks)")
        return 0
    print(
        f"benchmark gate FAILED: median regression beyond "
        f"+{args.max_regression:.0%} of baseline",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
