#!/usr/bin/env python3
"""Design-space exploration: pick an architecture class for a workload.

The paper's stated use case (§V): "a designer can decide which computer
class offers the required flexibility with minimum configuration
overhead for single or set of target applications."

This example plays the designer for an embedded DSP product that needs:

* data parallelism (a SIMD-friendly filter bank),
* inter-lane data exchange (FFT-style butterflies),
* a hard configuration-memory budget,

then sweeps the budget to show where the recommended class changes —
the early design decision the taxonomy is meant to enable.

Run:  python examples/design_space_exploration.py
"""

from repro.analysis import Objective, Requirements, explore, pareto_frontier, evaluate_classes
from repro.machine.base import Capability
from repro.reporting.tables import format_table


def main() -> None:
    # -- the product requirements ------------------------------------------
    needs = Requirements(
        min_flexibility=2,
        required_capabilities=frozenset(
            {Capability.DATA_PARALLEL, Capability.LANE_SHUFFLE}
        ),
        n=16,  # we expect ~16 processing elements
    )
    recommendation = explore(needs, objective=Objective.CONFIG_BITS)
    print("=== requirement-driven recommendation ===")
    print(recommendation.explain())
    print()
    print("top candidates (cheapest configuration first):")
    rows = [p.row() for p in recommendation.feasible[:6]]
    print(format_table(("class", "flex", "area (GE)", "config bits"), rows))
    print()

    # -- sweep the configuration budget --------------------------------------
    print("=== how the answer moves with the configuration budget ===")
    for budget in (500, 1_500, 3_000, 10_000, 1_000_000):
        constrained = Requirements(
            min_flexibility=2,
            required_capabilities=needs.required_capabilities,
            max_config_bits=budget,
            n=16,
        )
        result = explore(constrained, objective=Objective.FLEXIBILITY_PER_AREA)
        best = result.best
        if best is None:
            print(f"  budget {budget:>9,} bits: no feasible class")
        else:
            print(
                f"  budget {budget:>9,} bits: {best.name:8s} "
                f"(flexibility {best.flexibility}, {best.config_bits:,} bits)"
            )
    print()

    # -- the full trade-off picture ---------------------------------------------
    print("=== Pareto frontier: flexibility vs area vs configuration ===")
    frontier = pareto_frontier(evaluate_classes(n=16))
    rows = [p.row() for p in frontier]
    print(format_table(("class", "flex", "area (GE)", "config bits"), rows))
    print()
    print(
        "Reading: every class not on this list is dominated — some class "
        "offers at least the same flexibility for less area and fewer "
        "configuration bits (within its flow paradigm)."
    )


if __name__ == "__main__":
    main()
