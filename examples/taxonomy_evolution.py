#!/usr/bin/env python3
"""Taxonomy evolution: Flynn (1966) -> Skillicorn (1988) -> this paper.

The paper's introduction motivates the extension historically: Flynn's
four categories are "perhaps the oldest, simplest and the most widely
known" but too broad; Skillicorn refined them but cannot express
variable-role fabrics (FPGAs) or IP-IP composition (spatial computing).

This example classifies the paper's own 25-architecture survey under
all three schemes side by side, making the resolution gain — and the
machines the older schemes cannot place at all — concrete.

Run:  python examples/taxonomy_evolution.py
"""

from repro.core import (
    baseline_resolution,
    extension_report,
    flynn_class,
    skillicorn_verdict,
)
from repro.registry import all_architectures
from repro.reporting.tables import format_table


def main() -> None:
    # -- the survey under three taxonomies ---------------------------------
    rows = []
    for rec in all_architectures():
        category = flynn_class(rec.signature)
        verdict = skillicorn_verdict(rec.signature)
        rows.append(
            (
                rec.name,
                category.value if category else "—",
                "yes" if verdict.representable else "NO",
                rec.derived_name,
                str(rec.derived_flexibility),
            )
        )
    print("The 25 surveyed architectures under three taxonomies:")
    print(
        format_table(
            ("architecture", "Flynn", "Skillicorn'88?", "extended", "flex"),
            rows,
        )
    )
    print()

    # -- what each older scheme misses ----------------------------------------
    unmapped = [row[0] for row in rows if row[1] == "—"]
    new_only = [row[0] for row in rows if row[2] == "NO"]
    print(f"No Flynn category at all      : {', '.join(unmapped)}")
    print(f"Need this paper's extensions  : {', '.join(new_only)}")
    print()

    # -- the resolution story over the whole class table ------------------------
    print("Flynn label -> extended classes (the 'broadness' problem):")
    for label, row in baseline_resolution().items():
        print(f"  {label:12s} covers {row.resolution_gain:2d} extended class(es)")
    print()
    print(extension_report().summary())
    print()

    # -- a concrete pair Flynn cannot tell apart ------------------------------------
    print("Example: Flynn calls both of these 'SIMD', but they differ in")
    print("every way a CGRA designer cares about:")
    from repro.core import compare_names

    print(compare_names("IAP-I", "IAP-IV").explain())


if __name__ == "__main__":
    main()
