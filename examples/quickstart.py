#!/usr/bin/env python3
"""Quickstart: classify an architecture, score it, and compare it.

Walks the library's core loop on a machine you describe yourself —
here MorphoSys, an 8x8 coarse-grained reconfigurable array under a
host processor — and shows how the taxonomy places, scores, prices
and situates it among the 25 published architectures of the paper's
survey.

Run:  python examples/quickstart.py
"""

from repro import classify, compare_names, make_signature
from repro.analysis import nearest_neighbours
from repro.models import AreaModel, ConfigBitsModel, NODE_65NM
from repro.registry import architecture


def main() -> None:
    # 1. Describe the machine structurally: component counts and the five
    #    connectivity sites, in the paper's own cell notation.
    morphosys_like = make_signature(
        ips=1,                # one host instruction processor
        dps=64,               # 8x8 reconfigurable cells
        ip_dp="1-64",         # host broadcasts to every cell
        ip_im="1-1",          # host fetches from its own memory
        dp_dm="64-1",         # cells share one frame buffer, fixed wiring
        dp_dp="64x64",        # cells interconnect through a crossbar
    )

    # 2. Classify it.
    result = classify(morphosys_like)
    print("=== classification ===")
    print(result.explain())
    print()

    # 3. Price it with the Eq.-1 / Eq.-2 estimators.
    area = AreaModel().total_ge(morphosys_like, n=64)
    area_mm2 = AreaModel().total_um2(morphosys_like, n=64, node=NODE_65NM) / 1e6
    bits = ConfigBitsModel().total(morphosys_like, n=64)
    print("=== early estimates (Eq. 1 / Eq. 2) ===")
    print(f"logic area : {area:,.0f} gate equivalents (~{area_mm2:.2f} mm^2 at 65nm)")
    print(f"config bits: {bits:,}")
    print()

    # 4. Compare against a published machine by name alone (§III-A).
    print("=== name-based comparison (vs the paper's survey) ===")
    drra = architecture("DRRA")
    report = compare_names(result.taxonomy_class, drra.classification.taxonomy_class)
    print(report.explain())
    print()

    # 5. Who in the survey is structurally closest?
    print("=== nearest published architectures to MorphoSys ===")
    for name, score in nearest_neighbours("MorphoSys", top=4):
        print(f"  {name:16s} similarity {score:.2f}")


if __name__ == "__main__":
    main()
