#!/usr/bin/env python3
"""Streaming fabrics and task farms: throughput the taxonomy predicts.

Two of the survey's machine styles are throughput engines rather than
latency engines:

* **Colt / PipeRench** stream data through a reconfigured fabric —
  modelled here as wave-pipelined dataflow execution, where successive
  input waves overlap on idle data processors;
* **IMP machines with a switched IP-IM site** (IMP-V and richer) can
  bind any instruction memory to any IP — modelled as a task farm that
  drains more programs than it has cores.

Both throughput mechanisms, and the interconnect's role in them, are
shown working below.

Run:  python examples/streaming_fabrics.py
"""

from repro.interconnect import FullCrossbar, SlidingWindow
from repro.machine import (
    DataflowMachine,
    DataflowSubtype,
    Multiprocessor,
    MultiprocessorSubtype,
    assemble,
)
from repro.machine.kernels import dataflow_fir, fir_reference


def streaming_demo() -> None:
    print("=== wave-pipelined FIR filter (Colt/PipeRench style) ===")
    taps = [1, -2, 1]
    graph = dataflow_fir(6, taps)
    waves = []
    signals = []
    for wave in range(8):
        signal = [(wave * 3 + i * 7) % 11 for i in range(6)]
        signals.append(signal)
        waves.append({f"x{i}": v for i, v in enumerate(signal)})

    machine = DataflowMachine(6, DataflowSubtype.DMP_IV)
    single = machine.run(graph, waves[0])
    stream = machine.run_stream(graph, waves)
    print(f"one wave alone          : {single.cycles} cycles")
    print(f"8 waves, serial estimate: {single.cycles * 8} cycles")
    print(f"8 waves, pipelined      : {stream.cycles} cycles "
          f"({stream.stats['throughput_waves_per_cycle']:.3f} waves/cycle)")
    first = stream.outputs["waves"][0]
    got = [first[f"y{i}"] for i in range(6)]
    assert got == fir_reference(signals[0], taps)
    print(f"wave-0 output verified  : {got}")
    print()


def task_farm_demo() -> None:
    print("=== task farm over the IP-IM switch (IMP-V) ===")
    tasks = [
        assemble(
            f"ldi r1, {seed}\nmul r2, r1, r1\naddi r2, r2, {seed}\nhalt",
            name=f"job{seed}",
        )
        for seed in range(12)
    ]
    for n_cores in (2, 4, 6):
        farm = Multiprocessor(n_cores, MultiprocessorSubtype.IMP_V)
        result = farm.run_task_pool(tasks)
        print(f"{n_cores} cores drain 12 jobs in {result.cycles:3d} cycles "
              f"({result.operations_per_cycle:.2f} ops/cycle)")
    try:
        Multiprocessor(4, MultiprocessorSubtype.IMP_I).run_task_pool(tasks)
    except Exception as exc:
        print(f"IMP-I refuses the farm: {exc}")
    print()


def network_demo() -> None:
    print("=== the 'x' cell's implementation matters (IMP-II) ===")
    n = 8
    sender = assemble("ldi r1, 7\nldi r2, 99\nsend r1, r2\nhalt")
    receiver = assemble("ldi r1, 0\nrecv r3, r1\nhalt")
    idle = assemble("halt")
    programs = [sender] + [idle] * 6 + [receiver]
    for name, network in (
        ("full crossbar ", FullCrossbar(n, n)),
        ("1-hop window  ", SlidingWindow(n, hops=1)),
        ("3-hop window  ", SlidingWindow(n, hops=3)),
    ):
        machine = Multiprocessor(
            n, MultiprocessorSubtype.IMP_II, network=network
        )
        result = machine.run(programs)
        assert result.outputs["registers"][7][3] == 99
        print(f"{name}: message 0->7 done at cycle {result.cycles:2d} "
              f"(network area {network.area_ge():,.0f} GE)")


def main() -> None:
    streaming_demo()
    task_farm_demo()
    network_demo()


if __name__ == "__main__":
    main()
