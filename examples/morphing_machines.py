#!/usr/bin/env python3
"""Flexibility, executed: one computation across five machine classes.

§III-B defines flexibility as "the ability of a computer architecture
to morph into a different computing machine". This example makes that
concrete by running the same dot product on executable models of five
taxonomy classes — and by showing the refusals that define the
flexibility ladder (an IAP-I cannot shuffle; an IUP cannot go wide).

The finale is the USP story: a single LUT fabric is configured first as
a data-flow machine, then reconfigured as a stored-program (instruction
flow) soft CPU — with its measured configuration-bit cost, the paper's
"enormous reconfiguration overhead", printed next to each personality.

Run:  python examples/morphing_machines.py
"""

from repro.core.errors import CapabilityError
from repro.machine import (
    ArrayProcessor,
    ArraySubtype,
    DataflowMachine,
    DataflowSubtype,
    Multiprocessor,
    MultiprocessorSubtype,
    SoftInstruction,
    SoftOp,
    SoftProgram,
    Uniprocessor,
    UniversalMachine,
)
from repro.machine.kernels import (
    dataflow_dot_product,
    dot_product_reference,
    mimd_ring_reduction,
    scalar_dot_product,
    simd_reduction_shuffle,
)

A = [3, 1, 4, 1, 5, 9, 2, 6]
B = [2, 7, 1, 8, 2, 8, 1, 8]


def main() -> None:
    expected = dot_product_reference(A, B)
    print(f"reference dot product: {expected}\n")

    # --- IUP: the Von Neumann baseline --------------------------------------
    iup = Uniprocessor(memory_size=2048)
    iup.load_memory(0, A)
    iup.load_memory(256, B)
    result = iup.run(scalar_dot_product(8))
    print(f"IUP      : {result.outputs['registers'][6]:>4} in {result.cycles:>3} cycles "
          f"({result.operations_per_cycle:.2f} ops/cycle)")

    # --- DMP-IV: token-driven dataflow ----------------------------------------
    graph = dataflow_dot_product(8)
    inputs = {f"a{i}": A[i] for i in range(8)} | {f"b{i}": B[i] for i in range(8)}
    result = DataflowMachine(4, DataflowSubtype.DMP_IV).run(graph, inputs)
    print(f"DMP-IV   : {result.outputs['dot']:>4} in {result.cycles:>3} cycles "
          f"({result.operations_per_cycle:.2f} ops/cycle)")

    # --- IAP-II: SIMD with a shuffle tree ---------------------------------------
    iap = ArrayProcessor(8, ArraySubtype.IAP_II)
    for lane, (a, b) in enumerate(zip(A, B)):
        iap.lanes[lane].store(0, a * b)
    result = iap.run(simd_reduction_shuffle(8))
    print(f"IAP-II   : {result.outputs['registers'][0][3]:>4} in {result.cycles:>3} cycles "
          f"({result.operations_per_cycle:.2f} ops/cycle)")

    # --- IMP-II: message-passing MIMD ring ----------------------------------------
    imp = Multiprocessor(8, MultiprocessorSubtype.IMP_II)
    for core, (a, b) in enumerate(zip(A, B)):
        imp.cores[core].store(0, a * b)
    result = imp.run(mimd_ring_reduction(8))
    print(f"IMP-II   : {result.outputs['registers'][0][6]:>4} in {result.cycles:>3} cycles "
          f"({result.operations_per_cycle:.2f} ops/cycle)")

    # --- USP: the same fabric, two personalities -----------------------------------
    print("\n=== the universal machine morphs ===")
    usp = UniversalMachine(n_cells=20_000)
    cells = usp.configure_dataflow(graph, width=12)
    result = usp.run_dataflow(inputs)
    print(f"USP as data-flow machine   : dot={result.outputs['dot']}, "
          f"{cells} LUT cells, {usp.config_bits_used():,} config bits")

    countdown = SoftProgram(
        [
            SoftInstruction(SoftOp.LDI, 8),
            SoftInstruction(SoftOp.ADD, 255),   # acc -= 1 (mod 256)
            SoftInstruction(SoftOp.JNZ, 1),
            SoftInstruction(SoftOp.HALT),
        ],
        name="countdown",
    )
    cells = usp.configure_soft_processor(countdown)
    result = usp.run_soft_processor()
    print(f"USP as instruction machine : acc={result.outputs['acc']} after "
          f"{result.cycles} cycles, {cells} LUT cells, "
          f"{usp.config_bits_used():,} config bits")

    # --- the refusals that define the ladder ------------------------------------
    print("\n=== refusals (missing switches are real) ===")
    try:
        Uniprocessor().run(simd_reduction_shuffle(4))
    except CapabilityError as exc:
        print(f"IUP    refuses the shuffle kernel: {exc}")
    try:
        ArrayProcessor(4, ArraySubtype.IAP_I).run(simd_reduction_shuffle(4))
    except CapabilityError as exc:
        print(f"IAP-I  refuses the shuffle kernel: {exc}")
    try:
        Multiprocessor(4, MultiprocessorSubtype.IMP_I).run(mimd_ring_reduction(4))
    except CapabilityError as exc:
        print(f"IMP-I  refuses the ring kernel   : {exc}")


if __name__ == "__main__":
    main()
