#!/usr/bin/env python3
"""Observability tour: trace a sweep, read the metrics, profile a run.

Exercises all three parts of `repro.obs` against the real analyses —
the same instrumentation the CLI exposes as `--trace`, `--profile` and
the `metrics` subcommand — and prints what each one captured:

1. enable tracing, run the survey cost sweep, render the span tree;
2. read the always-on metrics registry (sweep timings, model-cache
   hits and misses, machine cycle counters);
3. profile a design-space exploration and show the hottest functions.

Run:  python examples/observability_tour.py
"""

import json

from repro.analysis.dse import Objective, Requirements, explore
from repro.analysis.survey_costs import evaluate_survey
from repro.machine.array_processor import ArrayProcessor, ArraySubtype
from repro.machine.kernels import simd_vector_add
from repro.obs import REGISTRY, Profiler, trace, validate_trace


def traced_sweep() -> None:
    """Record the survey cost sweep as a span tree and render it."""
    trace.reset()
    trace.enable()
    with trace.span("tour.survey", default_n=16):
        evaluate_survey(default_n=16)
    trace.disable()

    payload = trace.tracer().to_dict()
    validate_trace(payload)  # raises ValueError on a malformed tree
    print("=== span tree (tour.survey -> analysis.survey_costs -> perf.sweep) ===")
    print(trace.tracer().render_text())
    print(f"schema version: {payload['schema']}")
    print()


def machine_and_metrics() -> None:
    """Run one machine kernel, then read the process metrics registry."""
    lanes = 8
    machine = ArrayProcessor(lanes, ArraySubtype.IAP_IV)
    machine.scatter(0, list(range(lanes * 4)))
    machine.scatter(64, list(range(lanes * 4)))
    machine.run(simd_vector_add(4))

    # A second survey pass is answered entirely from the model cache.
    evaluate_survey(default_n=16)

    print("=== metrics registry (always on; aggregates only) ===")
    print(REGISTRY.render())
    print()

    snapshot = REGISTRY.snapshot()
    hits = snapshot["model_cache.hits"]["value"]
    misses = snapshot["model_cache.misses"]["value"]
    print(f"model cache: {hits} hits / {misses} misses "
          f"(second sweep pass was pure hits)")
    print("machine-readable form:",
          json.dumps(snapshot["machine.runs"], sort_keys=True))
    print()


def profiled_dse() -> None:
    """Profile a DSE run and print the top of the cProfile table."""
    with Profiler("tour-dse", top=5) as prof:
        recommendation = explore(
            Requirements(min_flexibility=2), objective=Objective.AREA
        )
    assert prof.report is not None
    print("=== profile of explore() (top 5 by cumulative time) ===")
    print(prof.report.render())
    print(f"recommended class: {recommendation.best.name}")


def main() -> None:
    traced_sweep()
    machine_and_metrics()
    profiled_dse()


if __name__ == "__main__":
    main()
