#!/usr/bin/env python3
"""Regenerate the paper's survey artifacts end to end.

Produces Table I (the 47-class extended taxonomy), Table II (flexibility
values), Table III (the 25 classified architectures), the Fig.-7
flexibility comparison and the Fig.-1 research-trend chart — everything
derived from the library, nothing transcribed.

Run:  python examples/survey_report.py
"""

from repro.bibliometrics import compute_trends
from repro.registry import errata_report, group_by_class
from repro.reporting.figures import render_fig1, render_fig2, render_fig7
from repro.reporting.tables import render_table1, render_table2, render_table3


def main() -> None:
    print("=" * 72)
    print("TABLE I — extended taxonomy (47 classes, derived)")
    print("=" * 72)
    print(render_table1())
    print()

    print("=" * 72)
    print("TABLE II — relative flexibility per class (derived by scoring)")
    print("=" * 72)
    print(render_table2())
    print()

    print("=" * 72)
    print("TABLE III — the 25 surveyed architectures (classified)")
    print("=" * 72)
    print(render_table3())
    print()
    for line in errata_report():
        print(f"note: {line}")
    print()

    print("=" * 72)
    print("FIG. 2 — hierarchy of computing machines")
    print("=" * 72)
    print(render_fig2())
    print()

    print("=" * 72)
    print("FIG. 7 — flexibility comparison")
    print("=" * 72)
    print(render_fig7())
    print()

    print("=" * 72)
    print("FIG. 1 — research trends (synthetic corpus)")
    print("=" * 72)
    print(render_fig1())
    print()

    report = compute_trends()
    print("last-five-year growth factors (the paper's motivation):")
    for topic, factor in report.growth_ranking(recent_years=5):
        label = "inf" if factor == float("inf") else f"{factor:.1f}x"
        print(f"  {topic:26s} {label}")
    print()

    print("class populations in the survey:")
    for class_name, entries in group_by_class().items():
        names = ", ".join(e.name for e in entries)
        print(f"  {class_name:8s} ({len(entries):2d}): {names}")


if __name__ == "__main__":
    main()
